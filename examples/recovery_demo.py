#!/usr/bin/env python3
"""Fault tolerance: rebuild a data site and the mastership map from the
redo logs (paper §V-C).

Runs a short DynaMast workload with remastering, then simulates a site
(or site-selector) failure by recovering the database state and the
partition -> master map purely from the durable logs, and checks both
against the live cluster.

Run: ``python examples/recovery_demo.py``
"""

from repro.partitioning.schemes import PartitionScheme
from repro.replication import recover_database, recover_mastership
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction


def main():
    cluster = Cluster(ClusterConfig(num_sites=3))
    scheme = PartitionScheme(lambda key: key[1] // 10, num_partitions=6)
    dynamast = build_system("dynamast", cluster, scheme=scheme)
    initial_placement = dict(dynamast.selector.table.snapshot())

    def client(client_id, keys_list):
        session = dynamast.new_session(client_id)
        for keys in keys_list:
            txn = Transaction("w", client_id, write_set=tuple(("t", k) for k in keys))
            yield from dynamast.submit(txn, session)

    cluster.env.process(client(0, [(5, 15), (5, 15), (25, 35)]))
    cluster.env.process(client(1, [(45, 55), (45, 5), (55, 15)]))
    cluster.env.run(until=50.0)  # let every refresh drain

    live_site = cluster.sites[0]
    print(f"committed {sum(s.commits for s in cluster.sites)} update txns; "
          f"{dynamast.selector.remaster_operations} remaster operations")
    print("live svv at site 0:    ", live_site.svv.to_tuple())
    print("live mastership:       ", dynamast.selector.table.snapshot())

    # --- crash! recover from the logs alone -------------------------------
    logs = [site.log for site in cluster.sites]
    database, svv = recover_database(cluster.env, logs)
    mastership = recover_mastership(logs, initial_placement)

    print()
    print("recovered svv:         ", svv.to_tuple())
    print("recovered mastership:  ", mastership)

    assert svv.to_tuple() == live_site.svv.to_tuple(), "svv mismatch!"
    assert mastership == dynamast.selector.table.snapshot(), "mastership mismatch!"

    # Every record's latest version must match the live replica.
    mismatches = 0
    checked = 0
    for table_name, table in live_site.database.tables.items():
        for record in table:
            checked += 1
            recovered = database.record(record.key)
            if recovered is None or recovered.latest.value != record.latest.value:
                mismatches += 1
    print(f"record check: {checked} records compared, {mismatches} mismatches")
    assert mismatches == 0
    print("recovery OK: database and mastership reconstructed from redo logs")


if __name__ == "__main__":
    main()
