#!/usr/bin/env python3
"""Watch DynaMast learn a changed workload (paper §VI-B5, figure 5b).

The workload's partition correlations are randomized against a manual
range placement, so DynaMast's statistics are useless at t=0: nearly a
third of early transactions need remastering. As the site selector
samples write sets and rebuilds its co-access model, remastering decays
by an order of magnitude and throughput climbs.

Run: ``python examples/adaptivity_demo.py``
"""

from repro.bench.experiments import fig5b_adaptivity


def main():
    result = fig5b_adaptivity(num_clients=30, duration_ms=4000.0)

    print("time (ms)   txn/s      remaster rate")
    rates = dict(result.remaster_timeline)
    for when, tput in result.timeline:
        # Find the closest remaster-rate sample.
        nearest = min(rates, key=lambda t: abs(t - when)) if rates else None
        rate = rates.get(nearest, 0.0)
        bar = "#" * int(tput / 800)
        print(f"{when:8.0f}  {tput:8.0f}  {rate:8.1%}  {bar}")

    print()
    print(f"throughput improvement over the run: {result.improvement:.2f}x "
          "(paper: ~1.6x over a 5-minute interval)")
    first_rate = result.remaster_timeline[0][1]
    last_rate = result.remaster_timeline[-1][1]
    print(f"remastering rate: {first_rate:.1%} -> {last_rate:.1%} "
          "as placements converge")


if __name__ == "__main__":
    main()
