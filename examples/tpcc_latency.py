#!/usr/bin/env python3
"""TPC-C transaction latency under dynamic mastering vs its rivals.

Runs the three-transaction TPC-C subset (New-Order, Payment,
Stock-Level; §VI-A.2) and prints per-class latency for each system —
the demo-scale version of the paper's figures 4c, 4d and 8e. Shows why
dynamic mastering matters for complex, not-perfectly-partitionable
write transactions: cross-warehouse New-Orders cost DynaMast a cheap
metadata remastering instead of a blocking distributed commit.

Run: ``python examples/tpcc_latency.py [--clients N] [--remote F]``
"""

import argparse

from repro.bench import print_table, run_benchmark
from repro.sim.config import ClusterConfig
from repro.workloads import TPCCConfig, TPCCWorkload


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=80)
    parser.add_argument("--remote", type=float, default=0.10,
                        help="fraction of cross-warehouse New-Orders")
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1000.0)
    args = parser.parse_args()

    systems = ("dynamast", "single-master", "multi-master", "partition-store", "leap")
    rows = {txn: [] for txn in ("new_order", "payment", "stock_level")}
    throughput = []
    for system in systems:
        workload = TPCCWorkload(
            TPCCConfig(neworder_remote_fraction=args.remote)
        )
        result = run_benchmark(
            system,
            workload,
            num_clients=args.clients,
            duration_ms=args.duration,
            warmup_ms=args.duration / 4,
            cluster_config=ClusterConfig(num_sites=args.sites, cores_per_site=6),
        )
        throughput.append([system, result.throughput,
                           f"{result.metrics.remaster_fraction():.1%}"])
        for txn_type in rows:
            summary = result.latency(txn_type)
            rows[txn_type].append(
                [system, summary.mean, summary.p90, summary.p99]
            )
        print(f"ran {system}")

    print_table("TPC-C throughput", ["system", "txn/s", "remaster/ship"], throughput)
    for txn_type, data in rows.items():
        print_table(
            f"TPC-C {txn_type} latency (ms)",
            ["system", "mean", "p90", "p99"],
            data,
        )


if __name__ == "__main__":
    main()
