#!/usr/bin/env python3
"""Compare all five system architectures on the modified YCSB workload.

Reproduces (at demo scale) the paper's headline comparison: the same
site manager, storage engine and isolation level under five different
replication/mastering protocols, driven by the multi-partition YCSB
of §VI-A.2. Prints throughput, latency and protocol-activity metrics.

Run: ``python examples/ycsb_comparison.py [--clients N] [--rmw F]``
"""

import argparse

from repro.bench import print_table, run_benchmark
from repro.bench.harness import ALL_SYSTEMS
from repro.workloads import YCSBConfig, YCSBWorkload


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--rmw", type=float, default=0.5,
                        help="fraction of RMW transactions (rest are scans)")
    parser.add_argument("--skew", type=float, default=0.0,
                        help="Zipfian skew theta (paper uses 0.75)")
    parser.add_argument("--duration", type=float, default=1000.0,
                        help="simulated milliseconds")
    args = parser.parse_args()

    rows = []
    for system in ALL_SYSTEMS:
        workload = YCSBWorkload(
            YCSBConfig(rmw_fraction=args.rmw, zipf_theta=args.skew)
        )
        result = run_benchmark(
            system,
            workload,
            num_clients=args.clients,
            duration_ms=args.duration,
            warmup_ms=args.duration / 4,
        )
        rmw = result.latency("rmw")
        scan = result.latency("scan")
        metrics = result.metrics
        distributed = metrics.distributed_txns / max(1, metrics.commits)
        rows.append([
            system,
            result.throughput,
            rmw.mean,
            rmw.p99,
            scan.mean,
            f"{metrics.remaster_fraction():.1%}",
            f"{distributed:.1%}",
        ])
        print(f"ran {system} ({metrics.commits} txns measured)")

    print_table(
        f"YCSB {int(args.rmw*100)}/{100-int(args.rmw*100)} RMW/scan, "
        f"{args.clients} clients, zipf={args.skew}",
        ["system", "txn/s", "rmw mean ms", "rmw p99 ms", "scan mean ms",
         "remaster/ship", "distributed"],
        rows,
    )


if __name__ == "__main__":
    main()
