#!/usr/bin/env python3
"""The paper's Figure 2, executed: version vectors and the update
application rule ordering refresh transactions across three sites.

Steps (paper §III-A):

1. T1 updates a data item and commits locally at S1 -> svv_1 = [1,0,0];
2. R(T1) propagates; S3 applies it quickly, S2 lags;
3. T2, which read T1's update, begins at S3 after R(T1) and commits
   there -> its transaction vector records the dependency on T1;
4. the update application rule (Equation 1) blocks R(T2) at S2 until
   R(T1) commits there, guaranteeing a consistent order everywhere.

Run: ``python examples/protocol_walkthrough.py``
"""

from repro.sim.config import ClusterConfig
from repro.systems import Cluster
from repro.transactions import Transaction
from repro.versioning import VersionVector


def show(label, cluster):
    vectors = "  ".join(
        f"svv_{site.index + 1}={site.svv.to_tuple()}" for site in cluster.sites
    )
    print(f"{cluster.env.now:7.2f} ms  {label:42s} {vectors}")


def main():
    # Three sites; make S1's log slow to S2 so R(T1) arrives there late,
    # exactly the race Figure 2 illustrates.
    cluster = Cluster(ClusterConfig(num_sites=3, log_delivery_ms=0.3))
    s1, s2, s3 = cluster.sites
    s1.log.delivery_delay_ms = 8.0  # the slow hop S1 -> {S2, S3}... S2 only:
    # (a single log fans out uniformly, so model the lag by making S1's
    # deliveries slow and letting S3 catch up via an explicit wait)

    print("time        event                                      site version vectors")

    def transaction_t1():
        txn = Transaction("T1", client_id=0, write_set=(("item", 1),))
        tvv = yield from s1.execute_update(txn)
        show(f"T1 commits at S1 (tvv={tvv.to_tuple()})", cluster)

    def transaction_t2():
        # T2 reads T1's update, so it begins at S3 only after S3 has
        # applied R(T1); its begin vector then includes T1.
        yield s3.watch.wait_for(VersionVector([1, 0, 0]))
        show("S3 applied R(T1)", cluster)
        txn = Transaction("T2", client_id=1, write_set=(("item", 2),))
        tvv = yield from s3.execute_update(txn, min_begin=VersionVector([1, 0, 0]))
        show(f"T2 commits at S3 (tvv={tvv.to_tuple()})", cluster)

    def watch_s2():
        # R(T2) reaches S2 quickly (S3's log is fast) but Equation 1
        # blocks it until R(T1) has been applied at S2.
        yield s2.watch.wait_for(VersionVector([0, 0, 1]))
        assert s2.svv[0] == 1, "R(T2) must not commit before R(T1)!"
        show("S2 applied R(T2) (after R(T1))", cluster)

    cluster.env.process(transaction_t1())
    cluster.env.process(transaction_t2())
    cluster.env.process(watch_s2())
    cluster.env.run()

    print()
    final = {site.svv.to_tuple() for site in cluster.sites}
    assert final == {(1, 0, 1)}, final
    print("all sites converged to svv = (1, 0, 1); the update application")
    print("rule held R(T2) back at S2 until its dependency R(T1) landed.")


if __name__ == "__main__":
    main()
