#!/usr/bin/env python3
"""Quickstart: a 2-site DynaMast cluster, step by step.

Builds a small replicated cluster, runs a few transactions through the
DynaMast system, and shows the core mechanics of the paper:

1. an update whose write set is already single-sited routes locally;
2. an update spanning master sites triggers remastering (release/grant,
   metadata-only) and then executes at a single site;
3. a subsequent transaction with the same write set needs no
   remastering — the cost was amortized;
4. read-only transactions run at any session-fresh replica.

Run: ``python examples/quickstart.py``
"""

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction


def main():
    # A cluster of 2 fully-replicated data sites sharing one simulated
    # clock, plus a partition scheme: keys 0-9 -> partition 0, 10-19 ->
    # partition 1, and so on.
    cluster = Cluster(ClusterConfig(num_sites=2))
    scheme = PartitionScheme(lambda key: key[1] // 10, num_partitions=4)
    dynamast = build_system("dynamast", cluster, scheme=scheme)
    selector = dynamast.selector

    print("initial partition masters:", selector.table.snapshot())

    session = dynamast.new_session(client_id=0)
    log = []

    def client():
        # 1. Single-sited write set: partitions 0 and 2 both start at
        #    site 0 (round-robin places 0, 2 there) -> local routing.
        txn = Transaction("deposit", 0, write_set=(("acct", 5), ("acct", 25)))
        outcome = yield from dynamast.submit(txn, session)
        log.append(("deposit", cluster.env.now, outcome.remastered))

        # 2. Write set spanning masters: partition 0 (site 0) and
        #    partition 1 (site 1) -> DynaMast remasters, then executes
        #    at ONE site. No two-phase commit anywhere.
        txn = Transaction("transfer", 0, write_set=(("acct", 5), ("acct", 15)))
        outcome = yield from dynamast.submit(txn, session)
        log.append(("transfer", cluster.env.now, outcome.remastered))

        # 3. Same write set again: the masters are now co-located, the
        #    earlier remastering is amortized.
        txn = Transaction("transfer", 0, write_set=(("acct", 5), ("acct", 15)))
        outcome = yield from dynamast.submit(txn, session)
        log.append(("transfer-again", cluster.env.now, outcome.remastered))

        # 4. A read-only transaction runs at any session-fresh replica.
        txn = Transaction("audit", 0, read_set=(("acct", 5), ("acct", 15)))
        outcome = yield from dynamast.submit(txn, session)
        log.append(("audit", cluster.env.now, outcome.remastered))

    process = cluster.env.process(client())
    cluster.env.run_until_complete(process)

    print()
    for name, when, remastered in log:
        suffix = "  <- remastered" if remastered else ""
        print(f"{when:8.3f} ms  {name:15s} committed{suffix}")
    print()
    print("final partition masters: ", selector.table.snapshot())
    print(f"remaster rate: {selector.remaster_rate():.0%} "
          f"({selector.updates_remastered} of {selector.updates_routed} updates)")
    print("site version vectors:   ",
          [site.svv.to_tuple() for site in cluster.sites])
    # Let the replication stream drain, then confirm the replicas agree.
    cluster.run(until=cluster.env.now + 5.0)
    print("after refresh drain:    ",
          [site.svv.to_tuple() for site in cluster.sites])


if __name__ == "__main__":
    main()
