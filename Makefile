# Convenience targets for the DynaMast reproduction.

.PHONY: install test lint bench examples quick chaos chaos-gray explain-smoke masters-smoke perf perf-check scale scale-smoke clean

# Worker processes for parallel-capable targets (perf, test with
# pytest-xdist installed). 1 = classic serial behavior.
JOBS ?= 1

install:
	pip install -e . || python setup.py develop

# Uses pytest-xdist when installed (and JOBS != 1); falls back to the
# plain serial run otherwise so the tier-1 command works everywhere.
test:
	@if [ "$(JOBS)" != "1" ] && python -c "import xdist" 2>/dev/null; then \
		python -m pytest tests/ -n $(JOBS); \
	else \
		python -m pytest tests/; \
	fi

lint:
	ruff check src tests

test-output:
	python -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	python -m pytest benchmarks/ --benchmark-only -s

bench-output:
	python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

examples:
	python examples/quickstart.py
	python examples/protocol_walkthrough.py
	python examples/recovery_demo.py
	python examples/adaptivity_demo.py

quick:
	python -m repro compare --clients 16 --duration 500

# One short fault scenario per system: exercises crash/restart rejoin,
# partition routing, and lossy-link retries end to end.
chaos:
	python -m repro chaos --system dynamast --scenario crash-restart --duration 3000 --clients 8
	python -m repro chaos --system single-master --scenario crash --duration 2000 --clients 8
	python -m repro chaos --system multi-master --scenario partition --duration 2000 --clients 8
	python -m repro chaos --system partition-store --scenario lossy --duration 2000 --clients 8
	python -m repro chaos --system leap --scenario crash-restart --duration 2000 --clients 8

# Gray-failure sweep: every system through every gray scenario
# (fail-slow master, degraded WAN link, flapping site, gray storm)
# with the adaptive defenses armed — phi-accrual detection, adaptive
# deadlines, hedged reads, health-aware remastering — at two seeds,
# plus the headline fixed-vs-adaptive comparison on the fail-slow
# master (EXPERIMENTS.md, Gray failures). --masters attaches the
# decision ledger so the matrix reports whether mastership
# re-converged after the fault. Leaves chaos_gray_seed*.csv timelines
# for CI to upload.
chaos-gray:
	for seed in 0 1; do \
		python -m repro chaos \
			--systems dynamast,single-master,multi-master,partition-store,leap \
			--scenarios fail_slow_master,degraded_wan_link,flapping_site,gray_storm \
			--defenses adaptive --masters --duration 5000 --clients 8 --jobs 2 \
			--seed $$seed --out chaos_gray_seed$$seed.csv || exit 1; \
	done
	python -m repro chaos --system dynamast --scenario fail_slow_master \
		--defenses fixed --duration 5000 --clients 8
	python -m repro chaos --system dynamast --scenario fail_slow_master \
		--defenses adaptive --masters --duration 5000 --clients 8

# Tiny observed run asserting the attribution invariant: the budget
# categories must sum to ~100% of measured commit latency (DESIGN.md
# §6.5). Leaves explain_report.json for CI to upload as an artifact.
explain-smoke:
	python -m repro explain --system dynamast --clients 4 --duration 300 --sites 2 --seed 7 --export explain_report.json
	python -c "import json; r = json.load(open('explain_report.json')); \
	  assert abs(r['coverage'] - 1.0) < 1e-6, r['coverage']; \
	  total = sum(r['aggregate']['categories'].values()); \
	  assert abs(total - r['total_latency_ms']) < 1e-6, (total, r['total_latency_ms']); \
	  print('explain-smoke OK:', r['txn_count'], 'txns, coverage %.6f' % r['coverage'])"

# Ledger round-trip gate: a short skewed run must record decisions,
# export them (repro-masters/1 JSONL), and the export must reconstruct
# the run — loadable header, offline-recomputable decisions, and a
# final placement consistent with the recorded ownership changes
# (DESIGN.md §6.6). Leaves masters_ledger.jsonl for CI to upload.
masters-smoke:
	python -m repro masters --system dynamast --skew 0.9 --clients 8 --duration 400 --seed 7 --export-jsonl masters_ledger.jsonl --export-csv masters_rate.csv
	python -c "from repro.obs.mastery import load_jsonl, recompute_decision; \
	  data = load_jsonl('masters_ledger.jsonl'); \
	  header, decisions = data['header'], data['decisions']; \
	  assert decisions, 'no decisions recorded'; \
	  assert all(recompute_decision(d)[1] for d in decisions), 'offline recompute mismatch'; \
	  assert header['partitions_moved'] == len(data['changes']), 'totals disagree'; \
	  print('masters-smoke OK:', len(decisions), 'decisions,', len(data['changes']), 'ownership changes round-tripped')"

# Full perf matrix; refreshes BENCH_perf.json (see DESIGN.md §8).
# JOBS=n fans the cases over worker processes; simulated results are
# bit-identical to serial, and per-case walls are measured inside each
# worker so the report stays comparable.
perf:
	python -m repro perf --jobs $(JOBS)

# Quick regression gate against the committed BENCH_perf.json: the
# three-case subset, nonzero exit if any case is >15% slower after
# calibration-normalizing for host speed.
perf-check:
	python -m repro perf --check --quick

# Full open-loop saturation matrix; refreshes BENCH_scale.json with
# every system's knee ladder plus the flagship 16-site / 100k-client /
# 1M-key diurnal case (docs/SCALE.md).
scale:
	python -m repro perf --scale --jobs $(JOBS)

# Capacity-determinism gate against the committed BENCH_scale.json:
# the five cheap per-system ladders at --jobs 2 must fingerprint
# bit-identically to the committed report (simulated results are
# machine-independent) and each rung must fit its peak-RSS budget.
scale-smoke:
	python -m repro perf --scale --smoke --check --jobs 2

clean:
	rm -rf .pytest_cache build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
