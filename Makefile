# Convenience targets for the DynaMast reproduction.

.PHONY: install test test-output lint bench bench-output examples quick chaos chaos-gray explain-smoke masters-smoke slo-smoke perf perf-check perf-sweep scale scale-smoke clean

# Worker processes for parallel-capable targets (perf, test with
# pytest-xdist installed). 1 = classic serial behavior.
JOBS ?= 1

# Top jobs level for the perf-sweep target (sweep runs {1, 2, CORES}).
CORES ?= 2

install:
	pip install -e . || python setup.py develop

# Uses pytest-xdist when installed (and JOBS != 1); falls back to the
# plain serial run otherwise so the tier-1 command works everywhere.
test:
	@if [ "$(JOBS)" != "1" ] && python -c "import xdist" 2>/dev/null; then \
		python -m pytest tests/ -n $(JOBS); \
	else \
		python -m pytest tests/; \
	fi

lint:
	ruff check src tests

test-output:
	python -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	python -m pytest benchmarks/ --benchmark-only -s

bench-output:
	python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

examples:
	python examples/quickstart.py
	python examples/protocol_walkthrough.py
	python examples/recovery_demo.py
	python examples/adaptivity_demo.py

quick:
	python -m repro compare --clients 16 --duration 500

# One short fault scenario per system: exercises crash/restart rejoin,
# partition routing, and lossy-link retries end to end.
chaos:
	python -m repro chaos --system dynamast --scenario crash-restart --duration 3000 --clients 8
	python -m repro chaos --system single-master --scenario crash --duration 2000 --clients 8
	python -m repro chaos --system multi-master --scenario partition --duration 2000 --clients 8
	python -m repro chaos --system partition-store --scenario lossy --duration 2000 --clients 8
	python -m repro chaos --system leap --scenario crash-restart --duration 2000 --clients 8

# Gray-failure sweep: every system through every gray scenario
# (fail-slow master, degraded WAN link, flapping site, gray storm)
# with the adaptive defenses armed — phi-accrual detection, adaptive
# deadlines, hedged reads, health-aware remastering — at two seeds,
# plus the headline fixed-vs-adaptive comparison on the fail-slow
# master (EXPERIMENTS.md, Gray failures). --masters attaches the
# decision ledger so the matrix reports whether mastership
# re-converged after the fault. Leaves chaos_gray_seed*.csv timelines
# for CI to upload.
chaos-gray:
	for seed in 0 1; do \
		python -m repro chaos \
			--systems dynamast,single-master,multi-master,partition-store,leap \
			--scenarios fail_slow_master,degraded_wan_link,flapping_site,gray_storm \
			--defenses adaptive --masters --duration 5000 --clients 8 --jobs 2 \
			--seed $$seed --out chaos_gray_seed$$seed.csv || exit 1; \
	done
	python -m repro chaos --system dynamast --scenario fail_slow_master \
		--defenses fixed --duration 5000 --clients 8
	python -m repro chaos --system dynamast --scenario fail_slow_master \
		--defenses adaptive --masters --duration 5000 --clients 8

# Tiny observed run asserting the attribution invariant: the budget
# categories must sum to ~100% of measured commit latency (DESIGN.md
# §6.5). Leaves explain_report.json for CI to upload as an artifact.
explain-smoke:
	python -m repro explain --system dynamast --clients 4 --duration 300 --sites 2 --seed 7 --export explain_report.json
	python -c "import json; r = json.load(open('explain_report.json')); \
	  assert abs(r['coverage'] - 1.0) < 1e-6, r['coverage']; \
	  total = sum(r['aggregate']['categories'].values()); \
	  assert abs(total - r['total_latency_ms']) < 1e-6, (total, r['total_latency_ms']); \
	  print('explain-smoke OK:', r['txn_count'], 'txns, coverage %.6f' % r['coverage'])"

# Ledger round-trip gate: a short skewed run must record decisions,
# export them (repro-masters/1 JSONL), and the export must reconstruct
# the run — loadable header, offline-recomputable decisions, and a
# final placement consistent with the recorded ownership changes
# (DESIGN.md §6.6). Leaves masters_ledger.jsonl for CI to upload.
masters-smoke:
	python -m repro masters --system dynamast --skew 0.9 --clients 8 --duration 400 --seed 7 --export-jsonl masters_ledger.jsonl --export-csv masters_rate.csv
	python -c "from repro.obs.mastery import load_jsonl, recompute_decision; \
	  data = load_jsonl('masters_ledger.jsonl'); \
	  header, decisions = data['header'], data['decisions']; \
	  assert decisions, 'no decisions recorded'; \
	  assert all(recompute_decision(d)[1] for d in decisions), 'offline recompute mismatch'; \
	  assert header['partitions_moved'] == len(data['changes']), 'totals disagree'; \
	  print('masters-smoke OK:', len(decisions), 'decisions,', len(data['changes']), 'ownership changes round-tripped')"

# SLO gate (DESIGN.md §6.7): a fail-slow gray run with the streaming
# monitors attached must detect the injected fault window (>= 1
# true-positive incident, no missed spans), hold all four runtime
# invariants, and leave a repro-slo/1 ledger plus a self-contained
# HTML dashboard for CI to upload. The second step re-runs the same
# spec with and without the engine and pins the fingerprints
# bit-identical: monitoring never changes a run.
# (6000 ms, not shorter: with the adaptive defenses armed — the
# default, and the config the tests pin — a briefer fail-slow window
# is masked so well by hedging/health-aware remastering that the
# burn-rate gate rightly stays quiet.)
slo-smoke:
	python -m repro slo --system dynamast --scenario fail_slow_master \
		--duration 6000 --clients 8 --quick \
		--html slo_dashboard.html --export-jsonl slo_incidents.jsonl
	python -c "from repro.obs.slo import load_jsonl; import os; \
	  data = load_jsonl('slo_incidents.jsonl'); header = data['header']; \
	  assert header['true_positives'] >= 1, header; \
	  assert header['violations'] == 0, header; \
	  assert header['missed_faults'] == 0, header; \
	  assert data['spans'] and all(s['detected'] for s in data['spans']), data['spans']; \
	  assert os.path.getsize('slo_dashboard.html') > 0; \
	  print('slo-smoke OK: %d true positive(s), MTTD %.0f ms' \
	        % (header['true_positives'], header['mttd_mean_ms']))"
	python -c "from repro.bench.parallel import run_fingerprint; \
	  from repro.faults.chaos import run_chaos; \
	  from repro.obs import quick_slos; \
	  kw = dict(num_clients=8, duration_ms=2000.0); \
	  off = run_chaos('dynamast', 'fail_slow_master', **kw).result; \
	  on = run_chaos('dynamast', 'fail_slow_master', slo=quick_slos(), **kw).result; \
	  a, b = run_fingerprint(off), run_fingerprint(on); \
	  assert a == b, (a, b); \
	  print('slo-smoke OK: slo-ON fingerprint == slo-OFF (%s)' % a)"

# Full perf matrix; refreshes BENCH_perf.json (see DESIGN.md §8).
# JOBS=n fans the cases over worker processes; simulated results are
# bit-identical to serial, and per-case walls are measured inside each
# worker so the report stays comparable.
perf:
	python -m repro perf --jobs $(JOBS)

# Quick regression gate against the committed BENCH_perf.json: the
# three-case subset, nonzero exit if any case is >15% slower after
# calibration-normalizing for host speed.
perf-check:
	python -m repro perf --check --quick

# Multi-core sweep: the full matrix at jobs levels {1, 2, CORES} with
# fingerprint parity enforced between levels; refreshes BENCH_perf.json
# including the machine.parallel.sweep block (EXPERIMENTS.md, Parallel
# execution). CORES=n picks the top level.
perf-sweep:
	python -m repro perf --cores $(CORES)

# Full open-loop saturation matrix; refreshes BENCH_scale.json with
# every system's knee ladder plus the flagship 16-site / 100k-client /
# 1M-key diurnal case (docs/SCALE.md).
scale:
	python -m repro perf --scale --jobs $(JOBS)

# Capacity-determinism gate against the committed BENCH_scale.json:
# the five cheap per-system ladders at --jobs 2 must fingerprint
# bit-identically to the committed report (simulated results are
# machine-independent) and each rung must fit its peak-RSS budget.
scale-smoke:
	python -m repro perf --scale --smoke --check --jobs 2

clean:
	rm -rf .pytest_cache build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
