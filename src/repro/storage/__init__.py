"""In-memory multi-version storage engine (paper §V-A1).

A Hekaton-style row store: each record keeps a short chain of versions
(four by default, as the paper determined empirically), transactions
read the version matching their begin snapshot so writes never block
reads, and write-write conflicts are prevented by per-record FIFO locks
rather than aborts.
"""

from repro.storage.database import Database
from repro.storage.locks import LockTable
from repro.storage.record import Version, VersionedRecord
from repro.storage.table import Table

__all__ = ["Database", "LockTable", "Table", "Version", "VersionedRecord"]
