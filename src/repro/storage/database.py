"""The per-site database: tables, snapshot reads, version installation.

The database is deliberately passive — it owns data and locks, while
the data site (:mod:`repro.sites`) owns timing, version vectors, and
the commit protocol. This mirrors the paper's integration of the site
manager, database system and replication manager into one component
(§V-A) while keeping each concern testable on its own.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.sim.core import Environment
from repro.storage.locks import LockTable
from repro.storage.record import VersionedRecord
from repro.storage.table import Table
from repro.versioning.vectors import VersionVector

#: A fully-qualified record key: (table name, primary key).
Key = Tuple[str, Any]


class Database:
    """An in-memory multi-version store for one data site."""

    def __init__(self, env: Environment, max_versions: int = 4):
        if max_versions < 1:
            raise ValueError(f"max_versions must be >= 1, got {max_versions}")
        self.env = env
        self.max_versions = max_versions
        self.tables: Dict[str, Table] = {}
        self.locks = LockTable(env)
        #: Reads whose snapshot predates every retained version.
        self.stale_reads = 0

    # -- schema / loading ---------------------------------------------------

    def table(self, name: str) -> Table:
        """Fetch (creating if needed) the table called ``name``."""
        table = self.tables.get(name)
        if table is None:
            table = Table(name)
            self.tables[name] = table
        return table

    def load(self, key: Key, value: Any = None) -> VersionedRecord:
        """Bulk-load a record outside any transaction (initial database)."""
        table_name, primary_key = key
        return self.table(table_name).insert(primary_key, value)

    def record(self, key: Key) -> Optional[VersionedRecord]:
        table_name, primary_key = key
        table = self.tables.get(table_name)
        return table.get(primary_key) if table else None

    def ensure(self, key: Key) -> VersionedRecord:
        """Fetch a record, creating an empty one if absent (inserts)."""
        table_name, primary_key = key
        table = self.tables.get(table_name)
        if table is None:
            table = self.table(table_name)
        record = table._rows.get(primary_key)
        if record is None:
            record = table.insert(primary_key)
        return record

    # -- transactional access -------------------------------------------------

    def read(self, key: Key, begin: VersionVector) -> Any:
        """Snapshot read of ``key`` at the ``begin`` vector.

        Returns the visible *value* directly: one index-arithmetic scan
        over the record's seq/origin columns resolves visibility and
        staleness together (a stale read — snapshot older than every
        retained version — counts and falls back to the oldest retained
        value, per the bounded-chain trade documented on
        :meth:`VersionedRecord.read`).
        """
        record = self.ensure(key)
        i = record.visible_index(begin.counts)
        if i < 0:
            self.stale_reads += 1
            i = record._start
        return record._values[i]

    def install(self, key: Key, origin: int, seq: int, value: Any) -> None:
        """Install one committed version (local commit or refresh)."""
        self.ensure(key).install(origin, seq, value, self.max_versions)

    def install_many(
        self, writes: Iterable[Tuple[Key, Any]], origin: int, seq: int
    ) -> None:
        """Install a transaction's full write set."""
        maxv = self.max_versions
        ensure = self.ensure
        for key, value in writes:
            ensure(key).install(origin, seq, value, maxv)

    # -- introspection ----------------------------------------------------------

    def row_count(self) -> int:
        return sum(len(table) for table in self.tables.values())

    def version_count(self) -> int:
        return sum(table.version_count() for table in self.tables.values())
