"""Versioned records.

A version is stamped with ``(origin, seq)``: the site the update
committed at and that site's commit sequence number (the value the
commit wrote into position ``origin`` of its transaction version
vector). A snapshot is a begin version vector; version ``(j, s)`` is
visible to a snapshot ``b`` iff ``s <= b[j]``.

Versions are appended in local application order. Because every site
applies updates under the update application rule (Equation 1), the
application order is consistent with the global dependency order, so
the newest *visible* version in append order is the correct snapshot
read.

Storage layout: the chain is column-oriented — parallel ``array('q')``
origin/seq columns plus a plain values list, with a ``_start`` offset
marking the logical head. The visibility scan is then pure index
arithmetic over machine ints (no per-version object is ever built on
the hot path), and pruning the common one-over overflow is an O(1)
head-offset bump instead of a list rebuild; the dead prefix is
compacted away only once it grows past a threshold. :class:`Version`
survives as the row-oriented *view* type returned by the cold
inspection API (``versions()``, ``latest``, ``read``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any

from repro.versioning.vectors import VersionVector

#: Compact the dead prefix of a chain once it grows past this many
#: slots. Chains are bounded (max_versions, default 4), so the arrays
#: stay tiny either way; the threshold just amortizes the rebuild.
_COMPACT_AT = 32


@dataclass(frozen=True, slots=True)
class Version:
    """One committed value of a record (row-oriented view)."""

    origin: int
    seq: int
    value: Any

    def visible_to(self, begin: VersionVector) -> bool:
        """True if a snapshot with begin vector ``begin`` sees this version."""
        return self.seq <= begin[self.origin]


class VersionedRecord:
    """A record and its bounded chain of committed versions."""

    __slots__ = ("key", "_origins", "_seqs", "_values", "_start")

    def __init__(self, key: Any, initial_value: Any = None):
        self.key = key
        # The loader's initial version is stamped (0, 0): visible to
        # every snapshot, and sequence 0 never collides with a commit
        # (site commit sequences start at 1).
        self._origins = array("q", (0,))
        self._seqs = array("q", (0,))
        self._values: list = [initial_value]
        self._start = 0

    @property
    def version_count(self) -> int:
        return len(self._seqs) - self._start

    @property
    def latest(self) -> Version:
        """The most recently applied version (no snapshot filtering)."""
        i = len(self._seqs) - 1
        return Version(self._origins[i], self._seqs[i], self._values[i])

    def versions(self) -> tuple:
        """Immutable view of the chain, oldest first."""
        start = self._start
        return tuple(
            Version(self._origins[i], self._seqs[i], self._values[i])
            for i in range(start, len(self._seqs))
        )

    def install(self, origin: int, seq: int, value: Any, max_versions: int) -> None:
        """Append a committed version, pruning the chain to ``max_versions``.

        The steady-state overflow (exactly one version over the bound)
        is an O(1) bump of the logical head offset; the dead prefix is
        only physically dropped once it reaches ``_COMPACT_AT`` slots.
        """
        if seq <= 0:
            raise ValueError(f"commit sequence must be >= 1, got {seq}")
        self._origins.append(origin)
        self._seqs.append(seq)
        self._values.append(value)
        start = self._start
        excess = len(self._seqs) - start - max_versions
        if excess > 0:
            start += excess
            if start >= _COMPACT_AT:
                del self._origins[:start]
                del self._seqs[:start]
                del self._values[:start]
                start = 0
            self._start = start

    def visible_index(self, counts) -> int:
        """Physical index of the newest version visible to a snapshot.

        ``counts`` is the begin vector's raw count list (or any
        indexable of per-site sequence numbers). Returns -1 when
        pruning has removed every visible version.
        """
        seqs = self._seqs
        origins = self._origins
        for i in range(len(seqs) - 1, self._start - 1, -1):
            if seqs[i] <= counts[origins[i]]:
                return i
        return -1

    def read_value(self, counts) -> Any:
        """Value of the newest version visible to ``counts`` (hot path).

        Falls back to the oldest retained version when the snapshot
        predates the chain, exactly like :meth:`read`.
        """
        i = self.visible_index(counts)
        return self._values[i if i >= 0 else self._start]

    def read(self, begin: VersionVector) -> Version:
        """The newest version visible to the snapshot ``begin``.

        If pruning removed every visible version (a snapshot older than
        the retained chain), the oldest retained version is returned —
        the engine trades occasional slightly-fresh reads for a bounded
        chain, as the paper's four-version default does.
        """
        i = self.visible_index(begin.counts)
        if i < 0:
            i = self._start
        return Version(self._origins[i], self._seqs[i], self._values[i])

    def has_visible(self, begin: VersionVector) -> bool:
        """True if some retained version is visible to ``begin``."""
        return self.visible_index(begin.counts) >= 0

    def __repr__(self) -> str:
        return f"<VersionedRecord {self.key!r} x{self.version_count}>"
