"""Versioned records.

A version is stamped with ``(origin, seq)``: the site the update
committed at and that site's commit sequence number (the value the
commit wrote into position ``origin`` of its transaction version
vector). A snapshot is a begin version vector; version ``(j, s)`` is
visible to a snapshot ``b`` iff ``s <= b[j]``.

Versions are appended in local application order. Because every site
applies updates under the update application rule (Equation 1), the
application order is consistent with the global dependency order, so
the newest *visible* version in append order is the correct snapshot
read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.versioning.vectors import VersionVector


@dataclass(frozen=True, slots=True)
class Version:
    """One committed value of a record."""

    origin: int
    seq: int
    value: Any

    def visible_to(self, begin: VersionVector) -> bool:
        """True if a snapshot with begin vector ``begin`` sees this version."""
        return self.seq <= begin[self.origin]


class VersionedRecord:
    """A record and its bounded chain of committed versions."""

    __slots__ = ("key", "_versions")

    def __init__(self, key: Any, initial_value: Any = None):
        self.key = key
        # The loader's initial version is stamped (0, 0): visible to
        # every snapshot, and sequence 0 never collides with a commit
        # (site commit sequences start at 1).
        self._versions: List[Version] = [Version(0, 0, initial_value)]

    @property
    def version_count(self) -> int:
        return len(self._versions)

    @property
    def latest(self) -> Version:
        """The most recently applied version (no snapshot filtering)."""
        return self._versions[-1]

    def versions(self) -> tuple:
        """Immutable view of the chain, oldest first."""
        return tuple(self._versions)

    def install(self, origin: int, seq: int, value: Any, max_versions: int) -> None:
        """Append a committed version, pruning the chain to ``max_versions``."""
        if seq <= 0:
            raise ValueError(f"commit sequence must be >= 1, got {seq}")
        self._versions.append(Version(origin, seq, value))
        if len(self._versions) > max_versions:
            del self._versions[: len(self._versions) - max_versions]

    def read(self, begin: VersionVector) -> Version:
        """The newest version visible to the snapshot ``begin``.

        If pruning removed every visible version (a snapshot older than
        the retained chain), the oldest retained version is returned —
        the engine trades occasional slightly-fresh reads for a bounded
        chain, as the paper's four-version default does.
        """
        for version in reversed(self._versions):
            if version.visible_to(begin):
                return version
        return self._versions[0]

    def has_visible(self, begin: VersionVector) -> bool:
        """True if some retained version is visible to ``begin``."""
        return any(version.visible_to(begin) for version in self._versions)

    def __repr__(self) -> str:
        return f"<VersionedRecord {self.key!r} x{len(self._versions)}>"
