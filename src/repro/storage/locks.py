"""Per-key FIFO write locks.

The paper's engine avoids transactional aborts on write-write conflicts
by mutually excluding writers per record (§V-A1). Locks are granted in
FIFO order; multi-key acquisition is done in globally sorted key order
to make deadlock impossible.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, Iterable, Optional

from repro.sim.core import Environment, Event, SimulationError


class LockTable:
    """FIFO mutual-exclusion locks keyed by record key."""

    def __init__(self, env: Environment):
        self.env = env
        # key -> waiter queue; presence of the key means locked. The
        # common case is an uncontended lock, so the queue is allocated
        # on demand: ``None`` means "locked, nobody waiting" (both None
        # and an empty deque are falsy, so truth tests treat them the
        # same).
        self._queues: Dict[Any, Optional[Deque[Event]]] = {}
        #: Memoized ``repr`` sort keys for :meth:`acquire_all`. Keys are
        #: record keys, so the memo is bounded by the database size.
        self._sort_keys: Dict[Any, str] = {}
        #: Total number of acquisitions that had to wait (contention stat).
        self.contended_acquires = 0
        self.total_acquires = 0
        # Holder identity is tracked only when tracing is on (the
        # tracer is fixed at Environment construction, so caching the
        # flag here is safe); the untraced path is byte-identical to
        # before this bookkeeping existed.
        self._traced = env.obs.tracer.enabled
        #: key -> transaction currently holding it (traced runs only).
        self._owners: Dict[Any, Any] = {}
        #: grant event -> (key, waiting txn), for ownership transfer.
        self._waiting: Dict[Event, Any] = {}

    def is_locked(self, key: Any) -> bool:
        return key in self._queues

    def held_count(self) -> int:
        """Number of keys currently locked (lock-table depth probe)."""
        return len(self._queues)

    def waiting_count(self) -> int:
        """Total transactions queued behind held locks."""
        return sum(len(queue) for queue in self._queues.values() if queue)

    def waiters(self, key: Any) -> int:
        queue = self._queues.get(key)
        return len(queue) if queue else 0

    def acquire(self, key: Any, owner: Any = None) -> Event:
        """Event that triggers when the caller holds ``key``'s lock.

        ``owner`` (the acquiring transaction) is used only when tracing
        is on: a contended acquire records a ``lock_wait`` causal edge
        naming the current holder (wait-for edge), and ownership is
        tracked so the edge's blame survives FIFO handoff on release.
        """
        self.total_acquires += 1
        event = Event(self.env)
        queues = self._queues
        if key in queues:
            self.contended_acquires += 1
            queue = queues[key]
            if queue is None:
                queue = queues[key] = deque()
            queue.append(event)
            if self._traced and owner is not None:
                self._waiting[event] = (key, owner)
                self.env.obs.tracer.edge(
                    "lock_wait", self.env.now,
                    txn=owner, src_txn=self._owners.get(key),
                    key=key, waiters=len(queue),
                )
        else:
            queues[key] = None
            event.succeed()
            if self._traced and owner is not None:
                self._owners[key] = owner
        return event

    def release(self, key: Any) -> None:
        """Release ``key``; wakes the longest-waiting acquirer, if any."""
        queues = self._queues
        if key not in queues:
            raise SimulationError(f"release of unlocked key {key!r}")
        queue = queues[key]
        if queue:
            event = queue.popleft()
            event.succeed()
            if self._traced:
                entry = self._waiting.pop(event, None)
                if entry is not None:
                    self._owners[key] = entry[1]
                else:
                    self._owners.pop(key, None)
        else:
            del queues[key]
            if self._traced:
                self._owners.pop(key, None)

    def _sort_key(self, key: Any) -> str:
        memoized = self._sort_keys.get(key)
        if memoized is None:
            memoized = self._sort_keys[key] = repr(key)
        return memoized

    def acquire_all(self, keys: Iterable[Any], owner: Any = None) -> Generator:
        """Acquire every key in sorted order (deadlock-free helper).

        Usage: ``yield from lock_table.acquire_all(keys)``. Duplicate
        keys are acquired once. The global order is the keys' ``repr``
        (memoized per key) — this exact order is load-bearing for
        bit-identity, so do not "simplify" it to natural tuple order.
        ``owner`` flows to :meth:`acquire` for wait-for edges.
        """
        unique = set(keys)
        if len(unique) == 1:
            yield self.acquire(unique.pop(), owner)
            return
        for key in sorted(unique, key=self._sort_key):
            yield self.acquire(key, owner)

    def release_all(self, keys: Iterable[Any]) -> None:
        """Release every key previously acquired via :meth:`acquire_all`."""
        unique = set(keys)
        if len(unique) == 1:
            self.release(unique.pop())
            return
        for key in sorted(unique, key=self._sort_key):
            self.release(key)
