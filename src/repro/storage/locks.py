"""Per-key FIFO write locks.

The paper's engine avoids transactional aborts on write-write conflicts
by mutually excluding writers per record (§V-A1). Locks are granted in
FIFO order; multi-key acquisition is done in globally sorted key order
to make deadlock impossible.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, Iterable

from repro.sim.core import Environment, Event, SimulationError


class LockTable:
    """FIFO mutual-exclusion locks keyed by record key."""

    def __init__(self, env: Environment):
        self.env = env
        # key -> deque of waiter events; presence of the key means locked.
        self._queues: Dict[Any, Deque[Event]] = {}
        #: Total number of acquisitions that had to wait (contention stat).
        self.contended_acquires = 0
        self.total_acquires = 0

    def is_locked(self, key: Any) -> bool:
        return key in self._queues

    def held_count(self) -> int:
        """Number of keys currently locked (lock-table depth probe)."""
        return len(self._queues)

    def waiting_count(self) -> int:
        """Total transactions queued behind held locks."""
        return sum(len(queue) for queue in self._queues.values())

    def waiters(self, key: Any) -> int:
        queue = self._queues.get(key)
        return len(queue) if queue else 0

    def acquire(self, key: Any) -> Event:
        """Event that triggers when the caller holds ``key``'s lock."""
        self.total_acquires += 1
        event = Event(self.env)
        queue = self._queues.get(key)
        if queue is None:
            self._queues[key] = deque()
            event.succeed()
        else:
            self.contended_acquires += 1
            queue.append(event)
        return event

    def release(self, key: Any) -> None:
        """Release ``key``; wakes the longest-waiting acquirer, if any."""
        queue = self._queues.get(key)
        if queue is None:
            raise SimulationError(f"release of unlocked key {key!r}")
        if queue:
            queue.popleft().succeed()
        else:
            del self._queues[key]

    def acquire_all(self, keys: Iterable[Any]) -> Generator:
        """Acquire every key in sorted order (deadlock-free helper).

        Usage: ``yield from lock_table.acquire_all(keys)``. Duplicate
        keys are acquired once.
        """
        for key in sorted(set(keys), key=repr):
            yield self.acquire(key)

    def release_all(self, keys: Iterable[Any]) -> None:
        """Release every key previously acquired via :meth:`acquire_all`."""
        for key in sorted(set(keys), key=repr):
            self.release(key)
