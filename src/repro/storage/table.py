"""Row-oriented in-memory tables indexed by primary key (paper §V-A1)."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.storage.record import VersionedRecord


class Table:
    """A named collection of versioned records, indexed by primary key."""

    def __init__(self, name: str):
        self.name = name
        self._rows: Dict[Any, VersionedRecord] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, primary_key: Any) -> bool:
        return primary_key in self._rows

    def __iter__(self) -> Iterator[VersionedRecord]:
        return iter(self._rows.values())

    def insert(self, primary_key: Any, value: Any = None) -> VersionedRecord:
        """Create a record; raises if the primary key already exists."""
        if primary_key in self._rows:
            raise KeyError(f"duplicate primary key {primary_key!r} in table {self.name!r}")
        record = VersionedRecord((self.name, primary_key), value)
        self._rows[primary_key] = record
        return record

    def get(self, primary_key: Any) -> Optional[VersionedRecord]:
        """The record for ``primary_key``, or None."""
        return self._rows.get(primary_key)

    def get_or_insert(self, primary_key: Any, value: Any = None) -> VersionedRecord:
        """Fetch the record, creating it with ``value`` if absent."""
        record = self._rows.get(primary_key)
        if record is None:
            record = self.insert(primary_key, value)
        return record

    def version_count(self) -> int:
        """Total retained versions across all rows (memory footprint proxy)."""
        return sum(record.version_count for record in self._rows.values())
