"""RPC modelling helpers.

The paper's components communicate via Apache Thrift RPC. We model a
remote call as: request traverses the network (latency + size), the
handler runs using the *destination's* resources (its CPU, locks,
version watch), and the reply traverses the network back. The handler
executes inside the caller's simulated process, which is semantically
equivalent for timing purposes and keeps the call structure direct.

:func:`guarded_call` is the fault-aware variant: the handler runs in
its own tracked process on the destination (so a crash can interrupt
it), the caller races it against an RPC timeout and the destination's
crash, and per-link loss/partition/delay from the installed fault
injector applies to both legs. Without an injector it delegates to
:func:`remote_call`, byte- and event-identical to the legacy path.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.faults.errors import FaultError, RpcTimeout, SiteDown
from repro.faults.plan import FRONTEND
from repro.sim.network import Network
from repro.transactions import Transaction


def remote_call(
    network: Network,
    handler: Generator,
    request_size: int = 64,
    response_size: int = 64,
    category: str = "rpc",
    txn: Optional[Transaction] = None,
) -> Generator:
    """Run ``handler`` behind a simulated request/reply network hop.

    Usage: ``result = yield from remote_call(net, site.do_thing(...))``.
    If ``txn`` is given, the two wire delays are accumulated into its
    ``network`` timing bucket for the latency breakdown (Figure 7).
    """
    env = network.env
    tracer = env.obs.tracer
    request_delay = network.delay_for(request_size)
    network.account(category, request_size)
    request_started = env._now
    traced = tracer.enabled
    yield env.timeout(request_delay)
    if txn is not None and traced:
        tracer.span("network", request_started, env.now,
                    track="net", txn=txn, category=category)
    result = yield from handler
    response_delay = network.delay_for(response_size)
    network.account(category, response_size)
    response_started = env.now
    yield env.timeout(response_delay)
    if txn is not None:
        txn.add_timing("network", request_delay + response_delay)
        if traced:
            tracer.span("network", response_started, env.now,
                        track="net", txn=txn, category=category)
            tracer.edge("rpc", request_started, txn=txn, track="net",
                        category=category, outcome="ok",
                        rtt=env.now - request_started)
    return result


class _Box:
    """Out-of-band result slot for a handler run in its own process."""

    __slots__ = ("result", "exc")

    def __init__(self):
        self.result = None
        self.exc = None


def _run_boxed(handler: Generator, box: _Box):
    """Drive ``handler``, parking its outcome in ``box``.

    Injected failures (a crash interrupt) are absorbed so the wrapping
    process always *succeeds* — a failed process that nobody awaits
    (its caller timed out and moved on) would otherwise surface as an
    unhandled simulation error. Genuine bugs still propagate.
    """
    try:
        box.result = yield from handler
    except FaultError as exc:
        box.exc = exc


def site_process(site, handler: Generator):
    """Run ``handler`` as a tracked process on ``site``, crash-raced.

    For work a protocol executes *at* a site outside any RPC (a 2PC
    coordinator's own branch and decision logic): if the site crashes
    mid-way the handler is interrupted and the caller sees
    :class:`SiteDown`. Usage: ``x = yield from site_process(site, gen)``.
    """
    if not site.alive:
        raise SiteDown(site.index)
    env = site.env
    box = _Box()
    proc = env.process(_run_boxed(handler, box))
    site.track(proc)
    crash = site.crash_event
    yield env.any_of([proc, crash])
    if proc.triggered:
        if box.exc is not None:
            raise box.exc
        return box.result
    raise SiteDown(site.index)


def guarded_call(
    network: Network,
    site,
    handler: Generator,
    src: int = FRONTEND,
    request_size: int = 64,
    response_size: int = 64,
    category: str = "rpc",
    txn: Optional[Transaction] = None,
    timeout_ms: Optional[float] = None,
) -> Generator:
    """Fault-aware remote call to ``site``.

    Semantics when a fault injector is installed:

    * the request leg can be lost or partitioned away — the caller
      learns nothing until the timeout fires
      (``RpcTimeout(dispatched=False)``: the handler never started,
      the caller owns all cleanup);
    * arrival at a dead site is refused — :class:`SiteDown` after one
      round trip (connection reset), at-least-once dispatch never
      happened;
    * the handler runs in its own process on the destination, so the
      destination's crash interrupts it (its ``finally`` blocks run)
      and the caller gets :class:`SiteDown`;
    * a slow handler or a lost response leg yields
      ``RpcTimeout(dispatched=True)``: the handler did (or still may)
      run to completion on the live destination, so idempotency /
      cleanup there is the *handler's* responsibility, not the
      caller's.

    Every outcome is reported to the injector's failure detector.
    Without an injector this is exactly :func:`remote_call`.
    """
    faults = network.faults
    if faults is None:
        result = yield from remote_call(
            network, handler,
            request_size=request_size, response_size=response_size,
            category=category, txn=txn,
        )
        return result
    env = network.env
    dst = site.index
    # Explicit per-call budgets (remastering's longer leash) win;
    # otherwise the injector supplies the deadline — the fixed timeout,
    # or a per-destination quantile-tracked one when adaptive deadlines
    # are on (how a fail-slow site gets noticed in milliseconds).
    budget = timeout_ms if timeout_ms is not None else faults.deadline_ms(dst)
    started = env.now
    tracer = env.obs.tracer
    traced = tracer.enabled and txn is not None

    def _edge(outcome):
        # Causal edge pairing this request with however it resolved
        # (ok / down / timeout) — recorded at resolution time so the
        # rtt covers the full round including injected losses.
        tracer.edge("rpc", started, txn=txn, track="net",
                    category=category, outcome=outcome, dst=dst,
                    rtt=env.now - started)

    def _timed_out(dispatched):
        remaining = budget - (env.now - started)
        faults.detector.report_timeout(dst)
        return RpcTimeout(
            f"rpc to site {dst} timed out after {budget}ms", dispatched=dispatched
        ), max(0.0, remaining)

    # Request leg.
    network.account(category, request_size)
    if network.leg_lost(src, dst):
        exc, remaining = _timed_out(dispatched=False)
        yield env.timeout(remaining)
        if traced:
            _edge("timeout")
        raise exc
    yield env.timeout(network.leg_delay(src, dst, request_size))
    if not site.alive:
        # Connection refused: the reset travels the reverse leg (and
        # can itself be lost, which then looks like a timeout).
        if network.leg_lost(dst, src):
            exc, remaining = _timed_out(dispatched=False)
            yield env.timeout(remaining)
            if traced:
                _edge("timeout")
            raise exc
        yield env.timeout(network.leg_delay(dst, src))
        faults.detector.report_down(dst)
        if traced:
            _edge("down")
        raise SiteDown(dst)

    # Dispatch: the handler runs on the destination, raced against the
    # caller's timeout and the destination's crash.
    box = _Box()
    proc = env.process(_run_boxed(handler, box))
    site.track(proc)
    crash = site.crash_event
    deadline = env.timeout(max(0.0, budget - (env.now - started)))
    yield env.any_of([proc, deadline, crash])
    if proc.triggered and box.exc is not None:
        faults.detector.report_down(dst)
        if traced:
            _edge("down")
        raise box.exc
    if proc.triggered:
        # Response leg.
        network.account(category, response_size)
        if network.leg_lost(dst, src):
            exc, remaining = _timed_out(dispatched=True)
            yield env.timeout(remaining)
            if traced:
                _edge("timeout")
            raise exc
        yield env.timeout(network.leg_delay(dst, src, response_size))
        faults.detector.report_success(dst)
        # Passive RTT observation feeding the adaptive deadline /
        # hedge-delay quantiles (recording only — no events, no draws).
        faults.observe_rtt(dst, env.now - started)
        if traced:
            _edge("ok")
        return box.result
    if crash.triggered:
        faults.detector.report_down(dst)
        if traced:
            _edge("down")
        raise SiteDown(dst)
    exc, _ = _timed_out(dispatched=True)
    if traced:
        _edge("timeout")
    raise exc


class RetryPolicy:
    """Bounded retries with seeded, jittered exponential backoff."""

    def __init__(self, rpc, rng):
        self.rpc = rpc
        self._rng = rng

    @property
    def attempts(self) -> int:
        """Total tries: the first attempt plus ``max_retries`` retries."""
        return self.rpc.max_retries + 1

    def backoff_ms(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered ±50%."""
        base = min(self.rpc.backoff_cap_ms, self.rpc.backoff_base_ms * (2.0 ** attempt))
        return base * (0.5 + self._rng.random())
