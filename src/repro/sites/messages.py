"""RPC modelling helpers.

The paper's components communicate via Apache Thrift RPC. We model a
remote call as: request traverses the network (latency + size), the
handler runs using the *destination's* resources (its CPU, locks,
version watch), and the reply traverses the network back. The handler
executes inside the caller's simulated process, which is semantically
equivalent for timing purposes and keeps the call structure direct.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.network import Network
from repro.transactions import Transaction


def remote_call(
    network: Network,
    handler: Generator,
    request_size: int = 64,
    response_size: int = 64,
    category: str = "rpc",
    txn: Optional[Transaction] = None,
) -> Generator:
    """Run ``handler`` behind a simulated request/reply network hop.

    Usage: ``result = yield from remote_call(net, site.do_thing(...))``.
    If ``txn`` is given, the two wire delays are accumulated into its
    ``network`` timing bucket for the latency breakdown (Figure 7).
    """
    env = network.env
    tracer = env.obs.tracer
    request_delay = network.delay_for(request_size)
    network.account(category, request_size)
    request_started = env.now
    yield env.timeout(request_delay)
    if txn is not None:
        tracer.span("network", request_started, env.now,
                    track="net", txn=txn, category=category)
    result = yield from handler
    response_delay = network.delay_for(response_size)
    network.account(category, response_size)
    response_started = env.now
    yield env.timeout(response_delay)
    if txn is not None:
        txn.add_timing("network", request_delay + response_delay)
        tracer.span("network", response_started, env.now,
                    track="net", txn=txn, category=category)
    return result
