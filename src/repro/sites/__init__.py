"""Data sites: site manager + database + replication manager (paper §V-A).

A :class:`~repro.sites.data_site.DataSite` integrates the storage
engine, version-vector bookkeeping, the durable log, and the refresh
application pipeline into one component, exactly as the paper does to
avoid redundant concurrency control. The site exposes generator
methods (execute/commit, release/grant, 2PC branches, data shipping)
that run inside the calling process but consume the site's simulated
CPU, so queueing at a saturated site emerges naturally.
"""

from repro.sites.activity import PartitionActivity
from repro.sites.data_site import DataSite, MastershipError
from repro.sites.messages import remote_call

__all__ = ["DataSite", "MastershipError", "PartitionActivity", "remote_call"]
