"""In-flight write tracking per (site, partition).

When a site manager receives a ``release`` request it must wait for
"any ongoing transactions writing the data to finish before releasing
mastership" (paper §III-B). The site selector registers a routed
update transaction against its partitions *before* it drops the
partition metadata locks, and the data site deregisters it at commit;
a release therefore observes every transaction that was routed under
the old mastership and quiesces before handing the partition over.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.core import Environment, Event


class PartitionActivity:
    """Counts in-flight update transactions per (site, partition)."""

    def __init__(self, env: Environment):
        self.env = env
        self._counts: Dict[Tuple[int, int], int] = {}
        self._waiters: Dict[Tuple[int, int], List[Event]] = {}

    def active(self, site: int, partition: int) -> int:
        return self._counts.get((site, partition), 0)

    def begin(self, site: int, partitions) -> None:
        """Register one in-flight writer on each partition at ``site``."""
        for partition in partitions:
            key = (site, partition)
            self._counts[key] = self._counts.get(key, 0) + 1

    def finish(self, site: int, partitions) -> None:
        """Deregister the writer; wakes quiesce waiters at zero."""
        for partition in partitions:
            key = (site, partition)
            remaining = self._counts.get(key, 0) - 1
            if remaining < 0:
                raise ValueError(f"finish() without begin() for {key}")
            if remaining:
                self._counts[key] = remaining
                continue
            self._counts.pop(key, None)
            for event in self._waiters.pop(key, ()):  # wake all
                event.succeed()

    def quiesced(self, site: int, partition: int) -> Event:
        """Event that triggers once no writer is in flight on ``partition``."""
        event = Event(self.env)
        key = (site, partition)
        if self._counts.get(key, 0) == 0:
            event.succeed()
        else:
            self._waiters.setdefault(key, []).append(event)
        return event
