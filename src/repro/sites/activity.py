"""In-flight write tracking per (site, partition).

When a site manager receives a ``release`` request it must wait for
"any ongoing transactions writing the data to finish before releasing
mastership" (paper §III-B). The site selector registers a routed
update transaction against its partitions *before* it drops the
partition metadata locks, and the data site deregisters it at commit;
a release therefore observes every transaction that was routed under
the old mastership and quiesces before handing the partition over.

Registrations are tracked as *tokens* rather than bare counts so that
fault handling stays sound: when a routed attempt times out and is
retried, the caller and the (possibly still-running) abandoned handler
may both try to deregister, and token identity makes the second
``finish`` a no-op instead of corrupting another attempt's
registration. Callers that never race (the unfaulted protocol stack
and the existing tests) can omit the token entirely and get the
classic balanced begin/finish counting behavior.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Set, Tuple

from repro.sim.core import Environment, Event


class PartitionActivity:
    """Tracks in-flight update transactions per (site, partition)."""

    def __init__(self, env: Environment):
        self.env = env
        self._tokens: Dict[Tuple[int, int], Set] = {}
        self._waiters: Dict[Tuple[int, int], List[Event]] = {}
        self._anon = count()

    def active(self, site: int, partition: int) -> int:
        return len(self._tokens.get((site, partition), ()))

    def begin(self, site: int, partitions, token=None):
        """Register one in-flight writer on each partition at ``site``.

        Returns the registration token (auto-generated when omitted);
        pass the same token to :meth:`finish` to deregister exactly
        this registration.
        """
        if token is None:
            token = ("anon", next(self._anon))
        for partition in partitions:
            self._tokens.setdefault((site, partition), set()).add(token)
        return token

    def finish(self, site: int, partitions, token=None) -> None:
        """Deregister a writer; wakes quiesce waiters at zero.

        Without a token, removes one (arbitrary) registration per
        partition — the classic counting behavior — and raises if none
        exists. With a token, removal is idempotent: deregistering a
        registration that is already gone (or was never made, because
        the attempt died before routing registered it) is a no-op.
        """
        for partition in partitions:
            key = (site, partition)
            tokens = self._tokens.get(key)
            if token is None:
                if not tokens:
                    raise ValueError(f"finish() without begin() for {key}")
                tokens.pop()
            else:
                if not tokens or token not in tokens:
                    continue
                tokens.discard(token)
            if tokens:
                continue
            self._tokens.pop(key, None)
            for event in self._waiters.pop(key, ()):  # wake all
                event.succeed()

    def quiesced(self, site: int, partition: int) -> Event:
        """Event that triggers once no writer is in flight on ``partition``."""
        event = Event(self.env)
        key = (site, partition)
        if not self._tokens.get(key):
            event.succeed()
        else:
            self._waiters.setdefault(key, []).append(event)
        return event

    def clear_site(self, site: int) -> None:
        """Drop every registration at ``site`` (it crashed) and wake waiters.

        The registered transactions died with the site, so nothing will
        ever deregister them; anyone quiescing the site's partitions
        (an in-flight release) would otherwise wait forever.
        """
        keys = [key for key in self._tokens if key[0] == site]
        for key in keys:
            self._tokens.pop(key, None)
            for event in self._waiters.pop(key, ()):
                event.succeed()
