"""A data site: site manager, database, and replication manager.

All methods that do timed work are generators meant to be driven from a
simulated process (optionally behind :func:`repro.sites.messages.remote_call`).
They consume this site's CPU resource, so a site saturated with update
transactions queues work exactly like the paper's single-master
bottleneck.

The site implements:

* local update execution and commit (assigning transaction version
  vectors, appending to the durable log — §III-A, §V-A2);
* read-only execution at a snapshot (§IV-B);
* the ``release`` / ``grant`` halves of the remastering protocol
  (§III-B, Algorithm 1);
* 2PC participant branches used by the multi-master and
  partition-store comparators (§VI-A.1);
* record shipping used by the LEAP comparator.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.faults.errors import REASON_TIMEOUT, SiteDown, TransactionAborted
from repro.replication.log import GRANT, RELEASE, UPDATE, DurableLog, LogRecord
from repro.replication.manager import ReplicationManager
from repro.sim.config import ClusterConfig
from repro.sim.core import Environment, Event
from repro.sim.network import Network
from repro.sim.resources import Resource
from repro.sites.activity import PartitionActivity
from repro.storage.database import Database
from repro.storage.locks import LockTable
from repro.transactions import Transaction
from repro.versioning.vectors import VersionVector
from repro.versioning.watch import VersionWatch


class MastershipError(Exception):
    """An update arrived at a site that does not master its write set."""


class DataSite:
    """One simulated data-site machine."""

    def __init__(
        self,
        env: Environment,
        index: int,
        num_sites: int,
        config: ClusterConfig,
        network: Network,
        activity: PartitionActivity,
        replicated: bool = True,
    ):
        self.env = env
        self.index = index
        self.num_sites = num_sites
        self.config = config
        self.network = network
        self.activity = activity
        #: Whether this site participates in lazy replication (the
        #: partition-store and LEAP comparators do not).
        self.replicated = replicated

        self.svv = VersionVector.zeros(num_sites)
        self.watch = VersionWatch(env, self.svv)
        self.cpu = Resource(env, config.cores_per_site)
        self.database = Database(env, max_versions=config.max_versions)
        sizes = config.sizes
        self.log = DurableLog(
            env,
            index,
            delivery_delay_ms=config.log_delivery_ms,
            network=network if replicated else None,
            record_size=lambda record: sizes.update_record_bytes(
                len(record.writes), num_sites
            ),
        )
        self.replication = ReplicationManager(self)
        #: Partition ids whose master copy lives here.
        self.mastered: Set[int] = set()
        self.commits = 0
        self.read_txns = 0

        # -- failure lifecycle (only exercised under fault injection) --
        #: False between a crash and the completed restart.
        self.alive = True
        #: Incremented on every crash; lets late observers notice that
        #: the machine they were talking to is a different incarnation.
        self.epoch = 0
        #: Pending event that triggers when this incarnation crashes.
        #: Creating an Event schedules nothing, so keeping one around
        #: permanently is free for unfaulted runs.
        self.crash_event = Event(env)
        #: RPC handler processes currently executing on this machine;
        #: a crash interrupts them so their cleanup runs before the
        #: volatile state is discarded.
        self._inflight: Set = set()
        #: (txn id, branch keys) of 2PC branches holding locks here
        #: (between rounds). Keyed per branch, not per txn: a txn whose
        #: units co-locate has several branches at this site, each
        #: holding (and releasing) its own keys.
        self._branch_locked: Set = set()
        #: Commit vectors of decided branches, for idempotent retries.
        self._branch_results = {}
        #: Txn ids presumed-aborted here; poisons a still-queued branch
        #: execution so an abandoned dispatch cannot grab locks after
        #: the coordinator already gave up on the transaction.
        self._branch_aborted: Set = set()

    # -- wiring ---------------------------------------------------------------

    def connect(self, sites: Sequence["DataSite"]) -> None:
        """Subscribe this site's replication manager to every other log."""
        for other in sites:
            if other is not self and self.replicated and other.replicated:
                self.replication.subscribe_to(other.log)

    # -- failure lifecycle ----------------------------------------------------

    def track(self, proc) -> None:
        """Register an in-flight handler process for crash interruption."""
        self._inflight.add(proc)
        inflight = self._inflight

        def _done(_event, proc=proc):
            inflight.discard(proc)

        proc.callbacks.append(_done)

    def crash(self) -> None:
        """Fail-stop this machine (fault injection only).

        Order matters: the crash event is scheduled first (so anything
        racing a handler against it observes the crash), then every
        in-flight handler is interrupted *synchronously* — their
        ``finally`` blocks release locks, CPU slots, and activity
        registrations against the pre-crash structures — and only then
        is the volatile state discarded. The durable log survives (it
        lives on the log service, not this machine), as does, for the
        non-replicated comparators, the locally-durable record store.
        """
        if not self.alive:
            return
        self.alive = False
        self.crash_event.succeed()
        for proc in list(self._inflight):
            proc.interrupt(SiteDown(self.index))
        self._inflight.clear()
        self.replication.shutdown()
        # Volatile state dies with the machine.
        self.cpu = Resource(self.env, self.config.cores_per_site)
        self._branch_locked.clear()
        self._branch_results.clear()
        self._branch_aborted.clear()
        if self.replicated:
            # In-memory MVCC store: rebuilt from the durable logs on
            # restart (paper §V-C).
            self.database = Database(self.env, max_versions=self.config.max_versions)
            self.svv = VersionVector.zeros(self.num_sites)
            self.watch = VersionWatch(self.env, self.svv)
            self.mastered = set()
        else:
            # Partition-store / LEAP model a locally durable store:
            # record state survives; the lock table is volatile.
            self.database.locks = LockTable(self.env)
        self.activity.clear_site(self.index)
        self.epoch += 1

    def complete_restart(self, database, svv, mastered) -> None:
        """Install recovered state and come back online.

        Called by :func:`repro.replication.recovery.rejoin_site` after
        the (CPU-charged) log replay finished; the caller re-subscribes
        the replication manager from ``svv`` afterwards.
        """
        self.database = database
        self.svv = svv
        self.watch = VersionWatch(self.env, svv)
        self.mastered = set(mastered)
        self.commits = sum(1 for record in self.log.records if record.kind == UPDATE)
        self.crash_event = Event(self.env)
        self.alive = True

    # -- local transaction execution ---------------------------------------

    def execute_update(
        self,
        txn: Transaction,
        min_begin: Optional[VersionVector] = None,
        partitions: Iterable[int] = (),
        verify_mastership: bool = False,
        token=None,
    ):
        """Execute and commit an update transaction locally.

        ``min_begin`` is the minimum version the transaction must
        observe (the element-wise max of grant vectors and the client's
        session vector). ``partitions`` are the write-set partitions
        for activity deregistration at commit, and ``token`` the
        activity registration to deregister (fault-aware routers pass
        a per-attempt token so a retried transaction cannot clobber
        another attempt's registration). With ``verify_mastership``
        (the distributed site-selector of Appendix I), the site aborts
        — returns None — if it no longer masters a write-set partition.

        Returns the transaction version vector (commit timestamp).
        """
        partitions = tuple(partitions)
        costs = self.config.costs
        env = self.env
        tracer = env.obs.tracer
        traced = tracer.enabled
        track = f"site{self.index}" if traced else ""
        if verify_mastership and any(p not in self.mastered for p in partitions):
            self.activity.finish(self.index, partitions, token)
            if traced:
                tracer.instant("mastership_miss", env._now, track=track, txn=txn)
            return None
        started = env._now
        if min_begin is not None and not self.svv.dominates(min_begin):
            if traced:
                self._refresh_edge(tracer, txn, track, min_begin)
            yield self.watch.wait_for(min_begin)
        txn.add_timing("freshness_wait", env._now - started)
        if traced:
            tracer.span("freshness_wait", started, env._now, track=track, txn=txn)

        lock_started = env._now
        yield from self.database.locks.acquire_all(txn.write_set, txn)
        txn.add_timing("lock_wait", env._now - lock_started)
        if traced:
            tracer.span("lock_wait", lock_started, env._now, track=track, txn=txn)
        try:
            begin_started = env._now
            yield from self.cpu.use(costs.txn_begin_ms, txn=txn, track=track)
            begin_vv = self.svv.copy()
            txn.add_timing("begin", env._now - begin_started)
            if traced:
                tracer.span("begin", begin_started, env._now, track=track, txn=txn)

            execute_started = env._now
            service = costs.execution_ms(
                len(txn.read_set), len(txn.write_set), len(txn.scan_set)
            )
            yield from self.cpu.use(service + txn.extra_cpu_ms, txn=txn, track=track)
            for key in txn.read_set:
                self.database.read(key, begin_vv)
            txn.add_timing("execute", env._now - execute_started)
            if traced:
                tracer.span("execute", execute_started, env._now, track=track, txn=txn)

            commit_started = env._now
            yield from self.cpu.use(costs.txn_commit_ms, txn=txn, track=track)
            tvv = self._commit(txn, begin_vv)
            txn.add_timing("commit", env._now - commit_started)
            if traced:
                tracer.span("commit", commit_started, env._now, track=track, txn=txn)
        finally:
            self.database.locks.release_all(txn.write_set)
            if partitions:
                self.activity.finish(self.index, partitions, token)
        return tvv

    def _refresh_edge(self, tracer, txn, track, min_begin) -> None:
        """Record which lagging replication origins a snapshot waits on.

        Called (traced runs only) just before blocking on the version
        watch: each ``(origin, have, need)`` names a pending update
        stream this site must apply before the transaction may begin.
        """
        lagging = tuple(
            (origin, self.svv[origin], min_begin[origin])
            for origin in range(self.num_sites)
            if self.svv[origin] < min_begin[origin]
        )
        tracer.edge("refresh_wait", self.env._now, txn=txn, track=track,
                    lagging=lagging)

    def _commit(self, txn: Transaction, begin_vv: VersionVector) -> VersionVector:
        """Assign the commit timestamp, install versions, append to the log."""
        seq = self.svv.increment(self.index)
        tvv = begin_vv  # the begin vector with this site's slot bumped
        tvv[self.index] = seq
        writes = tuple((key, txn.txn_id) for key in txn.write_set)
        self.database.install_many(writes, self.index, seq)
        self.log.append(LogRecord(UPDATE, self.index, tvv.to_tuple(), writes))
        self.commits += 1
        self.watch.notify()
        return tvv

    def execute_read(
        self,
        txn: Transaction,
        min_begin: Optional[VersionVector] = None,
        keys: Optional[Tuple] = None,
        scans: Optional[Tuple] = None,
    ):
        """Execute a read-only transaction at this site's snapshot.

        ``keys``/``scans`` restrict the access to a subset (used by the
        partition-store's scatter-gather reads); by default the whole
        read and scan sets run here. Returns the begin vector the
        reads observed, for session maintenance.
        """
        costs = self.config.costs
        env = self.env
        tracer = env.obs.tracer
        traced = tracer.enabled
        track = f"site{self.index}" if traced else ""
        started = env._now
        if min_begin is not None and not self.svv.dominates(min_begin):
            if traced:
                self._refresh_edge(tracer, txn, track, min_begin)
            yield self.watch.wait_for(min_begin)
        txn.add_timing("freshness_wait", env._now - started)
        if traced:
            tracer.span("freshness_wait", started, env._now, track=track, txn=txn)

        read_keys = txn.read_set if keys is None else keys
        scan_keys = txn.scan_set if scans is None else scans
        execute_started = env._now
        yield from self.cpu.use(costs.txn_begin_ms, txn=txn, track=track)
        begin_vv = self.svv.copy()
        service = costs.execution_ms(len(read_keys), 0, len(scan_keys))
        yield from self.cpu.use(service + txn.extra_cpu_ms, txn=txn, track=track)
        for key in read_keys:
            self.database.read(key, begin_vv)
        txn.add_timing("execute", env._now - execute_started)
        if traced:
            tracer.span("execute", execute_started, env._now, track=track, txn=txn)
        self.read_txns += 1
        return begin_vv

    # -- remastering (paper §III-B) ------------------------------------------

    def release_mastership(self, partitions: Sequence[int]):
        """Release the master copies of ``partitions`` (the *release* RPC).

        Waits for in-flight writers on those partitions, bumps this
        site's version vector (the increment the SI proof relies on),
        durably logs the release, and returns the site version vector
        at the release point.

        Under fault injection a retried release may name partitions
        this site already let go of (the first attempt's reply was
        lost); those are skipped rather than rejected, and if nothing
        is left to release the current site vector — which necessarily
        covers the earlier release point — is returned without a new
        marker.
        """
        if self.network.faults is not None:
            partitions = [p for p in partitions if p in self.mastered]
            if not partitions:
                return self.svv.copy()
        else:
            for partition in partitions:
                if partition not in self.mastered:
                    raise MastershipError(
                        f"site {self.index} asked to release unmastered partition {partition}"
                    )
        quiesce_started = self.env._now
        quiesce = [self.activity.quiesced(self.index, p) for p in partitions]
        yield self.env.all_of(quiesce)
        yield from self.cpu.use(self.config.costs.release_ms * len(partitions))
        self.mastered.difference_update(partitions)
        tracer = self.env.obs.tracer
        if tracer.enabled:
            tracer.span(
                "release_quiesce", quiesce_started, self.env._now,
                track=f"site{self.index}", partitions=len(partitions),
            )
        seq = self.svv.increment(self.index)
        # The marker is a no-op: it depends only on this site's own
        # prior records (FIFO), so its transaction vector carries just
        # the commit sequence. Any real update to the released items is
        # earlier in this log and carries its own dependencies.
        marker_tvv = tuple(
            seq if index == self.index else 0 for index in range(self.num_sites)
        )
        self.log.append(
            LogRecord(RELEASE, self.index, marker_tvv, partitions=tuple(partitions))
        )
        self.watch.notify()
        return self.svv.copy()

    def grant_mastership(
        self,
        partitions: Sequence[int],
        release_vv: VersionVector,
        source: Optional[int] = None,
    ):
        """Take mastership of ``partitions`` (the *grant* RPC).

        Blocks until this site has applied the releasing site's updates
        up to the point of the release (paper §III-B) — that is, until
        ``svv[source]`` reaches the release marker. Updates from other
        origins that those depended on are forced earlier by the update
        application rule, so a single-component wait suffices. Records
        the grant durably and returns this site's version vector at the
        time of ownership, which becomes part of the transaction's
        minimum begin version.
        """
        if source is not None:
            release_point = release_vv[source]
            if self.svv[source] < release_point:
                yield self.watch.wait_until(
                    lambda: self.svv[source] >= release_point
                )
        elif not self.svv.dominates(release_vv):
            yield self.watch.wait_for(release_vv)
        yield from self.cpu.use(self.config.costs.grant_ms * len(partitions))
        self.mastered.update(partitions)
        tracer = self.env.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "mastership_grant", self.env._now, track=f"site{self.index}",
                partitions=len(partitions), source=source,
            )
        seq = self.svv.increment(self.index)
        # The grant marker declares a dependency on the release marker
        # (position ``source`` of its vector), so that log replay—and
        # refresh application everywhere—orders every remaster chain of
        # a partition exactly as the site selector serialized it.
        if source is not None:
            deps = [0] * self.num_sites
            deps[source] = release_vv[source]
        else:
            deps = list(release_vv)
        deps[self.index] = seq
        self.log.append(
            LogRecord(
                GRANT,
                self.index,
                tuple(deps),
                partitions=tuple(partitions),
                target=self.index,
            )
        )
        self.watch.notify()
        return self.svv.copy()

    # -- 2PC participant branches (multi-master / partition-store) ---------

    def execute_branch(
        self,
        txn: Transaction,
        keys: Tuple,
        min_begin: Optional[VersionVector] = None,
    ):
        """Round 1 of a distributed write: execute this site's branch.

        Acquires write locks on the local portion and executes it. The
        locks stay held — blocking conflicting transactions — through
        :meth:`prepare_branch` and until :meth:`commit_branch` or
        :meth:`abort_branch` arrives with the global decision; this
        blocking across the prepare/commit rounds is precisely the 2PC
        cost the paper measures against.
        """
        costs = self.config.costs
        tracer = self.env.obs.tracer
        traced = tracer.enabled
        track = f"site{self.index}" if traced else ""
        started = self.env._now
        if min_begin is not None and not self.svv.dominates(min_begin):
            if traced:
                self._refresh_edge(tracer, txn, track, min_begin)
            yield self.watch.wait_for(min_begin)
        txn.add_timing("freshness_wait", self.env._now - started)
        if traced:
            tracer.span("freshness_wait", started, self.env._now, track=track, txn=txn)
        lock_started = self.env._now
        yield from self.database.locks.acquire_all(keys, txn)
        if self.network.faults is not None and txn.txn_id in self._branch_aborted:
            # The coordinator presumed-aborted this transaction while
            # the branch was still queued; grabbing the locks now would
            # leak them forever.
            self.database.locks.release_all(keys)
            raise TransactionAborted(
                REASON_TIMEOUT, f"branch of {txn.txn_id} aborted before execution"
            )
        self._branch_locked.add((txn.txn_id, keys))
        txn.add_timing("lock_wait", self.env._now - lock_started)
        if traced:
            tracer.span("lock_wait", lock_started, self.env._now, track=track, txn=txn)
        execute_started = self.env._now
        yield from self.cpu.use(costs.txn_begin_ms, txn=txn, track=track)
        begin_vv = self.svv.copy()
        share = len(keys) / max(1, len(txn.write_set))
        service = costs.execution_ms(0, len(keys), 0) + txn.extra_cpu_ms * share
        yield from self.cpu.use(service, txn=txn, track=track)
        # Trace-only: branch execution is deliberately not added to the
        # metrics breakdown (it overlaps other branches of the same txn).
        if traced:
            tracer.span("branch_execute", execute_started, self.env._now,
                        track=track, txn=txn)
        return begin_vv

    def prepare_branch(self, txn: Transaction, keys: Tuple):
        """Round 2 of a distributed write: force-log the prepare record
        and vote yes. Locks remain held."""
        tracer = self.env.obs.tracer
        track = f"site{self.index}" if tracer.enabled else ""
        started = self.env._now
        yield from self.cpu.use(self.config.costs.prepare_ms, txn=txn, track=track)
        if tracer.enabled:
            tracer.span("branch_prepare", started, self.env._now,
                        track=track, txn=txn)
        return True

    def commit_branch(self, txn: Transaction, keys: Tuple, begin_vv: VersionVector):
        """Apply the global commit decision for this site's branch.

        Under fault injection the decision may be retried (the reply
        can be lost): a branch already committed returns its cached
        commit vector, and a branch lost in a crash returns None — the
        coordinator treats that as a lost branch, never as a redo.
        """
        if self.network.faults is not None:
            cached = self._branch_results.get((txn.txn_id, keys))
            if cached is not None:
                return cached
            if (txn.txn_id, keys) not in self._branch_locked:
                return None
        tracer = self.env.obs.tracer
        track = f"site{self.index}" if tracer.enabled else ""
        branch_started = self.env._now
        yield from self.cpu.use(
            self.config.costs.decide_ms + self.config.costs.txn_commit_ms,
            txn=txn, track=track,
        )
        seq = self.svv.increment(self.index)
        tvv = begin_vv.copy()
        tvv[self.index] = seq
        writes = tuple((key, txn.txn_id) for key in keys)
        self.database.install_many(writes, self.index, seq)
        self.log.append(LogRecord(UPDATE, self.index, tvv.to_tuple(), writes))
        self.commits += 1
        self.watch.notify()
        self._branch_locked.discard((txn.txn_id, keys))
        if self.network.faults is not None:
            self._branch_results[(txn.txn_id, keys)] = tvv
        self.database.locks.release_all(keys)
        if tracer.enabled:
            tracer.span("branch_commit", branch_started, self.env._now,
                        track=track, txn=txn)
        return tvv

    def abort_branch(self, txn: Transaction, keys: Tuple):
        """Apply a global abort: release locks without installing.

        Idempotent under fault injection: aborting a branch that never
        executed here (or was already decided, or died with a crash)
        is a no-op, so a coordinator can blanket-abort all branches.
        """
        if self.network.faults is not None:
            self._branch_aborted.add(txn.txn_id)
            if (txn.txn_id, keys) not in self._branch_locked:
                return
        yield from self.cpu.use(self.config.costs.decide_ms)
        self._branch_locked.discard((txn.txn_id, keys))
        self.database.locks.release_all(keys)

    # -- data shipping (LEAP comparator) -------------------------------------

    def ship_out(self, keys: Tuple):
        """Marshal and give up ownership of ``keys`` (LEAP localization).

        The caller must already hold the router-level locks that make
        the migration exclusive. Returns the payload size in bytes.
        """
        costs = self.config.costs
        yield from self.database.locks.acquire_all(keys)
        yield from self.cpu.use(costs.marshal_op_ms * len(keys))
        self.database.locks.release_all(keys)
        return len(keys) * self.config.sizes.record_bytes

    def install_shipment(self, keys: Tuple):
        """Install shipped records and take ownership (LEAP localization)."""
        yield from self.cpu.use(self.config.costs.marshal_op_ms * len(keys))

    # -- introspection ---------------------------------------------------------

    def utilization(self) -> float:
        return self.cpu.utilization()
