"""Adaptive remastering strategies (paper §IV-A).

When a transaction's write set is mastered at multiple sites, the site
selector scores every candidate destination with a weighted linear
model (Equation 8) over four features:

* ``f_balance`` (Eqs. 2–4) — how remastering the write set there would
  change the distance from perfect write-load balance, scaled by how
  unbalanced the system is;
* ``f_refresh_delay`` (Eq. 5) — how many updates the candidate still
  has to apply before the transaction could begin there;
* ``f_intra_txn`` (Eq. 6) — whether the move co-locates partitions
  that are frequently written together in one transaction;
* ``f_inter_txn`` (Eq. 7) — the same for partitions written by the
  same client within the Δt window across transactions.

The write set is remastered to the highest-scoring site.

One notational deviation from the paper: Equation 2 as printed sums
``(1/m - freq_i)`` before squaring, which is identically zero; we use
the evidently intended sum of squared deviations, which satisfies the
paper's stated properties (zero iff perfectly balanced, growing with
imbalance). The refresh-delay feature enters the benefit with a
negative sign, since larger delays make a site less attractive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.partitions import PartitionTable
from repro.core.statistics import AccessStatistics
from repro.versioning.vectors import VersionVector


@dataclass
class StrategyWeights:
    """The four hyperparameters of Equation 8 (Appendix H), plus one
    extension: ``health`` weights a soft penalty for remastering onto
    degraded sites (gray-failure defense, not in the paper; zero —
    the default — reproduces Equation 8 exactly)."""

    balance: float = 1.0
    delay: float = 0.5
    intra_txn: float = 1.0
    inter_txn: float = 0.0
    #: Weight on ``1 - health(candidate)`` — the detector's graded
    #: unhealthiness — subtracted from the benefit. Large values steer
    #: mastership away from sick-but-alive sites before suspicion
    #: trips; 0.0 disables the feature (and its computation) entirely.
    health: float = 0.0

    @classmethod
    def for_ycsb(cls) -> "StrategyWeights":
        """YCSB setting: balance dominates under skew, intra second.

        The paper uses (1e6, 0.5, 3, 0); the balance and delay features
        scale with partition mass fractions and in-flight update
        counts, both of which are ~50x larger in this scaled-down
        simulation than on the paper's 500 000-partition, 100k-tps
        testbed. The weights below give the features the same relative
        priority at this repo's scales: balance decisive under skew,
        subordinate to co-access localization near balance.
        """
        return cls(balance=10_000.0, delay=0.05, intra_txn=3.0, inter_txn=0.0)

    @classmethod
    def for_tpcc(cls) -> "StrategyWeights":
        """TPC-C setting: co-access dominates, balance secondary.

        The paper uses (0.01, 0.05, 0.88, 0.88); as with
        :meth:`for_ycsb`, the balance weight is rescaled to this
        simulation's feature magnitudes — large enough to stop the
        co-access features from gradually mastering every warehouse at
        one site, small enough that warehouse locality decides
        individual placements.
        """
        return cls(balance=2000.0, delay=0.05, intra_txn=0.88, inter_txn=0.88)

    @classmethod
    def for_smallbank(cls) -> "StrategyWeights":
        """SmallBank: YCSB weights with the balance weight dialled down
        (paper: 1 vs YCSB's 1e6; same 100x-down ratio here)."""
        return cls(balance=100.0, delay=0.05, intra_txn=3.0, inter_txn=0.0)

    def scaled(self, **factors: float) -> "StrategyWeights":
        """A copy with named weights multiplied (sensitivity sweeps)."""
        values = {
            "balance": self.balance,
            "delay": self.delay,
            "intra_txn": self.intra_txn,
            "inter_txn": self.inter_txn,
            "health": self.health,
        }
        for name, factor in factors.items():
            if name not in values:
                raise ValueError(f"unknown weight {name!r}")
            values[name] *= factor
        return StrategyWeights(**values)


@dataclass(slots=True)
class SiteScore:
    """Feature values and combined benefit for one candidate site."""

    site: int
    balance: float
    refresh_delay: float
    intra_txn: float
    inter_txn: float
    benefit: float
    #: Unhealthiness ``1 - health(site)`` at decision time; enters the
    #: benefit as ``- weights.health * health_penalty``. Stays 0.0
    #: when no health evidence was supplied (the unfaulted path).
    health_penalty: float = 0.0


@dataclass(slots=True)
class StrategyDecision:
    """One remastering decision with its full score breakdown.

    Everything the decision ledger needs to replay the choice offline:
    every candidate's per-feature scores, the winner, the runner-up and
    the margin separating them, and — when the top scores tied within
    the tie margin — which sites tied and how the tie was resolved
    (``"rng"`` for the seeded tie-break stream, ``"lowest-site"`` for
    the deterministic fallback, ``"clear"`` when there was no tie).
    """

    site: int
    scores: List[SiteScore]
    #: Site with the second-highest benefit (None with one candidate).
    runner_up: Optional[int]
    #: ``benefit(site) - benefit(runner_up)`` — 0.0 on exact ties.
    margin: float
    #: Sites whose benefit tied with the top within the tie margin.
    tied: Tuple[int, ...]
    #: How the winner was picked: "clear" | "rng" | "lowest-site".
    tie_break: str


def balance_distance(loads: Sequence[float]) -> float:
    """Distance from perfect write balance (Equation 2, see module note)."""
    sites = len(loads)
    if sites == 0:
        return 0.0
    ideal = 1.0 / sites
    return sum((ideal - load) ** 2 for load in loads)


class RemasterStrategy:
    """Scores candidate sites for a remastering decision."""

    def __init__(
        self,
        weights: StrategyWeights,
        statistics: AccessStatistics,
        table: PartitionTable,
        num_sites: int,
        rng=None,
    ):
        self.weights = weights
        self.statistics = statistics
        self.table = table
        self.num_sites = num_sites
        #: Used to break ties between equally-scored candidate sites;
        #: without it, cold-start decisions (all features zero) would
        #: stampede every partition to the lowest-indexed site.
        self._rng = rng

    # -- feature computation ---------------------------------------------------

    def _balance_feature(
        self, write_partitions: Sequence[int], candidate: int, loads: List[float]
    ) -> float:
        """Equations 2-4: change in balance, scaled by current imbalance."""
        after = list(loads)
        masters = self.table.masters
        for partition in write_partitions:
            weight = self.statistics.access_fraction(partition)
            current = masters[partition]
            if current != candidate:
                after[current] -= weight
                after[candidate] += weight
        dist_before = balance_distance(loads)
        dist_after = balance_distance(after)
        delta = dist_before - dist_after  # Eq. 3
        rate = max(dist_before, dist_after)  # Eq. 4
        return delta * math.exp(rate)

    def _refresh_delay_feature(
        self,
        candidate: int,
        source_vvs: Sequence[VersionVector],
        candidate_vv: VersionVector,
        session_vv: Optional[VersionVector],
    ) -> float:
        """Equation 5: updates the candidate must apply before execution."""
        if not source_vvs and session_vv is None:
            return 0.0
        required = None
        for vector in source_vvs:
            if required is None:
                required = vector.copy()
            else:
                required.merge(vector)
        if session_vv is not None:
            if required is None:
                required = session_vv.copy()
            else:
                required.merge(session_vv)
        return float(candidate_vv.lag_behind(required))

    def _localization_feature(
        self,
        write_partitions: Sequence[int],
        candidate: int,
        probability,
        partners,
    ) -> float:
        """Equations 6-7: co-access-weighted single-sitedness change."""
        write_set = set(write_partitions)
        score = 0.0
        # Fused form of the probability calls: ``partners(first)`` is the
        # same co-access row ``probability(first, second)`` divides out
        # of, so iterating its items and dividing by the base mass here
        # produces bit-identical likelihoods (same operands, same order)
        # without re-looking the row up per pair. ``partners`` folds any
        # pending sample, so the raw ``_writes`` read below is current.
        stat_writes = self.statistics._writes
        masters = self.table.masters
        for first in write_partitions:
            row = partners(first)
            if not row:
                continue
            base = stat_writes.get(first, 0.0)
            if base <= 0:
                continue
            first_master = masters[first]
            for second, count in row.items():
                if second == first:
                    continue
                likelihood = count / base
                if likelihood <= 0.0:
                    continue
                # Inlined _single_sited (per-pair method call is the
                # scoring loop's hottest edge).
                second_master = masters[second]
                second_after = candidate if second in write_set else second_master
                if candidate == second_after:
                    if first_master != second_master:
                        score += likelihood
                elif first_master == second_master:
                    score -= likelihood
        return score

    def _single_sited(
        self, candidate: int, first: int, second: int, write_set: set
    ) -> int:
        """+1 if the move co-locates the pair, -1 if it splits it, else 0.

        ``first`` is in the write set, so its post-move master is the
        candidate; ``second`` moves only if it is also in the write set.
        """
        before = self.table.master_of(first) == self.table.master_of(second)
        second_after = candidate if second in write_set else self.table.master_of(second)
        after = candidate == second_after
        if after and not before:
            return 1
        if before and not after:
            return -1
        return 0

    # -- the decision -----------------------------------------------------------

    def score_site(
        self,
        candidate: int,
        write_partitions: Sequence[int],
        loads: List[float],
        source_vvs: Sequence[VersionVector],
        candidate_vv: VersionVector,
        session_vv: Optional[VersionVector],
        health: Optional[float] = None,
    ) -> SiteScore:
        """Compute all features and the Equation-8 benefit for one site.

        ``health`` is the detector's graded confidence (1 = healthy)
        for the candidate, or None outside failure handling. The
        health term is only folded in when both the weight and the
        penalty are nonzero, so runs without health evidence (or with
        ``weights.health == 0``) compute bit-identical benefits.
        """
        weights = self.weights
        balance = self._balance_feature(write_partitions, candidate, loads)
        delay = self._refresh_delay_feature(
            candidate, source_vvs, candidate_vv, session_vv
        )
        intra = (
            self._localization_feature(
                write_partitions,
                candidate,
                self.statistics.intra_probability,
                self.statistics.intra_partners,
            )
            if weights.intra_txn
            else 0.0
        )
        inter = (
            self._localization_feature(
                write_partitions,
                candidate,
                self.statistics.inter_probability,
                self.statistics.inter_partners,
            )
            if weights.inter_txn
            else 0.0
        )
        benefit = (
            weights.balance * balance
            - weights.delay * delay
            + weights.intra_txn * intra
            + weights.inter_txn * inter
        )
        penalty = 0.0
        if health is not None and weights.health:
            penalty = 1.0 - health
            if penalty:
                benefit -= weights.health * penalty
        return SiteScore(candidate, balance, delay, intra, inter, benefit, penalty)

    def decide(
        self,
        write_partitions: Sequence[int],
        site_vvs: Sequence[VersionVector],
        session_vv: Optional[VersionVector] = None,
        exclude: Optional[set] = None,
        health: Optional[Sequence[float]] = None,
    ) -> StrategyDecision:
        """Score every candidate and pick the destination site.

        ``site_vvs`` holds the current version vector of every site
        (index-aligned). ``exclude`` removes candidates (crashed or
        suspected sites during failure handling). ``health``, when
        given, is an index-aligned vector of graded detector health
        scores in [0, 1]; with a nonzero ``weights.health`` the
        benefit pays a soft penalty for unhealthy candidates, steering
        mastership away from degrading sites that exclusion (a binary
        verdict) would still admit.

        Tie-breaking contract (deterministic, in this order):

        1. Candidates whose benefit falls within the tie margin of the
           top score (``1e-12 + 1e-9 * |top|`` — exact ties plus float
           noise) form the tied set.
        2. With a configured tie-break stream (the per-run seeded
           ``strategy-tiebreak`` stream — the production setup), the
           winner is drawn from the tied set with it. The draw sequence
           is a pure function of the run seed, so repeated runs decide
           identically; the randomization only prevents cold-start
           decisions (all features zero) from stampeding every
           partition to one site.
        3. Without a stream (``rng=None``), the **lowest site id**
           among the tied candidates wins. This is the documented
           fallback unit tests and offline recomputation rely on.

        The returned :class:`StrategyDecision` records the margin over
        the runner-up, the tied set, and which rule picked the winner,
        so a recorded decision is auditable even when rule 2 applied.
        """
        masters = self.table.masters
        loads = self.statistics.site_write_loads(masters.__getitem__, self.num_sites)
        current_masters = {masters[p] for p in write_partitions}
        candidates = [
            candidate
            for candidate in range(self.num_sites)
            if not exclude or candidate not in exclude
        ]
        if not candidates:
            raise ValueError("no candidate sites left after exclusions")
        scores = []
        for candidate in candidates:
            source_vvs = [
                site_vvs[master]
                for master in current_masters
                if master != candidate
            ]
            scores.append(
                self.score_site(
                    candidate,
                    write_partitions,
                    loads,
                    source_vvs,
                    site_vvs[candidate],
                    session_vv,
                    health=None if health is None else health[candidate],
                )
            )
        top = max(score.benefit for score in scores)
        margin = 1e-12 + 1e-9 * abs(top)
        tied = [score for score in scores if top - score.benefit <= margin]
        if len(tied) > 1 and self._rng is not None:
            best = tied[self._rng.randrange(len(tied))]
            tie_break = "rng"
        elif len(tied) > 1:
            # Candidates are scored in increasing site order, so the
            # first tied entry is the lowest site id; min() makes the
            # documented rule explicit rather than incidental.
            best = min(tied, key=lambda score: score.site)
            tie_break = "lowest-site"
        else:
            best = tied[0]
            tie_break = "clear"
        runner_up: Optional[int] = None
        runner_benefit = -math.inf
        for score in scores:
            if score is best:
                continue
            if score.benefit > runner_benefit:
                runner_benefit = score.benefit
                runner_up = score.site
        return StrategyDecision(
            site=best.site,
            scores=scores,
            runner_up=runner_up,
            margin=0.0 if runner_up is None else best.benefit - runner_benefit,
            tied=tuple(score.site for score in tied) if len(tied) > 1 else (),
            tie_break=tie_break,
        )

    def choose_site(
        self,
        write_partitions: Sequence[int],
        site_vvs: Sequence[VersionVector],
        session_vv: Optional[VersionVector] = None,
        exclude: Optional[set] = None,
        health: Optional[Sequence[float]] = None,
    ) -> Tuple[int, List[SiteScore]]:
        """Legacy wrapper: the winning site and all candidate scores."""
        decision = self.decide(write_partitions, site_vvs, session_vv, exclude, health)
        return decision.site, decision.scores
