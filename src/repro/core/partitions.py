"""Partition metadata maintained by the site selector (paper §V-B).

For each partition group the selector stores the current master
location and a readers-writer lock. Routing takes the locks of the
touched partitions in shared mode; remastering upgrades to exclusive
mode, which serializes concurrent remastering of the same partition
while letting unrelated transactions route in parallel.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.sim.core import Environment
from repro.sim.resources import RWLock


class PartitionInfo:
    """Metadata for one partition group."""

    __slots__ = ("partition", "master", "lock")

    def __init__(self, partition: int, master: int, env: Environment):
        self.partition = partition
        self.master = master
        self.lock = RWLock(env)


class PartitionTable:
    """The selector's concurrent map: partition -> (master, lock)."""

    def __init__(self, env: Environment, placement: Dict[int, int]):
        self.env = env
        self._infos: Dict[int, PartitionInfo] = {
            partition: PartitionInfo(partition, master, env)
            for partition, master in placement.items()
        }
        #: Flat partition -> master map mirroring ``_infos``. The
        #: strategy's scoring loops look masters up per co-access pair;
        #: one dict index here replaces two method frames through
        #: :meth:`info`. Kept in sync by :meth:`set_master` (the only
        #: mutator of ``PartitionInfo.master``).
        self.masters: Dict[int, int] = dict(placement)

    def __len__(self) -> int:
        return len(self._infos)

    def info(self, partition: int) -> PartitionInfo:
        try:
            return self._infos[partition]
        except KeyError:
            raise KeyError(f"unknown partition {partition}") from None

    def master_of(self, partition: int) -> int:
        return self.info(partition).master

    def set_master(self, partition: int, site: int) -> None:
        self.info(partition).master = site
        self.masters[partition] = site

    def masters_of(self, partitions: Iterable[int]) -> Set[int]:
        """Distinct sites mastering the given partitions."""
        return {self.info(partition).master for partition in partitions}

    def group_by_master(self, partitions: Iterable[int]) -> Dict[int, List[int]]:
        """Partition ids grouped by their current master site."""
        groups: Dict[int, List[int]] = {}
        for partition in partitions:
            groups.setdefault(self.info(partition).master, []).append(partition)
        return groups

    def snapshot(self) -> Dict[int, int]:
        """Current partition -> master map (for recovery tests/tools)."""
        return {partition: info.master for partition, info in self._infos.items()}

    def masters_per_site(self, num_sites: int) -> List[int]:
        """How many partitions each site currently masters."""
        counts = [0] * num_sites
        for info in self._infos.values():
            counts[info.master] += 1
        return counts
