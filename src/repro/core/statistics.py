"""Workload access statistics (paper §V-B).

The site selector adaptively samples transaction write sets and
maintains, per partition:

* a write access count (the load-balance feature's ``freq``);
* intra-transaction co-access counts — partitions written together in
  one transaction (Equation 6's :math:`P(d_2 | d_1)`);
* inter-transaction co-access counts — partitions written by the same
  client within a time window :math:`\\Delta t` of each other
  (Equation 7's :math:`P(d_2 | d_1; T \\le \\Delta t)`).

Samples are recorded in a bounded history queue; expiring a sample
decrements every count it contributed, so the statistics track a
sliding window of the workload and adapt when access patterns change
(§VI-B5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple


@dataclass
class StatisticsConfig:
    """Sampling and retention knobs."""

    #: Fraction of write transactions sampled into the statistics.
    sample_rate: float = 1.0
    #: The inter-transaction window Delta-t, in simulated ms.
    inter_txn_window_ms: float = 20.0
    #: Sample lifetime; expired samples decrement their counts.
    expiry_ms: float = 4000.0
    #: Hard cap on retained samples (memory bound).
    max_samples: int = 20000
    #: Cap on inter-transaction pairs contributed by one sample.
    max_inter_pairs: int = 64


@dataclass(slots=True)
class _Sample:
    """One sampled write set and the exact counts it contributed."""

    time: float
    client_id: int
    partitions: Tuple[int, ...]
    inter_pairs: Tuple[Tuple[int, int], ...]


class AccessStatistics:
    """Sliding-window partition access and co-access statistics."""

    def __init__(self, config: Optional[StatisticsConfig] = None, rng=None):
        self.config = config or StatisticsConfig()
        self._rng = rng
        self.partition_writes: Dict[int, float] = {}
        self.total_writes: float = 0.0
        self.co_intra: Dict[int, Dict[int, float]] = {}
        self.co_inter: Dict[int, Dict[int, float]] = {}
        self._samples: Deque[_Sample] = deque()
        #: Per-client recent write sets for the inter-txn window.
        self._recent: Dict[int, Deque[Tuple[float, Tuple[int, ...]]]] = {}
        self.observed = 0
        self.sampled = 0

    # -- recording ---------------------------------------------------------

    def observe(self, now: float, client_id: int, partitions: Iterable[int]) -> None:
        """Record one write transaction's partition set (maybe sampled)."""
        self.observed += 1
        partitions = tuple(sorted(set(partitions)))
        if not partitions:
            return
        if self._rng is not None and self.config.sample_rate < 1.0:
            if self._rng.random() >= self.config.sample_rate:
                return
        self.sampled += 1
        self._expire(now)

        for partition in partitions:
            self.partition_writes[partition] = (
                self.partition_writes.get(partition, 0.0) + 1.0
            )
        self.total_writes += 1.0

        for index, left in enumerate(partitions):
            for right in partitions[index + 1:]:
                self._bump(self.co_intra, left, right, 1.0)
                self._bump(self.co_intra, right, left, 1.0)

        inter_pairs = self._record_inter(now, client_id, partitions)
        self._samples.append(_Sample(now, client_id, partitions, inter_pairs))
        if len(self._samples) > self.config.max_samples:
            self._remove(self._samples.popleft())

    def _record_inter(
        self, now: float, client_id: int, partitions: Tuple[int, ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """Pair this write set with the client's recent ones within Δt."""
        window = self.config.inter_txn_window_ms
        recent = self._recent.setdefault(client_id, deque())
        while recent and recent[0][0] < now - window:
            recent.popleft()
        pairs: List[Tuple[int, int]] = []
        cap = self.config.max_inter_pairs
        for _, previous in recent:
            for earlier in previous:
                for later in partitions:
                    if earlier == later or len(pairs) >= cap:
                        continue
                    self._bump(self.co_inter, earlier, later, 1.0)
                    pairs.append((earlier, later))
        recent.append((now, partitions))
        return tuple(pairs)

    @staticmethod
    def _bump(table: Dict[int, Dict[int, float]], left: int, right: int, amount: float) -> None:
        row = table.setdefault(left, {})
        row[right] = row.get(right, 0.0) + amount

    # -- expiry -----------------------------------------------------------------

    def _expire(self, now: float) -> None:
        horizon = now - self.config.expiry_ms
        while self._samples and self._samples[0].time < horizon:
            self._remove(self._samples.popleft())

    def _remove(self, sample: _Sample) -> None:
        for partition in sample.partitions:
            count = self.partition_writes.get(partition, 0.0) - 1.0
            if count <= 0:
                self.partition_writes.pop(partition, None)
            else:
                self.partition_writes[partition] = count
        self.total_writes = max(0.0, self.total_writes - 1.0)
        for index, left in enumerate(sample.partitions):
            for right in sample.partitions[index + 1:]:
                self._decay(self.co_intra, left, right)
                self._decay(self.co_intra, right, left)
        for earlier, later in sample.inter_pairs:
            self._decay(self.co_inter, earlier, later)

    @staticmethod
    def _decay(table: Dict[int, Dict[int, float]], left: int, right: int) -> None:
        row = table.get(left)
        if row is None:
            return
        count = row.get(right, 0.0) - 1.0
        if count <= 0:
            row.pop(right, None)
            if not row:
                table.pop(left, None)
        else:
            row[right] = count

    # -- queries -------------------------------------------------------------------

    def write_fraction(self, partition: int) -> float:
        """Fraction of sampled write transactions touching ``partition``."""
        if self.total_writes <= 0:
            return 0.0
        return self.partition_writes.get(partition, 0.0) / self.total_writes

    def access_fraction(self, partition: int) -> float:
        """``partition``'s share of all sampled write accesses.

        Unlike :meth:`write_fraction` this normalizes by total access
        mass, so summing over all partitions yields 1 — the ``freq``
        needed by the load-balance feature (Equation 2).
        """
        total = sum(self.partition_writes.values())
        if total <= 0:
            return 0.0
        return self.partition_writes.get(partition, 0.0) / total

    def intra_probability(self, first: int, second: int) -> float:
        """P(second | first) within a transaction (Eq. 6 numerator)."""
        base = self.partition_writes.get(first, 0.0)
        if base <= 0:
            return 0.0
        return self.co_intra.get(first, {}).get(second, 0.0) / base

    def inter_probability(self, first: int, second: int) -> float:
        """P(second | first; T <= Δt) across transactions (Eq. 7)."""
        base = self.partition_writes.get(first, 0.0)
        if base <= 0:
            return 0.0
        return self.co_inter.get(first, {}).get(second, 0.0) / base

    def intra_partners(self, partition: int) -> Dict[int, float]:
        """Co-access counts of partitions written with ``partition``."""
        return self.co_intra.get(partition, {})

    def inter_partners(self, partition: int) -> Dict[int, float]:
        return self.co_inter.get(partition, {})

    def site_write_loads(self, master_of, num_sites: int) -> List[float]:
        """Fraction of sampled writes mastered at each site.

        ``master_of`` maps a partition id to its current master site.
        """
        loads = [0.0] * num_sites
        total = sum(self.partition_writes.values())
        if total <= 0:
            return loads
        for partition, count in self.partition_writes.items():
            loads[master_of(partition)] += count
        return [load / total for load in loads]
