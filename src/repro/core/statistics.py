"""Workload access statistics (paper §V-B).

The site selector adaptively samples transaction write sets and
maintains, per partition:

* a write access count (the load-balance feature's ``freq``);
* intra-transaction co-access counts — partitions written together in
  one transaction (Equation 6's :math:`P(d_2 | d_1)`);
* inter-transaction co-access counts — partitions written by the same
  client within a time window :math:`\\Delta t` of each other
  (Equation 7's :math:`P(d_2 | d_1; T \\le \\Delta t)`).

Samples are recorded in a bounded history queue; expiring a sample
decrements every count it contributed, so the statistics track a
sliding window of the workload and adapt when access patterns change
(§VI-B5).

Ingestion is **lazy**: :meth:`AccessStatistics.observe` is on the hot
routing path of every update transaction, while the counts are only
read on the (rare, <3% in the paper) remastering path. ``observe``
therefore just timestamps the sampled write set into a pending buffer
— the sampling RNG draw stays in ``observe`` so the draw sequence is
unchanged — and every query first *folds* the buffer by replaying the
eager algorithm sample by sample, each with its own observe-time
expiry horizon. A folded state is bit-identical to what per-observe
ingestion would have produced (pinned by the golden statistics test),
and queries remain side-effect-free in the observable sense: folding
only materializes state that was already determined at observe time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple


@dataclass
class StatisticsConfig:
    """Sampling and retention knobs."""

    #: Fraction of write transactions sampled into the statistics.
    sample_rate: float = 1.0
    #: The inter-transaction window Delta-t, in simulated ms.
    inter_txn_window_ms: float = 20.0
    #: Sample lifetime; expired samples decrement their counts.
    expiry_ms: float = 4000.0
    #: Hard cap on retained samples (memory bound).
    max_samples: int = 20000
    #: Cap on inter-transaction pairs contributed by one sample.
    max_inter_pairs: int = 64


@dataclass(slots=True)
class _Sample:
    """One sampled write set and the exact counts it contributed."""

    time: float
    client_id: int
    partitions: Tuple[int, ...]
    inter_pairs: Tuple[Tuple[int, int], ...]


class AccessStatistics:
    """Sliding-window partition access and co-access statistics."""

    def __init__(self, config: Optional[StatisticsConfig] = None, rng=None):
        self.config = config or StatisticsConfig()
        self._rng = rng
        self._writes: Dict[int, float] = {}
        self._total: float = 0.0
        #: Incremental ``sum(self._writes.values())``; exact because
        #: every mutation is +-1.0 per partition.
        self._mass: float = 0.0
        self._intra: Dict[int, Dict[int, float]] = {}
        self._inter: Dict[int, Dict[int, float]] = {}
        self._retained: Deque[_Sample] = deque()
        #: Per-client recent write sets for the inter-txn window.
        self._recent: Dict[int, Deque[Tuple[float, Tuple[int, ...]]]] = {}
        #: Sampled write sets awaiting ingestion, in observe order.
        self._pending: List[Tuple[float, int, Tuple[int, ...]]] = []
        self.observed = 0
        self.sampled = 0

    # -- folded views ------------------------------------------------------

    @property
    def partition_writes(self) -> Dict[int, float]:
        """Per-partition write counts (folds pending samples)."""
        if self._pending:
            self._fold()
        return self._writes

    @property
    def total_writes(self) -> float:
        """Retained sampled-transaction count (folds pending samples)."""
        if self._pending:
            self._fold()
        return self._total

    @property
    def co_intra(self) -> Dict[int, Dict[int, float]]:
        if self._pending:
            self._fold()
        return self._intra

    @property
    def co_inter(self) -> Dict[int, Dict[int, float]]:
        if self._pending:
            self._fold()
        return self._inter

    @property
    def _samples(self) -> Deque[_Sample]:
        if self._pending:
            self._fold()
        return self._retained

    # -- recording ---------------------------------------------------------

    def observe(self, now: float, client_id: int, partitions: Iterable[int]) -> None:
        """Record one write transaction's partition set (maybe sampled)."""
        self.observed += 1
        partitions = tuple(sorted(set(partitions)))
        if not partitions:
            return
        if self._rng is not None and self.config.sample_rate < 1.0:
            if self._rng.random() >= self.config.sample_rate:
                return
        self.sampled += 1
        self._pending.append((now, client_id, partitions))

    def _fold(self) -> None:
        """Ingest every pending sample exactly as eager observe did."""
        pending = self._pending
        self._pending = []
        for now, client_id, partitions in pending:
            self._ingest(now, client_id, partitions)

    def _ingest(self, now: float, client_id: int, partitions: Tuple[int, ...]) -> None:
        self._expire(now)

        # The bump loops below are `_bump` inlined (fold is the hottest
        # statistics path); the additions happen in exactly the same
        # order with the same +1.0 increments, so the folded state stays
        # bit-identical to the golden statistics trace.
        writes = self._writes
        for partition in partitions:
            if partition in writes:
                writes[partition] += 1.0
            else:
                writes[partition] = 1.0
        self._total += 1.0
        self._mass += float(len(partitions))

        if len(partitions) > 1:
            intra = self._intra
            for index, left in enumerate(partitions):
                for right in partitions[index + 1:]:
                    row = intra.get(left)
                    if row is None:
                        row = intra[left] = {}
                    if right in row:
                        row[right] += 1.0
                    else:
                        row[right] = 1.0
                    row = intra.get(right)
                    if row is None:
                        row = intra[right] = {}
                    if left in row:
                        row[left] += 1.0
                    else:
                        row[left] = 1.0

        inter_pairs = self._record_inter(now, client_id, partitions)
        self._retained.append(_Sample(now, client_id, partitions, inter_pairs))
        if len(self._retained) > self.config.max_samples:
            self._remove(self._retained.popleft())

    def _record_inter(
        self, now: float, client_id: int, partitions: Tuple[int, ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """Pair this write set with the client's recent ones within Δt."""
        window = self.config.inter_txn_window_ms
        recent = self._recent.get(client_id)
        if recent is None:
            recent = self._recent[client_id] = deque()
        horizon = now - window
        while recent and recent[0][0] < horizon:
            recent.popleft()
        pairs: List[Tuple[int, int]] = []
        append = pairs.append
        cap = self.config.max_inter_pairs
        inter = self._inter
        count = 0
        # Break out of the whole pairing once the cap is reached (the
        # eager version kept iterating while contributing nothing). The
        # bump is `_bump` inlined; a row is only created when a pair is
        # actually added, so the inter table's keys are unchanged.
        full = cap <= 0
        for _, previous in recent:
            if full:
                break
            for earlier in previous:
                if full:
                    break
                row = inter.get(earlier)
                for later in partitions:
                    if earlier == later:
                        continue
                    if row is None:
                        row = inter[earlier] = {}
                    if later in row:
                        row[later] += 1.0
                    else:
                        row[later] = 1.0
                    append((earlier, later))
                    count += 1
                    if count >= cap:
                        full = True
                        break
        recent.append((now, partitions))
        return tuple(pairs)

    @staticmethod
    def _bump(table: Dict[int, Dict[int, float]], left: int, right: int, amount: float) -> None:
        """Reference single-pair bump (the fold loops inline this)."""
        row = table.get(left)
        if row is None:
            row = table[left] = {}
        if right in row:
            row[right] += amount
        else:
            row[right] = amount

    # -- expiry -----------------------------------------------------------------

    def _expire(self, now: float) -> None:
        horizon = now - self.config.expiry_ms
        retained = self._retained
        while retained and retained[0].time < horizon:
            self._remove(retained.popleft())

    def _remove(self, sample: _Sample) -> None:
        writes = self._writes
        for partition in sample.partitions:
            count = writes.get(partition, 0.0) - 1.0
            if count <= 0:
                writes.pop(partition, None)
            else:
                writes[partition] = count
        self._total = max(0.0, self._total - 1.0)
        self._mass -= float(len(sample.partitions))
        for index, left in enumerate(sample.partitions):
            for right in sample.partitions[index + 1:]:
                self._decay(self._intra, left, right)
                self._decay(self._intra, right, left)
        for earlier, later in sample.inter_pairs:
            self._decay(self._inter, earlier, later)

    @staticmethod
    def _decay(table: Dict[int, Dict[int, float]], left: int, right: int) -> None:
        row = table.get(left)
        if row is None:
            return
        count = row.get(right, 0.0) - 1.0
        if count <= 0:
            row.pop(right, None)
            if not row:
                table.pop(left, None)
        else:
            row[right] = count

    # -- queries -------------------------------------------------------------------

    def write_fraction(self, partition: int) -> float:
        """Fraction of sampled write transactions touching ``partition``."""
        if self._pending:
            self._fold()
        if self._total <= 0:
            return 0.0
        return self._writes.get(partition, 0.0) / self._total

    def access_fraction(self, partition: int) -> float:
        """``partition``'s share of all sampled write accesses.

        Unlike :meth:`write_fraction` this normalizes by total access
        mass, so summing over all partitions yields 1 — the ``freq``
        needed by the load-balance feature (Equation 2).
        """
        if self._pending:
            self._fold()
        if self._mass <= 0:
            return 0.0
        return self._writes.get(partition, 0.0) / self._mass

    def intra_probability(self, first: int, second: int) -> float:
        """P(second | first) within a transaction (Eq. 6 numerator)."""
        if self._pending:
            self._fold()
        base = self._writes.get(first, 0.0)
        if base <= 0:
            return 0.0
        return self._intra.get(first, {}).get(second, 0.0) / base

    def inter_probability(self, first: int, second: int) -> float:
        """P(second | first; T <= Δt) across transactions (Eq. 7)."""
        if self._pending:
            self._fold()
        base = self._writes.get(first, 0.0)
        if base <= 0:
            return 0.0
        return self._inter.get(first, {}).get(second, 0.0) / base

    def intra_partners(self, partition: int) -> Dict[int, float]:
        """Co-access counts of partitions written with ``partition``."""
        if self._pending:
            self._fold()
        return self._intra.get(partition, {})

    def inter_partners(self, partition: int) -> Dict[int, float]:
        if self._pending:
            self._fold()
        return self._inter.get(partition, {})

    def site_write_loads(self, master_of, num_sites: int) -> List[float]:
        """Fraction of sampled writes mastered at each site.

        ``master_of`` maps a partition id to its current master site.
        """
        if self._pending:
            self._fold()
        loads = [0.0] * num_sites
        total = self._mass
        if total <= 0:
            return loads
        for partition, count in self._writes.items():
            loads[master_of(partition)] += count
        return [load / total for load in loads]
