"""Replicated site selector (paper Appendix I).

The standalone site selector can be replicated for scalability: replica
selectors hold a possibly-stale copy of the partition -> master map and
route transactions locally when they believe the write set is already
single-sited; anything needing remastering falls back to the master
selector. Because a replica's map may be stale, the data site verifies
mastership at execution time and aborts the transaction if it no longer
masters a write-set partition; aborted transactions are resubmitted to
the master selector, which remasters if necessary.

Since the master selector performs all remastering, correctness is
unchanged; and because remastering is rare, replica staleness (and the
aborts it causes) is rare too — the property the appendix argues makes
this design practical.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.site_selector import RouteResult, SiteSelector
from repro.sim.resources import Resource
from repro.systems.base import Cluster, Session
from repro.transactions import Transaction


class ReplicaSelector:
    """A read-mostly replica of the site selector's metadata.

    The replica refreshes its partition map lazily: once
    ``refresh_interval_ms`` of simulated time has passed, the next
    routing request pulls a fresh snapshot from the master selector
    (modelling the appendix's asynchronous metadata replication).
    """

    def __init__(
        self,
        master: SiteSelector,
        cluster: Cluster,
        refresh_interval_ms: float = 5.0,
    ):
        self.master = master
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config
        self.cpu = Resource(self.env, self.config.selector_cores)
        self.refresh_interval_ms = refresh_interval_ms
        self._map: Dict[int, int] = master.table.snapshot()
        self._refreshed_at = self.env.now
        self.local_routes = 0
        self.forwarded_routes = 0
        self.stale_aborts = 0

    def _refresh(self) -> None:
        self._map = self.master.table.snapshot()
        self._refreshed_at = self.env.now

    def _route_local(self, txn: Transaction) -> Optional[RouteResult]:
        """Try to route from the replica's own map (no locks taken).

        Returns None when the write set looks distributed — the caller
        must then forward to the master selector.
        """
        if self.env.now - self._refreshed_at >= self.refresh_interval_ms:
            self._refresh()
        partitions = sorted(self.master.scheme.partitions_of(txn.write_set))
        believed = {self._map.get(partition) for partition in partitions}
        if len(believed) != 1 or None in believed:
            return None
        site = believed.pop()
        self.cluster.activity.begin(site, partitions)
        self.local_routes += 1
        # Replica-local routes bypass the master selector; record them
        # in its ledger so locality share covers every routed update.
        if self.master.ledger.enabled:
            self.master.ledger.route(self.env.now, site, 0)
        return RouteResult(site, None, tuple(partitions), False)

    def submit_update(self, txn: Transaction, session: Session):
        """Route and execute an update with abort-and-resubmit.

        Generator returning ``(tvv, retries)``: the commit vector and
        how many stale-metadata aborts occurred along the way.
        """
        retries = 0
        while True:
            yield from self.cpu.use(self.config.costs.route_lookup_ms)
            optimistic = retries == 0
            route = self._route_local(txn) if optimistic else None
            if route is None:
                # Unknown/distributed masters, or a retry after an
                # abort: the master selector is authoritative.
                optimistic = False
                self.forwarded_routes += 1
                route = yield from self.master.route_update(txn, session)
            site = self.cluster.sites[route.site]
            min_vv = (
                session.cvv
                if route.min_vv is None
                else route.min_vv.element_max(session.cvv)
            )
            tvv = yield from site.execute_update(
                txn,
                min_vv,
                partitions=route.partitions,
                verify_mastership=optimistic,
            )
            if tvv is not None:
                return tvv, retries
            # Stale metadata: the site refused the optimistic route.
            self.stale_aborts += 1
            retries += 1
            self._refresh()
