"""DynaMast's site selector — the paper's primary contribution.

* :class:`~repro.core.partitions.PartitionTable` — per-partition
  master location plus a readers-writer lock (paper §V-B);
* :class:`~repro.core.statistics.AccessStatistics` — sampled write-set
  tracking: partition write frequencies, intra-/inter-transaction
  co-access counts, and sample expiry (paper §V-B);
* :class:`~repro.core.strategy.RemasterStrategy` — the adaptive
  remastering model of §IV-A: load balance (Eqs. 2–4), refresh delay
  (Eq. 5), co-access localization (Eqs. 6–7), combined by the weighted
  linear benefit model (Eq. 8);
* :class:`~repro.core.site_selector.SiteSelector` — transaction
  routing and the remastering protocol driver (Algorithm 1);
* :class:`~repro.core.distributed_selector.ReplicaSelector` — the
  replicated site-selector design of Appendix I.
"""

from repro.core.distributed_selector import ReplicaSelector
from repro.core.partitions import PartitionTable
from repro.core.site_selector import RouteResult, SiteSelector
from repro.core.statistics import AccessStatistics, StatisticsConfig
from repro.core.strategy import RemasterStrategy, StrategyWeights

__all__ = [
    "AccessStatistics",
    "PartitionTable",
    "RemasterStrategy",
    "ReplicaSelector",
    "RouteResult",
    "SiteSelector",
    "StatisticsConfig",
    "StrategyWeights",
]
