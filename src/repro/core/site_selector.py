"""The site selector: routing and the remastering protocol (§III-B, §V-B).

Write routing: look up the master of every write-set partition under
shared partition locks; if one site masters them all, route there.
Otherwise upgrade to exclusive locks, pick a destination with the
:class:`~repro.core.strategy.RemasterStrategy`, and run Algorithm 1 —
parallel ``release``/``grant`` chains per source site — before routing.
The transaction's minimum begin version is the element-wise max of the
grant vectors.

Read routing (§IV-B): a uniformly random site satisfying the client's
session freshness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.partitions import PartitionTable
from repro.core.statistics import AccessStatistics, StatisticsConfig
from repro.core.strategy import RemasterStrategy, StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.sim.resources import Resource
from repro.sites.messages import remote_call
from repro.systems.base import Cluster, Session
from repro.transactions import Transaction
from repro.versioning.vectors import VersionVector


@dataclass(slots=True)
class RouteResult:
    """The site selector's answer for an update transaction."""

    site: int
    #: Minimum version the transaction must observe at the execution
    #: site (None when no remastering was needed).
    min_vv: Optional[VersionVector]
    partitions: Tuple[int, ...]
    remastered: bool
    partitions_moved: int = 0


class SiteSelector:
    """Routes transactions and drives remastering for one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Dict[int, int],
        weights: Optional[StrategyWeights] = None,
        stats_config: Optional[StatisticsConfig] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config
        self.network = cluster.network
        self.scheme = scheme
        self.cpu = Resource(self.env, self.config.selector_cores)
        self.table = PartitionTable(self.env, placement)
        self.statistics = AccessStatistics(
            stats_config, rng=cluster.streams.stream("selector-sampling")
        )
        self.strategy = RemasterStrategy(
            weights or StrategyWeights(),
            self.statistics,
            self.table,
            cluster.num_sites,
            rng=cluster.streams.stream("strategy-tiebreak"),
        )
        self._read_rng = cluster.streams.stream("read-routing")
        # Counters for the paper's overhead analysis (§VI-B6/B7).
        self.updates_routed = 0
        self.reads_routed = 0
        self.updates_remastered = 0
        self.remaster_operations = 0
        self.partitions_moved = 0
        self.route_counts: List[int] = [0] * cluster.num_sites

    # -- write routing (Algorithm 1 driver) ------------------------------------

    def route_update(self, txn: Transaction, session: Optional[Session] = None):
        """Decide (and if needed remaster) where ``txn`` executes.

        Generator returning a :class:`RouteResult`. On return, the
        transaction is registered as in-flight on its partitions at the
        chosen site, so a subsequent release will wait for it.
        """
        env = self.env
        tracer = env.obs.tracer
        route_started = env.now
        partitions = sorted(self.scheme.partitions_of(txn.write_set))
        lock_started = env.now
        yield from self.cpu.use(self.config.costs.route_lookup_ms)
        for partition in partitions:
            yield self.table.info(partition).lock.acquire_read()
        txn.add_timing("selector_lock", env.now - lock_started)
        tracer.span("selector_lock", lock_started, env.now,
                    track="selector", txn=txn)
        self.statistics.observe(env.now, txn.client_id, partitions)

        masters = self.table.masters_of(partitions)
        if len(masters) <= 1:
            site = masters.pop() if masters else 0
            self._register(site, partitions, shared=True)
            tracer.span("route", route_started, env.now,
                        track="selector", txn=txn, site=site)
            return RouteResult(site, None, tuple(partitions), False)

        # Distributed masters: upgrade to exclusive partition locks.
        decision_started = env.now
        for partition in partitions:
            self.table.info(partition).lock.release_read()
        for partition in partitions:
            yield self.table.info(partition).lock.acquire_write()
        masters = self.table.masters_of(partitions)
        if len(masters) == 1:
            # A concurrent remastering co-located the write set for us
            # (clients benefit from remastering initiated by clients
            # with common write sets, §III-B).
            site = masters.pop()
            txn.add_timing("routing", env.now - decision_started)
            tracer.span("routing", decision_started, env.now,
                        track="selector", txn=txn)
            self._register(site, partitions, shared=False)
            tracer.span("route", route_started, env.now,
                        track="selector", txn=txn, site=site)
            return RouteResult(site, None, tuple(partitions), False)

        yield from self.cpu.use(self.config.costs.remaster_decision_ms)
        site_vvs = [site.svv for site in self.cluster.sites]
        session_vv = session.cvv if session is not None else None
        destination, _scores = self.strategy.choose_site(
            partitions, site_vvs, session_vv
        )
        moves = [
            (source, tuple(group))
            for source, group in self.table.group_by_master(partitions).items()
            if source != destination
        ]
        # Keep exclusive locks only on the partitions actually moving;
        # the rest downgrade to shared so that unrelated transactions on
        # those (typically hot, stationary) partitions keep routing
        # while the release/grant protocol runs.
        moving = {partition for _, group in moves for partition in group}
        for partition in partitions:
            if partition not in moving:
                self.table.info(partition).lock.downgrade()
        grant_processes = [
            env.process(self._move(source, group, destination, txn))
            for source, group in moves
        ]
        grant_vvs = yield env.all_of(grant_processes)
        min_vv = VersionVector.zeros(self.cluster.num_sites)
        for grant_vv in grant_vvs:
            min_vv = min_vv.element_max(grant_vv)
        for _, group in moves:
            for partition in group:
                self.table.set_master(partition, destination)
        moved = sum(len(group) for group in (group for _, group in moves))
        self.remaster_operations += len(moves)
        self.partitions_moved += moved
        self.updates_remastered += 1
        txn.add_timing("routing", env.now - decision_started)
        tracer.span("routing", decision_started, env.now,
                    track="selector", txn=txn, remastered=True)
        if tracer.enabled:
            tracer.instant(
                "remaster", env.now, track="selector", txn=txn,
                destination=destination, partitions_moved=moved,
                operations=len(moves),
            )
        self._register(destination, partitions, exclusive=moving)
        tracer.span("route", route_started, env.now,
                    track="selector", txn=txn, site=destination)
        return RouteResult(destination, min_vv, tuple(partitions), True, moved)

    def _register(
        self,
        site: int,
        partitions: Sequence[int],
        shared: bool = False,
        exclusive: Optional[set] = None,
    ) -> None:
        """Register the routed txn in-flight, then drop partition locks.

        ``shared=True`` releases read holds on everything; otherwise
        partitions in ``exclusive`` release write holds and the rest
        release read holds (the downgraded stationary partitions of a
        remastering).
        """
        self.cluster.activity.begin(site, partitions)
        for partition in partitions:
            info = self.table.info(partition)
            if shared:
                info.lock.release_read()
            elif exclusive is None or partition in exclusive:
                info.lock.release_write()
            else:
                info.lock.release_read()
        self.updates_routed += 1
        self.route_counts[site] += 1

    def _move(self, source: int, partitions: Tuple[int, ...], destination: int,
              txn: Optional[Transaction] = None):
        """One release -> grant chain of Algorithm 1 (lines 7-8).

        ``txn`` is the remastering-triggering transaction, used only to
        attribute the release/grant spans in a trace.
        """
        tracer = self.env.obs.tracer
        sites = self.cluster.sites
        release_started = self.env.now
        release_vv = yield from remote_call(
            self.network,
            sites[source].release_mastership(partitions),
            category="remaster",
        )
        tracer.span("release", release_started, self.env.now,
                    track=f"site{source}", txn=txn, partitions=len(partitions))
        grant_started = self.env.now
        grant_vv = yield from remote_call(
            self.network,
            sites[destination].grant_mastership(partitions, release_vv, source=source),
            category="remaster",
        )
        tracer.span("grant", grant_started, self.env.now,
                    track=f"site{destination}", txn=txn,
                    partitions=len(partitions), source=source)
        return grant_vv

    # -- read routing (§IV-B) --------------------------------------------------------

    def route_read(self, txn: Transaction, session: Session):
        """Pick a session-fresh site for a read-only transaction."""
        route_started = self.env.now
        yield from self.cpu.use(self.config.costs.route_lookup_ms)
        fresh = [
            site.index
            for site in self.cluster.sites
            if site.svv.dominates(session.cvv)
        ]
        if fresh:
            choice = fresh[self._read_rng.randrange(len(fresh))]
        else:
            choice = min(
                self.cluster.sites,
                key=lambda site: site.svv.lag_behind(session.cvv),
            ).index
        self.reads_routed += 1
        self.env.obs.tracer.span(
            "route", route_started, self.env.now,
            track="selector", txn=txn, site=choice,
        )
        return choice

    # -- introspection -------------------------------------------------------------------

    def remaster_rate(self) -> float:
        """Fraction of routed update transactions that required remastering."""
        if self.updates_routed == 0:
            return 0.0
        return self.updates_remastered / self.updates_routed

    def route_fractions(self) -> List[float]:
        """Fraction of update requests routed to each site (Fig. 5a)."""
        total = sum(self.route_counts)
        if total == 0:
            return [0.0] * len(self.route_counts)
        return [count / total for count in self.route_counts]
