"""The site selector: routing and the remastering protocol (§III-B, §V-B).

Write routing: look up the master of every write-set partition under
shared partition locks; if one site masters them all, route there.
Otherwise upgrade to exclusive locks, pick a destination with the
:class:`~repro.core.strategy.RemasterStrategy`, and run Algorithm 1 —
parallel ``release``/``grant`` chains per source site — before routing.
The transaction's minimum begin version is the element-wise max of the
grant vectors.

Read routing (§IV-B): a uniformly random site satisfying the client's
session freshness.

Under fault injection the selector switches to a survivable variant of
the same protocol: masters are health-checked before routing, release
RPCs to a *crashed* master are replaced by fencing the dead producer's
durable log directly (a forced release marker), grants persistently
retry and fail over to a live site, and a suspected-but-alive master
aborts the transaction with a timeout rather than risking a split
mastership. Without an installed injector every code path below is the
legacy one, event-for-event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.partitions import PartitionTable
from repro.core.statistics import AccessStatistics, StatisticsConfig
from repro.core.strategy import RemasterStrategy, StrategyWeights
from repro.obs.mastery import NULL_LEDGER
from repro.faults.errors import (
    REASON_SITE_CRASH,
    REASON_TIMEOUT,
    FaultError,
    RpcTimeout,
    SiteDown,
    TransactionAborted,
)
from repro.partitioning.schemes import PartitionScheme
from repro.replication.log import RELEASE, LogRecord
from repro.sim.resources import Resource
from repro.sites.messages import RetryPolicy, guarded_call, remote_call
from repro.systems.base import Cluster, Session
from repro.transactions import Transaction
from repro.versioning.vectors import VersionVector


@dataclass(slots=True)
class RouteResult:
    """The site selector's answer for an update transaction."""

    site: int
    #: Minimum version the transaction must observe at the execution
    #: site (None when no remastering was needed).
    min_vv: Optional[VersionVector]
    partitions: Tuple[int, ...]
    remastered: bool
    partitions_moved: int = 0
    #: Activity-registration token (fault-aware routing only); passing
    #: it to ``execute_update`` / ``activity.finish`` makes in-flight
    #: deregistration idempotent across RPC retries and crashes.
    token: Optional[tuple] = None


class SiteSelector:
    """Routes transactions and drives remastering for one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Dict[int, int],
        weights: Optional[StrategyWeights] = None,
        stats_config: Optional[StatisticsConfig] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.config = cluster.config
        self.network = cluster.network
        self.scheme = scheme
        self.cpu = Resource(self.env, self.config.selector_cores)
        self.table = PartitionTable(self.env, placement)
        self.statistics = AccessStatistics(
            stats_config, rng=cluster.streams.stream("selector-sampling")
        )
        self.strategy = RemasterStrategy(
            weights or StrategyWeights(),
            self.statistics,
            self.table,
            cluster.num_sites,
            rng=cluster.streams.stream("strategy-tiebreak"),
        )
        self._read_rng = cluster.streams.stream("read-routing")
        # Counters for the paper's overhead analysis (§VI-B6/B7).
        self.updates_routed = 0
        self.reads_routed = 0
        self.updates_remastered = 0
        self.remaster_operations = 0
        self.partitions_moved = 0
        self.route_counts: List[int] = [0] * cluster.num_sites
        #: Monotonic counter making activity tokens unique per routing.
        self._route_seq = 0
        #: Decision ledger (mastering observatory, DESIGN.md §6.6).
        #: NULL_LEDGER by default; every hook below sits behind an
        #: ``enabled`` check, like the tracer, so unobserved runs pay
        #: one attribute load per routing.
        self.ledger = NULL_LEDGER

    def attach_ledger(self, ledger) -> None:
        """Install a :class:`~repro.obs.mastery.DecisionLedger`.

        Snapshots the current partition -> master placement so the
        ledger can reconstruct the full mastership timeline. The ledger
        is passive — it records already-computed values and never
        interacts with the simulation — so an observed run's simulated
        outcome is bit-identical to an unobserved one.
        """
        self.ledger = ledger
        if ledger.enabled:
            ledger.record_placement(self.table.snapshot(), self.env._now)

    # -- write routing (Algorithm 1 driver) ------------------------------------

    def route_update(self, txn: Transaction, session: Optional[Session] = None):
        """Decide (and if needed remaster) where ``txn`` executes.

        Generator returning a :class:`RouteResult`. On return, the
        transaction is registered as in-flight on its partitions at the
        chosen site, so a subsequent release will wait for it.
        """
        if self.cluster.faults is not None:
            result = yield from self._route_update_faulted(txn, session)
            return result
        env = self.env
        tracer = env.obs.tracer
        traced = tracer.enabled
        route_started = env._now
        partitions = sorted(self.scheme.partitions_of(txn.write_set))
        lock_started = env._now
        yield from self.cpu.use(self.config.costs.route_lookup_ms,
                                txn=txn, track="selector")
        for partition in partitions:
            yield self.table.info(partition).lock.acquire_read()
        txn.add_timing("selector_lock", env._now - lock_started)
        if traced:
            tracer.span("selector_lock", lock_started, env._now,
                        track="selector", txn=txn)
        self.statistics.observe(env._now, txn.client_id, partitions)

        masters = self.table.masters_of(partitions)
        if len(masters) <= 1:
            site = masters.pop() if masters else 0
            self._register(site, partitions, shared=True)
            if traced:
                tracer.span("route", route_started, env._now,
                            track="selector", txn=txn, site=site)
            if self.ledger.enabled:
                self.ledger.route(env._now, site, 0)
            return RouteResult(site, None, tuple(partitions), False)

        # Distributed masters: upgrade to exclusive partition locks.
        decision_started = env._now
        for partition in partitions:
            self.table.info(partition).lock.release_read()
        for partition in partitions:
            yield self.table.info(partition).lock.acquire_write()
        masters = self.table.masters_of(partitions)
        if len(masters) == 1:
            # A concurrent remastering co-located the write set for us
            # (clients benefit from remastering initiated by clients
            # with common write sets, §III-B).
            site = masters.pop()
            txn.add_timing("routing", env._now - decision_started)
            if traced:
                tracer.span("routing", decision_started, env._now,
                            track="selector", txn=txn)
            self._register(site, partitions, shared=False)
            if traced:
                tracer.span("route", route_started, env._now,
                            track="selector", txn=txn, site=site)
            if self.ledger.enabled:
                self.ledger.route(env._now, site, 0)
            return RouteResult(site, None, tuple(partitions), False)

        yield from self.cpu.use(self.config.costs.remaster_decision_ms,
                                txn=txn, track="selector")
        site_vvs = [site.svv for site in self.cluster.sites]
        session_vv = session.cvv if session is not None else None
        decision = self.strategy.decide(partitions, site_vvs, session_vv)
        destination = decision.site
        moves = [
            (source, tuple(group))
            for source, group in self.table.group_by_master(partitions).items()
            if source != destination
        ]
        decision_seq = None
        if self.ledger.enabled:
            decision_seq = self.ledger.decision(
                env._now, txn, partitions, decision, self.strategy.weights, moves
            )
        # Keep exclusive locks only on the partitions actually moving;
        # the rest downgrade to shared so that unrelated transactions on
        # those (typically hot, stationary) partitions keep routing
        # while the release/grant protocol runs.
        moving = {partition for _, group in moves for partition in group}
        for partition in partitions:
            if partition not in moving:
                self.table.info(partition).lock.downgrade()
        grant_processes = [
            env.process(self._move(source, group, destination, txn))
            for source, group in moves
        ]
        grant_vvs = yield env.all_of(grant_processes)
        min_vv = VersionVector.zeros(self.cluster.num_sites)
        for grant_vv in grant_vvs:
            min_vv.merge(grant_vv)
        for source, group in moves:
            for partition in group:
                self.table.set_master(partition, destination)
                if self.ledger.enabled:
                    self.ledger.ownership(env._now, partition, source,
                                          destination, decision_seq)
        moved = sum(len(group) for group in (group for _, group in moves))
        self.remaster_operations += len(moves)
        self.partitions_moved += moved
        self.updates_remastered += 1
        txn.add_timing("routing", env._now - decision_started)
        if traced:
            tracer.span("routing", decision_started, env._now,
                        track="selector", txn=txn, remastered=True)
            tracer.instant(
                "remaster", env._now, track="selector", txn=txn,
                destination=destination, partitions_moved=moved,
                operations=len(moves),
            )
        self._register(destination, partitions, exclusive=moving)
        if traced:
            tracer.span("route", route_started, env._now,
                        track="selector", txn=txn, site=destination)
        if self.ledger.enabled:
            self.ledger.route(env._now, destination, moved)
        return RouteResult(destination, min_vv, tuple(partitions), True, moved)

    def _register(
        self,
        site: int,
        partitions: Sequence[int],
        shared: bool = False,
        exclusive: Optional[set] = None,
        token: Optional[tuple] = None,
    ) -> None:
        """Register the routed txn in-flight, then drop partition locks.

        ``shared=True`` releases read holds on everything; otherwise
        partitions in ``exclusive`` release write holds and the rest
        release read holds (the downgraded stationary partitions of a
        remastering).
        """
        self.cluster.activity.begin(site, partitions, token)
        for partition in partitions:
            info = self.table.info(partition)
            if shared:
                info.lock.release_read()
            elif exclusive is None or partition in exclusive:
                info.lock.release_write()
            else:
                info.lock.release_read()
        self.updates_routed += 1
        self.route_counts[site] += 1

    def _move(self, source: int, partitions: Tuple[int, ...], destination: int,
              txn: Optional[Transaction] = None):
        """One release -> grant chain of Algorithm 1 (lines 7-8).

        ``txn`` is the remastering-triggering transaction, used only to
        attribute the release/grant spans in a trace.
        """
        tracer = self.env.obs.tracer
        traced = tracer.enabled
        sites = self.cluster.sites
        release_started = self.env._now
        release_vv = yield from remote_call(
            self.network,
            sites[source].release_mastership(partitions),
            category="remaster",
        )
        if traced:
            tracer.span("release", release_started, self.env._now,
                        track=f"site{source}", txn=txn,
                        partitions=len(partitions))
        grant_started = self.env._now
        grant_vv = yield from remote_call(
            self.network,
            sites[destination].grant_mastership(partitions, release_vv, source=source),
            category="remaster",
        )
        if traced:
            tracer.span("grant", grant_started, self.env._now,
                        track=f"site{destination}", txn=txn,
                        partitions=len(partitions), source=source)
            tracer.edge("remaster", release_started, txn=txn,
                        track="selector", source=source,
                        destination=destination,
                        partitions=len(partitions),
                        waited=self.env._now - release_started)
        return grant_vv

    # -- fault-aware write routing ---------------------------------------------

    def _healthy(self, site: int) -> bool:
        return (
            self.cluster.sites[site].alive
            and not self.cluster.faults.detector.is_suspected(site)
        )

    def _route_update_faulted(self, txn: Transaction, session: Optional[Session]):
        """Survivable :meth:`route_update`: health-checked masters,
        failover remastering away from crashed sites.

        A healthy single master routes exactly like the legacy path. An
        unhealthy master — or a genuinely distributed write set — takes
        exclusive locks on the whole write set (no downgrade
        optimization: under faults a move can cascade if the chosen
        destination dies mid-protocol, and the simpler lock discipline
        keeps that re-entrant) and remasters onto a live site. Raises
        :class:`TransactionAborted` when failure handling cannot route
        the transaction; partition locks are always released.
        """
        env = self.env
        token = (txn.txn_id, self._route_seq)
        self._route_seq += 1
        partitions = sorted(self.scheme.partitions_of(txn.write_set))
        yield from self.cpu.use(self.config.costs.route_lookup_ms,
                                txn=txn, track="selector")
        for partition in partitions:
            yield self.table.info(partition).lock.acquire_read()
        self.statistics.observe(env._now, txn.client_id, partitions)

        masters = self.table.masters_of(partitions)
        if len(masters) <= 1:
            site = masters.pop() if masters else 0
            if self._healthy(site):
                self._register(site, partitions, shared=True, token=token)
                if self.ledger.enabled:
                    self.ledger.route(env._now, site, 0)
                return RouteResult(site, None, tuple(partitions), False, token=token)
        # Unhealthy master or distributed write set: exclusive locks on
        # everything, then remaster onto a live destination.
        for partition in partitions:
            self.table.info(partition).lock.release_read()
        for partition in partitions:
            yield self.table.info(partition).lock.acquire_write()
        try:
            masters = self.table.masters_of(partitions)
            if len(masters) == 1:
                only = next(iter(masters))
                if self._healthy(only):
                    # A concurrent routing already healed this write set.
                    self._register(only, partitions, token=token)
                    if self.ledger.enabled:
                        self.ledger.route(env._now, only, 0)
                    return RouteResult(
                        only, None, tuple(partitions), False, token=token
                    )
            yield from self.cpu.use(self.config.costs.remaster_decision_ms,
                                    txn=txn, track="selector")
            destination, min_vv, moved, operations = yield from self._remaster_faulted(
                partitions, txn, session
            )
        except FaultError:
            for partition in partitions:
                self.table.info(partition).lock.release_write()
            raise
        if operations:
            self.remaster_operations += operations
            self.partitions_moved += moved
            self.updates_remastered += 1
        self._register(destination, partitions, token=token)
        if self.ledger.enabled:
            self.ledger.route(env._now, destination, moved)
        return RouteResult(
            destination,
            min_vv if operations else None,
            tuple(partitions),
            operations > 0,
            moved,
            token=token,
        )

    def _remaster_faulted(
        self, partitions: Sequence[int], txn: Transaction, session: Optional[Session]
    ):
        """Drive release/grant rounds until one healthy site masters all.

        Each round re-reads the partition table (a destination crash
        mid-round scatters groups across fallback grant targets, so a
        single pass is not enough), excludes crashed and suspected
        sites from the strategy's candidates, and moves every foreign
        group sequentially. Bounded by one round per site plus one:
        a plan may now crash a site repeatedly (non-overlapping
        windows), so rather than relying on fresh-crash counting the
        loop simply gives up past the bound and aborts the transaction
        cleanly with ``remastering did not converge``.
        """
        faults = self.cluster.faults
        min_vv = VersionVector.zeros(self.cluster.num_sites)
        moved = 0
        operations = 0
        for _round in range(self.cluster.num_sites + 1):
            groups = self.table.group_by_master(partitions)
            masters = set(groups)
            if len(masters) == 1:
                only = next(iter(masters))
                if self._healthy(only):
                    return only, min_vv, moved, operations
            decision, excluded, health = self._choose_destination_faulted(
                partitions, session
            )
            destination = decision.site
            moves = [
                (source, tuple(group))
                for source, group in sorted(groups.items())
                if source != destination
            ]
            if not moves:
                return destination, min_vv, moved, operations
            decision_seq = None
            if self.ledger.enabled:
                decision_seq = self.ledger.decision(
                    self.env._now, txn, partitions, decision,
                    self.strategy.weights, moves, excluded=excluded,
                    health=health,
                )
            for source, group in moves:
                target, grant_vv = yield from self._move_faulted(
                    source, group, destination, txn
                )
                min_vv.merge(grant_vv)
                for partition in group:
                    self.table.set_master(partition, target)
                    # The grant can fail over to a live site other than
                    # the decision's choice; the timeline records where
                    # mastership actually landed.
                    if self.ledger.enabled:
                        self.ledger.ownership(self.env._now, partition,
                                              source, target, decision_seq)
                operations += 1
                moved += len(group)
        reason = REASON_SITE_CRASH if faults.any_crashed else REASON_TIMEOUT
        raise TransactionAborted(
            reason, f"remastering of {tuple(partitions)} did not converge"
        )

    def _choose_destination_faulted(
        self, partitions: Sequence[int], session: Optional[Session]
    ):
        """Strategy choice restricted to live (and ideally unsuspected) sites.

        Returns ``(decision, excluded, health)`` — the full
        :class:`~repro.core.strategy.StrategyDecision`, the candidate
        sites failure handling removed, and the per-site health
        evidence the decision saw (empty when health-aware remastering
        is off), all recorded by the decision ledger when one is
        attached.

        Health-aware remastering: with a nonzero ``weights.health``,
        the detector's graded health scores enter the benefit as a
        soft penalty — a degrading-but-unsuspected site loses the
        decision to a clean site unless its locality/balance advantage
        outweighs the sickness. Exclusion stays the hard backstop for
        dead and fully-suspected sites.
        """
        faults = self.cluster.faults
        sites = self.cluster.sites
        dead = {site.index for site in sites if not site.alive}
        suspected = {
            index
            for index in range(self.cluster.num_sites)
            if faults.detector.is_suspected(index)
        }
        exclude = dead | suspected
        if len(exclude) >= self.cluster.num_sites:
            exclude = dead
        site_vvs = [site.svv for site in sites]
        session_vv = session.cvv if session is not None else None
        health: Tuple[float, ...] = ()
        if self.strategy.weights.health:
            detector = faults.detector
            health = tuple(
                detector.health(index) if sites[index].alive else 0.0
                for index in range(self.cluster.num_sites)
            )
        decision = self.strategy.decide(
            partitions, site_vvs, session_vv, exclude=exclude,
            health=health or None,
        )
        return decision, exclude, health

    def _move_faulted(
        self,
        source: int,
        partitions: Tuple[int, ...],
        destination: int,
        txn: Transaction,
    ):
        """One survivable release -> grant chain.

        Release: a *crashed* source is fenced through its durable log
        (:meth:`_force_release` — the log service refuses appends from
        a dead producer, so writing the marker on its behalf is safe);
        a live source gets a guarded RPC with bounded retries — a
        suspected-but-alive master times the transaction out instead of
        risking two masters. Grant: must land somewhere once the
        release marker exists, or the partitions stay orphaned — so it
        retries persistently, failing over to another live site if the
        chosen target dies. Returns ``(actual target, grant vector)``.
        """
        env = self.env
        faults = self.cluster.faults
        sites = self.cluster.sites
        policy = RetryPolicy(faults.rpc, faults.rng)
        timeout_ms = faults.rpc.remaster_timeout_ms
        tracer = env.obs.tracer
        chain_started = env._now

        release_vv = None
        failures = 0
        while release_vv is None:
            if faults.is_crashed(source):
                release_vv = self._force_release(source, partitions)
                break
            try:
                release_vv = yield from guarded_call(
                    self.network,
                    sites[source],
                    sites[source].release_mastership(partitions),
                    category="remaster",
                    timeout_ms=timeout_ms,
                )
            except SiteDown:
                continue  # re-checks is_crashed -> forced release
            except RpcTimeout:
                failures += 1
                if failures >= policy.attempts:
                    raise TransactionAborted(
                        REASON_TIMEOUT,
                        f"release of {partitions} at site {source} timed out",
                    )
                yield env.timeout(policy.backoff_ms(failures - 1))

        failures = 0
        target = destination
        while True:
            if not sites[target].alive:
                target = self._alive_target()
            try:
                grant_vv = yield from guarded_call(
                    self.network,
                    sites[target],
                    sites[target].grant_mastership(
                        partitions, release_vv, source=source
                    ),
                    category="remaster",
                    timeout_ms=timeout_ms,
                )
                if tracer.enabled:
                    tracer.edge("remaster", chain_started, txn=txn,
                                track="selector", source=source,
                                destination=target,
                                partitions=len(partitions),
                                waited=env._now - chain_started)
                return target, grant_vv
            except SiteDown:
                continue  # re-picks a live target
            except RpcTimeout:
                # The grant may or may not have applied; re-granting is
                # idempotent (a duplicate marker replays harmlessly and
                # the returned vector still covers the release point).
                failures += 1
                yield env.timeout(policy.backoff_ms(min(failures - 1, 8)))

    def _alive_target(self) -> int:
        """Lowest-indexed live unsuspected site (live site as fallback)."""
        faults = self.cluster.faults
        candidates = [
            site.index
            for site in self.cluster.sites
            if site.alive and not faults.detector.is_suspected(site.index)
        ]
        if not candidates:
            candidates = [site.index for site in self.cluster.sites if site.alive]
        if not candidates:
            raise TransactionAborted(
                REASON_SITE_CRASH, "no live site to grant mastership to"
            )
        return candidates[0]

    def _force_release(self, source: int, partitions: Tuple[int, ...]):
        """Fence a dead master by appending its release marker directly.

        The durable log outlives its site (it is the Kafka substitute);
        appending the marker on the dead producer's behalf is exactly
        the failover the log service's fencing makes safe — the crashed
        site cannot concurrently append, and on restart it replays this
        marker like everyone else and comes back without the partitions.
        Atomic (no yields), so no competing routing can interleave.
        """
        log = self.cluster.sites[source].log
        seq = len(log.records) + 1
        marker_tvv = tuple(
            seq if index == source else 0 for index in range(self.cluster.num_sites)
        )
        log.append(
            LogRecord(RELEASE, source, marker_tvv, partitions=tuple(partitions))
        )
        release_vv = VersionVector.zeros(self.cluster.num_sites)
        release_vv[source] = seq
        return release_vv

    # -- read routing (§IV-B) --------------------------------------------------------

    def route_read(self, txn: Transaction, session: Session):
        """Pick a session-fresh site for a read-only transaction.

        Under fault injection, crashed and suspected sites are filtered
        out first (falling back to any live site when suspicion covers
        everything).
        """
        route_started = self.env._now
        yield from self.cpu.use(self.config.costs.route_lookup_ms,
                                txn=txn, track="selector")
        faults = self.cluster.faults
        if faults is None:
            candidates = self.cluster.sites
        else:
            detector = faults.detector
            candidates = [
                site for site in self.cluster.sites
                if site.alive and not detector.is_suspected(site.index)
            ]
            if not candidates:
                candidates = [site for site in self.cluster.sites if site.alive]
            if not candidates:
                candidates = self.cluster.sites
        fresh = [
            site.index
            for site in candidates
            if site.svv.dominates(session.cvv)
        ]
        if fresh:
            choice = fresh[self._read_rng.randrange(len(fresh))]
        else:
            choice = min(
                candidates,
                key=lambda site: site.svv.lag_behind(session.cvv),
            ).index
        self.reads_routed += 1
        tracer = self.env.obs.tracer
        if tracer.enabled:
            tracer.span(
                "route", route_started, self.env._now,
                track="selector", txn=txn, site=choice,
            )
        return choice

    # -- introspection -------------------------------------------------------------------

    def remaster_rate(self) -> float:
        """Fraction of routed update transactions that required remastering."""
        if self.updates_routed == 0:
            return 0.0
        return self.updates_remastered / self.updates_routed

    def route_fractions(self) -> List[float]:
        """Fraction of update requests routed to each site (Fig. 5a)."""
        total = sum(self.route_counts)
        if total == 0:
            return [0.0] * len(self.route_counts)
        return [count / total for count in self.route_counts]
