"""Declarative fault schedules.

A :class:`FaultPlan` is pure data: what fails, when, and for how long.
The :class:`~repro.faults.injector.FaultInjector` interprets it against
a live cluster. Keeping the schedule declarative makes fault scenarios
reproducible (the plan plus the seed fully determine the run) and lets
property tests generate arbitrary plans.

Site indices: data sites are ``0..num_sites-1``; :data:`FRONTEND`
(``-1``) denotes the front-end tier (site selector / router), which
never crashes but whose links to data sites can fail — cutting every
``(FRONTEND, i)`` link isolates site *i* from new work while its
replication feed (the durable-log service) keeps flowing.

Fail-stop crashes and binary link cuts model the classic failure
story; the *gray* failure modes — :class:`SlowFault` (a site that is
slow but alive) and degraded links (inflated, jittery latency instead
of loss) — model the regime where fixed timeouts either fire too early
or too late, which is where the adaptive defenses earn their keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Pseudo-site index for the front-end tier (selector/router machines).
FRONTEND = -1


@dataclass(frozen=True)
class CrashFault:
    """Crash site ``site`` at ``at_ms``; restart at ``restart_at_ms``.

    ``restart_at_ms=None`` means the site stays down for the rest of
    the run. A restart performs a live rejoin: log replay through the
    recovery machinery, then catch-up refreshes from the subscription
    position the replay established. A site may crash several times in
    one plan as long as the ``[at, restart)`` windows do not overlap;
    note the rejoin's log replay takes simulated CPU time, so leave
    slack between a restart and the next crash.
    """

    site: int
    at_ms: float
    restart_at_ms: Optional[float] = None


@dataclass(frozen=True)
class SlowFault:
    """Fail-slow: multiply site ``site``'s CPU service times by ``factor``
    over ``[start_ms, end_ms)``.

    The site stays alive and correct — every operation just takes
    ``factor`` times longer on its cores (interpreted by the CPU
    :class:`~repro.sim.resources.Resource` at grant time). This is the
    gray-failure mode a connection-refused detector never sees: the
    site answers everything, slowly. Overlapping slow windows on one
    site multiply. ``end_ms`` may be ``inf`` (a permanently sick
    machine is survivable — transactions still terminate).
    """

    site: int
    start_ms: float
    end_ms: float
    factor: float = 4.0

    def active_at(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms


@dataclass(frozen=True)
class LinkFault:
    """Degrade the directed link ``src -> dst`` over an interval.

    ``drop=True`` blackholes every message; otherwise ``loss`` is the
    probability each message is lost (drawn from the faults RNG
    stream), ``extra_delay_ms`` is added to each delivery, and
    ``jitter_ms`` adds a per-message uniform draw from
    ``[0, jitter_ms)`` (same seeded stream) — the degraded-but-
    connected WAN mode. The interval must be finite: permanent
    partitions would make 2PC decision delivery — and therefore
    transaction termination — impossible, so the plan validator
    rejects them (crashes may be permanent instead).
    """

    src: int
    dst: int
    start_ms: float
    end_ms: float
    drop: bool = False
    loss: float = 0.0
    extra_delay_ms: float = 0.0
    jitter_ms: float = 0.0

    def active_at(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms


def partition_site(
    site: int,
    start_ms: float,
    end_ms: float,
    num_sites: int,
    include_frontend: bool = True,
) -> List[LinkFault]:
    """Sugar: cut both directions of every link touching ``site``."""
    peers = [index for index in range(num_sites) if index != site]
    if include_frontend:
        peers.append(FRONTEND)
    faults = []
    for peer in peers:
        faults.append(LinkFault(site, peer, start_ms, end_ms, drop=True))
        faults.append(LinkFault(peer, site, start_ms, end_ms, drop=True))
    return faults


def degrade_site(
    site: int,
    start_ms: float,
    end_ms: float,
    num_sites: int,
    extra_delay_ms: float = 4.0,
    jitter_ms: float = 8.0,
    include_frontend: bool = True,
) -> List[LinkFault]:
    """Sugar: inflate (latency + seeded jitter) every link touching
    ``site`` — degraded-but-connected, the gray twin of
    :func:`partition_site`."""
    peers = [index for index in range(num_sites) if index != site]
    if include_frontend:
        peers.append(FRONTEND)
    faults = []
    for peer in peers:
        for src, dst in ((site, peer), (peer, site)):
            faults.append(LinkFault(
                src, dst, start_ms, end_ms,
                extra_delay_ms=extra_delay_ms, jitter_ms=jitter_ms,
            ))
    return faults


def flapping_site(
    site: int,
    start_ms: float,
    end_ms: float,
    num_sites: int,
    period_ms: float,
    downtime_ms: Optional[float] = None,
    include_frontend: bool = True,
) -> List[LinkFault]:
    """Sugar: repeatedly isolate ``site`` — down for ``downtime_ms``
    (default: half the period) at the start of every ``period_ms``
    cycle within ``[start_ms, end_ms)``.

    Built from full link cuts rather than crash/restart cycles so the
    site's state survives each flap — the failure is connectivity, not
    the machine. This is the suspicion-churn scenario: a detector that
    never forgives keeps routing around a recovered site; one that
    forgives too fast never converges.
    """
    if period_ms <= 0:
        raise ValueError(f"flap period must be positive, got {period_ms}")
    down = downtime_ms if downtime_ms is not None else period_ms / 2.0
    if not 0 < down <= period_ms:
        raise ValueError(
            f"flap downtime {down} must be in (0, period {period_ms}]"
        )
    faults: List[LinkFault] = []
    window_start = start_ms
    while window_start < end_ms:
        window_end = min(window_start + down, end_ms)
        faults.extend(partition_site(
            site, window_start, window_end, num_sites,
            include_frontend=include_frontend,
        ))
        window_start += period_ms
    return faults


@dataclass
class FaultPlan:
    """A complete, declarative fault schedule for one run."""

    crashes: Tuple[CrashFault, ...] = ()
    links: Tuple[LinkFault, ...] = ()
    slowdowns: Tuple[SlowFault, ...] = ()

    def __post_init__(self):
        self.crashes = tuple(self.crashes)
        self.links = tuple(self.links)
        self.slowdowns = tuple(self.slowdowns)

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.links and not self.slowdowns

    def validate(self, num_sites: int) -> None:
        """Reject schedules the protocol stack cannot survive."""
        by_site: dict = {}
        for crash in self.crashes:
            if not 0 <= crash.site < num_sites:
                raise ValueError(f"crash names unknown site {crash.site}")
            if crash.at_ms < 0:
                raise ValueError(f"crash time must be >= 0, got {crash.at_ms}")
            if crash.restart_at_ms is not None and crash.restart_at_ms <= crash.at_ms:
                raise ValueError(
                    f"site {crash.site}: restart at {crash.restart_at_ms} "
                    f"is not after the crash at {crash.at_ms} "
                    "(a crash window must have positive duration)"
                )
            by_site.setdefault(crash.site, []).append(crash)
        for site, crashes in by_site.items():
            crashes.sort(key=lambda crash: crash.at_ms)
            for earlier, later in zip(crashes, crashes[1:]):
                if earlier.restart_at_ms is None:
                    raise ValueError(
                        f"site {site} crashes at {later.at_ms} but its "
                        f"crash at {earlier.at_ms} never restarts; a "
                        "permanently-down site cannot crash again — give "
                        "the earlier fault a restart_at_ms before "
                        f"{later.at_ms}"
                    )
                if later.at_ms < earlier.restart_at_ms:
                    raise ValueError(
                        f"site {site} has overlapping crash windows: "
                        f"[{earlier.at_ms}, {earlier.restart_at_ms}) and "
                        f"[{later.at_ms}, ...) — separate them so the "
                        "site is up between crashes"
                    )
        if len(by_site) >= num_sites:
            raise ValueError("a plan may not crash every site")
        for slow in self.slowdowns:
            if not 0 <= slow.site < num_sites:
                raise ValueError(f"slow fault names unknown site {slow.site}")
            if slow.factor <= 0:
                raise ValueError(
                    f"slow factor must be positive, got {slow.factor} "
                    f"(site {slow.site})"
                )
            if not slow.end_ms > slow.start_ms >= 0:
                raise ValueError(
                    f"slow fault window [{slow.start_ms}, {slow.end_ms}) on "
                    f"site {slow.site} is empty — zero/negative-duration "
                    "faults never fire; give the window positive length"
                )
        for link in self.links:
            for end in (link.src, link.dst):
                if end != FRONTEND and not 0 <= end < num_sites:
                    raise ValueError(f"link fault names unknown site {end}")
            if link.src == link.dst:
                raise ValueError(f"link fault on a self-loop ({link.src})")
            if not 0.0 <= link.loss < 1.0:
                raise ValueError(
                    f"loss must be in [0, 1) (use drop=True for a full cut), "
                    f"got {link.loss}"
                )
            if link.extra_delay_ms < 0:
                raise ValueError(f"negative extra delay: {link.extra_delay_ms}")
            if link.jitter_ms < 0:
                raise ValueError(f"negative jitter: {link.jitter_ms}")
            if not link.end_ms > link.start_ms >= 0:
                raise ValueError(
                    f"link fault interval [{link.start_ms}, {link.end_ms}) "
                    "is empty — zero/negative-duration faults never fire; "
                    "give the window positive length"
                )
            if link.end_ms == float("inf"):
                raise ValueError(
                    "link faults must end (permanent partitions would make "
                    "transaction termination impossible); crash the site instead"
                )


def fault_windows(
    plan: FaultPlan, duration_ms: float
) -> List[Tuple[str, int, float, float]]:
    """Ground-truth ``(kind, site, start_ms, end_ms)`` windows of a plan.

    The run-relative intervals each fault is actually active, clamped
    to the run: a crash without a restart extends to ``duration_ms``,
    and windows starting at/after the end of the run are dropped. Link
    faults are attributed to their data-site end (the front end never
    fails itself). This is the join key the SLO engine's incident
    correlation uses (MTTD/MTTR against injected truth), so it lives
    next to the plan rather than the observer.
    """
    windows: List[Tuple[str, int, float, float]] = []
    for crash in plan.crashes:
        end = crash.restart_at_ms if crash.restart_at_ms is not None else duration_ms
        windows.append(("crash", crash.site, crash.at_ms, min(end, duration_ms)))
    for slow in plan.slowdowns:
        windows.append(
            ("slow", slow.site, slow.start_ms, min(slow.end_ms, duration_ms))
        )
    for link in plan.links:
        site = link.dst if link.src == FRONTEND else link.src
        windows.append(
            ("link", site, link.start_ms, min(link.end_ms, duration_ms))
        )
    windows = [w for w in windows if w[3] > w[2]]
    windows.sort(key=lambda w: (w[2], w[3], w[0], w[1]))
    return windows


#: Named scenarios for ``repro chaos`` / ``make chaos`` /
#: ``make chaos-gray``. The first four are fail-stop/binary; the last
#: four are the gray-failure scenarios (fail-slow, degraded links,
#: connectivity flapping, and the combination).
SCENARIOS = (
    "crash-restart", "crash", "partition", "lossy",
    "fail_slow_master", "degraded_wan_link", "flapping_site", "gray_storm",
)

#: Gray-failure subset of :data:`SCENARIOS` (the `make chaos-gray` matrix).
GRAY_SCENARIOS = (
    "fail_slow_master", "degraded_wan_link", "flapping_site", "gray_storm",
)


def build_scenario(
    name: str,
    num_sites: int,
    duration_ms: float,
    outage_ms: Optional[float] = None,
) -> FaultPlan:
    """Instantiate a named scenario scaled to the run duration.

    ``crash-restart`` (the paper-style availability experiment) crashes
    one site a third of the way in and restarts it ``outage_ms`` later
    (default: 20 simulated seconds, capped to a third of the run). The
    gray scenarios degrade over the same window: ``fail_slow_master``
    slows the victim's CPU 10x, ``degraded_wan_link`` inflates the
    0<->1 link with seeded jitter, ``flapping_site`` cuts the victim's
    connectivity in four on/off cycles, and ``gray_storm`` combines a
    slow site with a degraded link and a mildly lossy front-end path.
    """
    if num_sites < 2:
        raise ValueError("fault scenarios need at least two sites")
    third = duration_ms / 3.0
    outage = outage_ms if outage_ms is not None else min(20_000.0, third)
    victim = 1
    if name == "crash-restart":
        return FaultPlan(crashes=(
            CrashFault(victim, at_ms=third, restart_at_ms=third + outage),
        ))
    if name == "crash":
        return FaultPlan(crashes=(CrashFault(victim, at_ms=third),))
    if name == "partition":
        return FaultPlan(links=tuple(
            partition_site(victim, third, third + outage, num_sites)
        ))
    if name == "lossy":
        links = []
        for src in range(num_sites):
            for dst in range(num_sites):
                if src != dst:
                    links.append(LinkFault(src, dst, third, third + outage, loss=0.2))
            links.append(LinkFault(FRONTEND, src, third, third + outage, loss=0.2))
            links.append(LinkFault(src, FRONTEND, third, third + outage, loss=0.2))
        return FaultPlan(links=tuple(links))
    if name == "fail_slow_master":
        return FaultPlan(slowdowns=(
            SlowFault(victim, third, third + outage, factor=10.0),
        ))
    if name == "degraded_wan_link":
        links = []
        for src, dst in ((0, victim), (victim, 0)):
            links.append(LinkFault(
                src, dst, third, third + outage,
                extra_delay_ms=6.0, jitter_ms=12.0,
            ))
        return FaultPlan(links=tuple(links))
    if name == "flapping_site":
        period = outage / 4.0
        return FaultPlan(links=tuple(flapping_site(
            victim, third, third + outage, num_sites,
            period_ms=period, downtime_ms=period / 2.0,
        )))
    if name == "gray_storm":
        other = 0 if num_sites == 2 else 2
        links = []
        for src, dst in ((0, other), (other, 0)) if other else ():
            links.append(LinkFault(
                src, dst, third, third + outage,
                extra_delay_ms=3.0, jitter_ms=6.0,
            ))
        links.append(LinkFault(FRONTEND, other, third, third + outage, loss=0.1))
        links.append(LinkFault(other, FRONTEND, third, third + outage, loss=0.1))
        return FaultPlan(
            slowdowns=(SlowFault(victim, third, third + outage, factor=6.0),),
            links=tuple(links),
        )
    raise ValueError(f"unknown scenario {name!r}; expected one of {SCENARIOS}")
