"""Declarative fault schedules.

A :class:`FaultPlan` is pure data: what fails, when, and for how long.
The :class:`~repro.faults.injector.FaultInjector` interprets it against
a live cluster. Keeping the schedule declarative makes fault scenarios
reproducible (the plan plus the seed fully determine the run) and lets
property tests generate arbitrary plans.

Site indices: data sites are ``0..num_sites-1``; :data:`FRONTEND`
(``-1``) denotes the front-end tier (site selector / router), which
never crashes but whose links to data sites can fail — cutting every
``(FRONTEND, i)`` link isolates site *i* from new work while its
replication feed (the durable-log service) keeps flowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Pseudo-site index for the front-end tier (selector/router machines).
FRONTEND = -1


@dataclass(frozen=True)
class CrashFault:
    """Crash site ``site`` at ``at_ms``; restart at ``restart_at_ms``.

    ``restart_at_ms=None`` means the site stays down for the rest of
    the run. A restart performs a live rejoin: log replay through the
    recovery machinery, then catch-up refreshes from the subscription
    position the replay established.
    """

    site: int
    at_ms: float
    restart_at_ms: Optional[float] = None


@dataclass(frozen=True)
class LinkFault:
    """Degrade the directed link ``src -> dst`` over an interval.

    ``drop=True`` blackholes every message; otherwise ``loss`` is the
    probability each message is lost (drawn from the faults RNG
    stream) and ``extra_delay_ms`` is added to each delivery. The
    interval must be finite: permanent partitions would make 2PC
    decision delivery — and therefore transaction termination —
    impossible, so the plan validator rejects them (crashes may be
    permanent instead).
    """

    src: int
    dst: int
    start_ms: float
    end_ms: float
    drop: bool = False
    loss: float = 0.0
    extra_delay_ms: float = 0.0

    def active_at(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms


def partition_site(
    site: int,
    start_ms: float,
    end_ms: float,
    num_sites: int,
    include_frontend: bool = True,
) -> List[LinkFault]:
    """Sugar: cut both directions of every link touching ``site``."""
    peers = [index for index in range(num_sites) if index != site]
    if include_frontend:
        peers.append(FRONTEND)
    faults = []
    for peer in peers:
        faults.append(LinkFault(site, peer, start_ms, end_ms, drop=True))
        faults.append(LinkFault(peer, site, start_ms, end_ms, drop=True))
    return faults


@dataclass
class FaultPlan:
    """A complete, declarative fault schedule for one run."""

    crashes: Tuple[CrashFault, ...] = ()
    links: Tuple[LinkFault, ...] = ()

    def __post_init__(self):
        self.crashes = tuple(self.crashes)
        self.links = tuple(self.links)

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.links

    def validate(self, num_sites: int) -> None:
        """Reject schedules the protocol stack cannot survive."""
        seen_sites = set()
        for crash in self.crashes:
            if not 0 <= crash.site < num_sites:
                raise ValueError(f"crash names unknown site {crash.site}")
            if crash.site in seen_sites:
                raise ValueError(
                    f"site {crash.site} appears in more than one CrashFault; "
                    "use one fault per site (a site crashes at most once)"
                )
            seen_sites.add(crash.site)
            if crash.at_ms < 0:
                raise ValueError(f"crash time must be >= 0, got {crash.at_ms}")
            if crash.restart_at_ms is not None and crash.restart_at_ms <= crash.at_ms:
                raise ValueError(
                    f"site {crash.site}: restart at {crash.restart_at_ms} "
                    f"is not after the crash at {crash.at_ms}"
                )
        if len(seen_sites) >= num_sites:
            raise ValueError("a plan may not crash every site")
        for link in self.links:
            for end in (link.src, link.dst):
                if end != FRONTEND and not 0 <= end < num_sites:
                    raise ValueError(f"link fault names unknown site {end}")
            if link.src == link.dst:
                raise ValueError(f"link fault on a self-loop ({link.src})")
            if not 0.0 <= link.loss < 1.0:
                raise ValueError(
                    f"loss must be in [0, 1) (use drop=True for a full cut), "
                    f"got {link.loss}"
                )
            if link.extra_delay_ms < 0:
                raise ValueError(f"negative extra delay: {link.extra_delay_ms}")
            if not link.end_ms > link.start_ms >= 0:
                raise ValueError(
                    f"link fault interval [{link.start_ms}, {link.end_ms}) is empty"
                )
            if link.end_ms == float("inf"):
                raise ValueError(
                    "link faults must end (permanent partitions would make "
                    "transaction termination impossible); crash the site instead"
                )


#: Named scenarios for ``repro chaos`` / ``make chaos``.
SCENARIOS = ("crash-restart", "crash", "partition", "lossy")


def build_scenario(
    name: str,
    num_sites: int,
    duration_ms: float,
    outage_ms: Optional[float] = None,
) -> FaultPlan:
    """Instantiate a named scenario scaled to the run duration.

    ``crash-restart`` (the paper-style availability experiment) crashes
    one site a third of the way in and restarts it ``outage_ms`` later
    (default: 20 simulated seconds, capped to a third of the run).
    """
    if num_sites < 2:
        raise ValueError("fault scenarios need at least two sites")
    third = duration_ms / 3.0
    outage = outage_ms if outage_ms is not None else min(20_000.0, third)
    victim = 1
    if name == "crash-restart":
        return FaultPlan(crashes=(
            CrashFault(victim, at_ms=third, restart_at_ms=third + outage),
        ))
    if name == "crash":
        return FaultPlan(crashes=(CrashFault(victim, at_ms=third),))
    if name == "partition":
        return FaultPlan(links=tuple(
            partition_site(victim, third, third + outage, num_sites)
        ))
    if name == "lossy":
        links = []
        for src in range(num_sites):
            for dst in range(num_sites):
                if src != dst:
                    links.append(LinkFault(src, dst, third, third + outage, loss=0.2))
            links.append(LinkFault(FRONTEND, src, third, third + outage, loss=0.2))
            links.append(LinkFault(src, FRONTEND, third, third + outage, loss=0.2))
        return FaultPlan(links=tuple(links))
    raise ValueError(f"unknown scenario {name!r}; expected one of {SCENARIOS}")
