"""Per-destination adaptive RPC deadlines from observed RTTs.

A fixed RPC timeout is wrong in both directions under gray failure:
too tight and jittery-but-healthy links cause spurious aborts, too
loose and a fail-slow site drags every caller to the full timeout
before anyone notices. The :class:`DeadlineTracker` learns each
destination's RTT distribution (a compact
:class:`~repro.obs.registry.StreamingHistogram` per site) and derives:

* ``deadline_ms(dst)`` — ``quantile(q) * multiplier``, clamped to
  ``[floor, fixed timeout]``. The fixed timeout stays the ceiling:
  adaptation only ever tightens, so the worst case is the status quo.
* ``hedge_delay_ms(dst)`` — the hedging percentile of the same
  distribution: how long a read waits before launching a backup
  request to another replica ("the tail at scale" recipe).

Until ``min_samples`` RTTs have been observed for a destination, both
fall back to the fixed values — cold-start guesses would be noise.
The tracker is passive and deterministic: it only folds in RTTs the
RPC layer measured anyway, consumes no randomness, and is dropped per
destination by the injector's restart hook (a rejoined site's RTT
profile is a fresh machine's).
"""

from __future__ import annotations

from typing import Dict

from repro.obs.registry import StreamingHistogram


class DeadlineTracker:
    """Quantile-tracked RTTs per destination -> adaptive deadlines."""

    def __init__(
        self,
        timeout_ms: float,
        quantile: float = 0.99,
        multiplier: float = 3.0,
        min_samples: int = 20,
        floor_ms: float = 5.0,
        hedge_quantile: float = 0.95,
    ):
        if not 0 < quantile < 1 or not 0 < hedge_quantile < 1:
            raise ValueError(
                f"quantiles must be in (0, 1), got {quantile}/{hedge_quantile}"
            )
        if multiplier < 1.0:
            raise ValueError(f"deadline multiplier must be >= 1, got {multiplier}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.timeout_ms = timeout_ms
        self.quantile = quantile
        self.multiplier = multiplier
        self.min_samples = min_samples
        self.floor_ms = floor_ms
        self.hedge_quantile = hedge_quantile
        self._rtts: Dict[int, StreamingHistogram] = {}

    def observe(self, dst: int, rtt_ms: float) -> None:
        """Fold one successful round-trip time for ``dst``."""
        hist = self._rtts.get(dst)
        if hist is None:
            hist = self._rtts[dst] = StreamingHistogram(f"rtt_site_{dst}")
        hist.record(rtt_ms)

    def samples(self, dst: int) -> int:
        hist = self._rtts.get(dst)
        return hist.count if hist is not None else 0

    def deadline_ms(self, dst: int) -> float:
        """Adaptive deadline for an RPC to ``dst``; never looser than
        the fixed timeout, never tighter than the floor."""
        hist = self._rtts.get(dst)
        if hist is None or hist.count < self.min_samples:
            return self.timeout_ms
        adaptive = hist.quantile(self.quantile) * self.multiplier
        return min(self.timeout_ms, max(self.floor_ms, adaptive))

    def hedge_delay_ms(self, dst: int) -> float:
        """How long a hedged read waits on ``dst`` before launching its
        backup; the fixed timeout until enough history exists."""
        hist = self._rtts.get(dst)
        if hist is None or hist.count < self.min_samples:
            return self.timeout_ms
        return min(self.timeout_ms, max(self.floor_ms, hist.quantile(self.hedge_quantile)))

    def reset(self, dst: int) -> None:
        """Drop ``dst``'s history (the site restarted)."""
        self._rtts.pop(dst, None)
