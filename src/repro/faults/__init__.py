"""Deterministic fault injection (crashes, partitions, loss, gray
failures) and the failure-handling vocabulary the protocol stack
shares.

The package is inert unless a :class:`FaultInjector` is installed on a
cluster: every hook in the simulator is gated on ``faults is None``, so
runs without a plan are bit-identical to the pre-fault codebase.

The fault model — crash/restart semantics, the hardened RPC layer
(timeouts, seeded-jitter retries, suspicion), gray failures (fail-slow
sites, degraded links) and their adaptive defenses (phi-accrual
detection, adaptive deadlines, hedged reads, health-aware
remastering), presumed-abort 2PC termination, and the abort taxonomy —
is specified in DESIGN.md §7; the bit-identity gate is pinned by the
fingerprint tests in ``tests/test_faults_injection.py`` (see also
DESIGN.md §8 on what substrate optimizations must preserve).
"""

from repro.faults.deadlines import DeadlineTracker
from repro.faults.detector import AdaptiveDetector, FailureDetector
from repro.faults.errors import (
    REASON_CONFLICT,
    REASON_SITE_CRASH,
    REASON_TIMEOUT,
    FaultError,
    RpcTimeout,
    SiteDown,
    TransactionAborted,
)
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import (
    FRONTEND,
    GRAY_SCENARIOS,
    SCENARIOS,
    CrashFault,
    FaultPlan,
    LinkFault,
    SlowFault,
    build_scenario,
    degrade_site,
    flapping_site,
    partition_site,
)

__all__ = [
    "AdaptiveDetector",
    "DeadlineTracker",
    "FailureDetector",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "CrashFault",
    "LinkFault",
    "SlowFault",
    "RpcTimeout",
    "SiteDown",
    "TransactionAborted",
    "FRONTEND",
    "GRAY_SCENARIOS",
    "SCENARIOS",
    "REASON_CONFLICT",
    "REASON_SITE_CRASH",
    "REASON_TIMEOUT",
    "build_scenario",
    "degrade_site",
    "flapping_site",
    "partition_site",
]
