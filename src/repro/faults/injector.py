"""Deterministic fault injection against a live cluster.

The injector interprets a :class:`~repro.faults.plan.FaultPlan`:

* it is the ``faults`` hook the network consults for per-link
  partitions, probabilistic loss, and extra delay (all draws come from
  the dedicated ``faults`` RNG stream, so an empty plan changes no
  random state anywhere);
* it runs one process per :class:`~repro.faults.plan.CrashFault` that
  fail-stops the site at the scheduled time and, optionally, restarts
  it later via live log-replay rejoin;
* it owns the shared :class:`~repro.faults.detector.FailureDetector`
  the routers use for suspicion, and the ground truth
  (:meth:`is_crashed`) that gates the destructive failover path —
  standing in for the durable-log service fencing a dead producer.

Every fault transition is recorded in :attr:`events` for reports and
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.faults.detector import FailureDetector
from repro.faults.plan import FaultPlan, LinkFault
from repro.replication.recovery import rejoin_site


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault transition (for timelines and assertions)."""

    at_ms: float
    kind: str  # "crash" | "restart"
    site: int


class FaultInjector:
    """Drives a fault plan against a cluster; the protocol's adversary."""

    def __init__(self, cluster, plan: FaultPlan, rng):
        plan.validate(cluster.config.num_sites)
        self.cluster = cluster
        self.plan = plan
        self.rng = rng
        self.rpc = cluster.config.rpc
        self.detector = FailureDetector(self.rpc.suspicion_threshold)
        self.events: List[FaultEvent] = []
        self._crashed: Set[int] = set()
        #: partition -> master site at load time, for mastership replay.
        self.initial_mastership: Dict[int, int] = {}
        self._links_by_pair: Dict[Tuple[int, int], List[LinkFault]] = {}
        for link in plan.links:
            self._links_by_pair.setdefault((link.src, link.dst), []).append(link)

    def install(self) -> None:
        """Hook the cluster and schedule the plan's crash processes.

        Must be called before the workload starts (the captured
        mastership map must be the load-time placement the durable
        logs' markers are replayed against).
        """
        self.cluster.faults = self
        self.cluster.network.faults = self
        for site in self.cluster.sites:
            for partition in site.mastered:
                self.initial_mastership[partition] = site.index
        for crash in self.plan.crashes:
            self.cluster.env.process(self._crash_proc(crash))

    # -- ground truth -----------------------------------------------------

    def is_crashed(self, site: int) -> bool:
        """Whether ``site`` is actually down right now (not mere suspicion).

        Only this — modeling the log service refusing a fenced, dead
        producer — may authorize forced mastership failover; suspicion
        alone aborts the transaction instead.
        """
        return site in self._crashed

    @property
    def any_crashed(self) -> bool:
        return bool(self._crashed)

    def sites_up(self) -> int:
        return self.cluster.config.num_sites - len(self._crashed)

    # -- link state (consulted by Network.leg_lost / leg_delay) -----------

    def link_cut(self, src: int, dst: int) -> bool:
        now = self.cluster.env.now
        return any(
            link.drop and link.active_at(now)
            for link in self._links_by_pair.get((src, dst), ())
        )

    def link_extra_delay(self, src: int, dst: int) -> float:
        now = self.cluster.env.now
        return sum(
            link.extra_delay_ms
            for link in self._links_by_pair.get((src, dst), ())
            if link.active_at(now)
        )

    def message_lost(self, src: int, dst: int) -> bool:
        """Loss verdict for one message on ``src -> dst``, drawn now.

        A cut link loses everything without consuming randomness;
        otherwise the active loss probabilities combine independently
        and a single draw from the faults stream decides.
        """
        faults = self._links_by_pair.get((src, dst))
        if not faults:
            return False
        now = self.cluster.env.now
        survive = 1.0
        cut = False
        for link in faults:
            if not link.active_at(now):
                continue
            if link.drop:
                cut = True
            else:
                survive *= 1.0 - link.loss
        if cut:
            return True
        if survive >= 1.0:
            return False
        return self.rng.random() >= survive

    # -- crash / restart schedule -----------------------------------------

    def _crash_proc(self, crash):
        env = self.cluster.env
        yield env.timeout(crash.at_ms)
        site = self.cluster.sites[crash.site]
        self._crashed.add(crash.site)
        site.crash()
        self.detector.report_down(crash.site)
        self.events.append(FaultEvent(env.now, "crash", crash.site))
        if crash.restart_at_ms is None:
            return
        yield env.timeout(crash.restart_at_ms - crash.at_ms)
        yield from rejoin_site(self.cluster, crash.site, self.initial_mastership)
        self._crashed.discard(crash.site)
        self.detector.clear(crash.site)
        self.events.append(FaultEvent(env.now, "restart", crash.site))
