"""Deterministic fault injection against a live cluster.

The injector interprets a :class:`~repro.faults.plan.FaultPlan`:

* it is the ``faults`` hook the network consults for per-link
  partitions, probabilistic loss, and extra delay + jitter (all draws
  come from the dedicated ``faults`` RNG stream, so an empty plan
  changes no random state anywhere);
* it interprets :class:`~repro.faults.plan.SlowFault` windows by
  installing a service-time multiplier hook on the victim sites' CPU
  resources (fail-slow: the site answers everything, slowly);
* it runs one process per :class:`~repro.faults.plan.CrashFault` that
  fail-stops the site at the scheduled time and, optionally, restarts
  it later via live log-replay rejoin;
* it owns the shared failure detector the routers use for suspicion
  (fixed-strike or phi-accrual, per ``RpcConfig.detector_policy``),
  the per-destination :class:`~repro.faults.deadlines.DeadlineTracker`
  behind adaptive RPC deadlines and hedged-read delays, and the
  ground truth (:meth:`is_crashed`) that gates the destructive
  failover path — standing in for the durable-log service fencing a
  dead producer.

Every fault transition is recorded in :attr:`events` for reports and
tests, and the detector/hedging counters are folded into ``Metrics``
by the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.deadlines import DeadlineTracker
from repro.faults.detector import AdaptiveDetector, FailureDetector
from repro.faults.plan import FaultPlan, LinkFault, SlowFault
from repro.replication.recovery import rejoin_site


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault transition (for timelines and assertions)."""

    at_ms: float
    kind: str  # "crash" | "restart"
    site: int


class FaultInjector:
    """Drives a fault plan against a cluster; the protocol's adversary."""

    def __init__(self, cluster, plan: FaultPlan, rng):
        plan.validate(cluster.config.num_sites)
        self.cluster = cluster
        self.plan = plan
        self.rng = rng
        self.rpc = cluster.config.rpc
        if self.rpc.detector_policy == "adaptive":
            self.detector = AdaptiveDetector(
                clock=lambda: cluster.env.now,
                phi_threshold=self.rpc.phi_threshold,
                threshold=self.rpc.suspicion_threshold,
                ground_truth=self.site_faulted,
                quarantine_ms=self.rpc.suspicion_quarantine_ms,
            )
        elif self.rpc.detector_policy == "threshold":
            self.detector = FailureDetector(
                self.rpc.suspicion_threshold,
                ground_truth=self.site_faulted,
                clock=lambda: cluster.env.now,
            )
        else:
            raise ValueError(
                f"unknown detector policy {self.rpc.detector_policy!r}; "
                "expected 'adaptive' or 'threshold'"
            )
        self.deadlines = DeadlineTracker(
            timeout_ms=self.rpc.timeout_ms,
            quantile=self.rpc.deadline_quantile,
            multiplier=self.rpc.deadline_multiplier,
            min_samples=self.rpc.deadline_min_samples,
            floor_ms=self.rpc.deadline_floor_ms,
            hedge_quantile=self.rpc.hedge_quantile,
        )
        self.events: List[FaultEvent] = []
        #: Hedged-read accounting (bumped by the systems' read paths).
        self.hedges_launched = 0
        self.hedge_wins = 0
        self._crashed: Set[int] = set()
        #: partition -> master site at load time, for mastership replay.
        self.initial_mastership: Dict[int, int] = {}
        self._links_by_pair: Dict[Tuple[int, int], List[LinkFault]] = {}
        for link in plan.links:
            self._links_by_pair.setdefault((link.src, link.dst), []).append(link)
        self._slow_by_site: Dict[int, List[SlowFault]] = {}
        for slow in plan.slowdowns:
            self._slow_by_site.setdefault(slow.site, []).append(slow)

    def install(self) -> None:
        """Hook the cluster and schedule the plan's crash processes.

        Must be called before the workload starts (the captured
        mastership map must be the load-time placement the durable
        logs' markers are replayed against).
        """
        self.cluster.faults = self
        self.cluster.network.faults = self
        for site in self.cluster.sites:
            for partition in site.mastered:
                self.initial_mastership[partition] = site.index
        for index in self._slow_by_site:
            self._install_slow_hook(index)
        for crash in self.plan.crashes:
            self.cluster.env.process(self._crash_proc(crash))

    def _install_slow_hook(self, index: int) -> None:
        site = self.cluster.sites[index]
        site.cpu.slow = lambda index=index: self.cpu_multiplier(index)

    # -- ground truth -----------------------------------------------------

    def is_crashed(self, site: int) -> bool:
        """Whether ``site`` is actually down right now (not mere suspicion).

        Only this — modeling the log service refusing a fenced, dead
        producer — may authorize forced mastership failover; suspicion
        alone aborts the transaction instead.
        """
        return site in self._crashed

    def site_faulted(self, site: int) -> bool:
        """Whether ``site`` is under *any* active fault right now —
        crashed, fail-slow, or with a degraded/cut/lossy link touching
        it. Used only to classify suspicion episodes as true or false
        for the detector counters; protocol code never reads it.
        """
        if site in self._crashed:
            return True
        now = self.cluster.env.now
        if any(slow.active_at(now) for slow in self._slow_by_site.get(site, ())):
            return True
        return any(
            (link.src == site or link.dst == site) and link.active_at(now)
            for link in self.plan.links
        )

    @property
    def any_crashed(self) -> bool:
        return bool(self._crashed)

    def sites_up(self) -> int:
        return self.cluster.config.num_sites - len(self._crashed)

    # -- fail-slow (consulted by Resource.use via the slow hook) ----------

    def cpu_multiplier(self, site: int) -> float:
        """Service-time multiplier for ``site`` right now; overlapping
        slow windows multiply."""
        now = self.cluster.env.now
        factor = 1.0
        for slow in self._slow_by_site.get(site, ()):
            if slow.active_at(now):
                factor *= slow.factor
        return factor

    # -- adaptive deadlines / hedging -------------------------------------

    def observe_rtt(self, dst: int, rtt_ms: float) -> None:
        """Fold one successful RPC round trip (called by guarded_call)."""
        self.deadlines.observe(dst, rtt_ms)

    def deadline_ms(self, dst: int) -> float:
        """Effective RPC deadline for ``dst``: adaptive when enabled
        and warmed up, the fixed timeout otherwise."""
        if not self.rpc.adaptive_deadlines:
            return self.rpc.timeout_ms
        return self.deadlines.deadline_ms(dst)

    def hedge_delay_ms(self, dst: int) -> float:
        return self.deadlines.hedge_delay_ms(dst)

    def detector_counters(self) -> Dict[str, float]:
        """Detector/hedging counters for the run report and exports
        (mirrors the selector_counters fold in the bench harness).

        ``quarantine_ms`` (total simulated time sites spent suspected,
        open episodes counted through "now") and
        ``detection_latency_ms`` (first suspicion at/after the plan's
        first fault onset, minus that onset) are present only when
        they are defined — no episodes, or no fault ever detected,
        omits them so report/CSV schemas stay stable across runs.
        """
        counters: Dict[str, float] = {
            "suspicion_episodes": self.detector.suspicion_episodes,
            "false_suspicions": self.detector.false_suspicions,
            "suspected_sites": len(self.detector.suspected),
            "hedges_launched": self.hedges_launched,
            "hedge_wins": self.hedge_wins,
        }
        if self.detector.suspicion_episodes:
            counters["quarantine_ms"] = round(
                self.detector.suspicion_time_ms(self.cluster.env.now), 6
            )
            latency = self.detection_latency_ms()
            if latency is not None:
                counters["detection_latency_ms"] = round(latency, 6)
        return counters

    def detection_latency_ms(self) -> Optional[float]:
        """Delay from the plan's first fault onset to the first
        suspicion episode at/after it; ``None`` if the plan is empty
        or no episode followed the onset."""
        onsets = [crash.at_ms for crash in self.plan.crashes]
        onsets.extend(slow.start_ms for slow in self.plan.slowdowns)
        onsets.extend(link.start_ms for link in self.plan.links)
        if not onsets:
            return None
        first_onset = min(onsets)
        tripped = [at for at, _ in self.detector.episodes if at >= first_onset]
        if not tripped:
            return None
        return min(tripped) - first_onset

    # -- link state (consulted by Network.leg_lost / leg_delay) -----------

    def link_cut(self, src: int, dst: int) -> bool:
        now = self.cluster.env.now
        return any(
            link.drop and link.active_at(now)
            for link in self._links_by_pair.get((src, dst), ())
        )

    def link_extra_delay(self, src: int, dst: int) -> float:
        """Injected one-way delay on ``src -> dst`` for one message.

        Active flat delays sum; each active jittery link additionally
        contributes a fresh uniform draw from ``[0, jitter_ms)`` out of
        the faults RNG stream — per message, so a degraded WAN link
        reorders nothing but smears every delivery.
        """
        now = self.cluster.env.now
        extra = 0.0
        for link in self._links_by_pair.get((src, dst), ()):
            if not link.active_at(now):
                continue
            extra += link.extra_delay_ms
            if link.jitter_ms > 0.0:
                extra += link.jitter_ms * self.rng.random()
        return extra

    def message_lost(self, src: int, dst: int) -> bool:
        """Loss verdict for one message on ``src -> dst``, drawn now.

        A cut link loses everything without consuming randomness;
        otherwise the active loss probabilities combine independently
        and a single draw from the faults stream decides.
        """
        faults = self._links_by_pair.get((src, dst))
        if not faults:
            return False
        now = self.cluster.env.now
        survive = 1.0
        cut = False
        for link in faults:
            if not link.active_at(now):
                continue
            if link.drop:
                cut = True
            else:
                survive *= 1.0 - link.loss
        if cut:
            return True
        if survive >= 1.0:
            return False
        return self.rng.random() >= survive

    # -- crash / restart schedule -----------------------------------------

    def _crash_proc(self, crash):
        env = self.cluster.env
        yield env.timeout(crash.at_ms)
        site = self.cluster.sites[crash.site]
        self._crashed.add(crash.site)
        site.crash()
        self.detector.report_down(crash.site)
        self.events.append(FaultEvent(env.now, "crash", crash.site))
        if crash.restart_at_ms is None:
            return
        yield env.timeout(crash.restart_at_ms - crash.at_ms)
        yield from rejoin_site(self.cluster, crash.site, self.initial_mastership)
        self._crashed.discard(crash.site)
        # Restart hook: the rejoined site is a fresh machine. Drop all
        # suspicion evidence (strikes *and* phi/interval history — the
        # stale-suspicion leak) and its learned RTT profile, and
        # reinstall the fail-slow hook (crash() replaced the CPU
        # resource, which discarded it).
        self.detector.clear(crash.site)
        self.deadlines.reset(crash.site)
        if crash.site in self._slow_by_site:
            self._install_slow_hook(crash.site)
        self.events.append(FaultEvent(env.now, "restart", crash.site))
