"""Failure suspicion: fixed-strike and phi-accrual policies.

The site selector and routers must not require ground truth about
which sites are up: they *suspect* a site from RPC evidence, route
around suspected sites, and clear the suspicion on the next successful
exchange. Only the injector's ground truth — standing in for the
durable-log service fencing a dead producer — authorizes the
destructive failover path (forced mastership release).

Two policies share one interface (``report_timeout`` /
``report_down`` / ``report_success`` / ``clear`` / ``is_suspected`` /
``health``):

* :class:`FailureDetector` — the classic fixed-strike detector:
  ``threshold`` consecutive timeouts to a destination mean suspicion.
  Binary, simple, and blind to gray failure (a slow-but-alive site
  that answers within the fixed RPC timeout is never suspected).
* :class:`AdaptiveDetector` — phi-accrual style (Hayashibara et al.):
  per-site EWMA mean/variance of inter-success intervals turn the
  silence since the last success into a suspicion level
  ``phi = -log10 P(silence this long | history)``. Suspicion is the
  threshold ``phi >= phi_threshold``; :meth:`health` exposes the
  *graded* signal ``1 - phi/phi_threshold`` so remastering can steer
  away from a degrading site before the detector commits to suspicion.

Both count suspicion episodes and — when given a ground-truth
predicate (is the site actually faulted right now?) — false
suspicions, surfaced through ``Metrics`` alongside the selector
counters.

Determinism: detectors consume no randomness; the adaptive policy
reads time only through the injected ``clock`` (the sim clock), never
the wall clock.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Set

GroundTruth = Optional[Callable[[int], bool]]


class _SuspicionCounters:
    """Shared episode/false-suspicion accounting for both policies."""

    def __init__(
        self,
        ground_truth: GroundTruth = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self._ground_truth = ground_truth
        self._clock = clock
        self._suspected: Set[int] = set()
        #: transitions into suspicion (a flapping site counts each flap).
        self.suspicion_episodes = 0
        #: episodes that began while the site was not actually faulted.
        self.false_suspicions = 0
        #: (time, site) per episode — detection-latency measurements
        #: need to know *when* suspicion tripped, not just how often.
        #: Times are 0.0 when no clock was injected.
        self.episodes: list = []
        #: Total duration (ms) of *closed* suspicion episodes; open
        #: episodes are added by :meth:`suspicion_time_ms`.
        self.suspicion_ms = 0.0
        self._episode_started: Dict[int, float] = {}

    def _suspect(self, site: int) -> None:
        if site in self._suspected:
            return
        now = self._clock() if self._clock is not None else 0.0
        self._suspected.add(site)
        self.suspicion_episodes += 1
        self.episodes.append((now, site))
        self._episode_started[site] = now
        if self._ground_truth is not None and not self._ground_truth(site):
            self.false_suspicions += 1

    def _unsuspect(self, site: int) -> None:
        if site in self._suspected:
            started = self._episode_started.pop(site, None)
            if started is not None and self._clock is not None:
                self.suspicion_ms += max(0.0, self._clock() - started)
        self._suspected.discard(site)

    def suspicion_time_ms(self, now: Optional[float] = None) -> float:
        """Total simulated time spent suspected, across all sites.

        Closed episodes always count; passing ``now`` also counts the
        elapsed portion of still-open episodes — the quarantine
        duration a gray-failure sweep reports at end of run.
        """
        total = self.suspicion_ms
        if now is not None:
            for started in self._episode_started.values():
                total += max(0.0, now - started)
        return total

    @property
    def suspected(self) -> Set[int]:
        return set(self._suspected)


class FailureDetector(_SuspicionCounters):
    """Counts consecutive timeouts per site; suspects past a threshold."""

    def __init__(
        self,
        threshold: int = 2,
        ground_truth: GroundTruth = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if threshold < 1:
            raise ValueError(f"suspicion threshold must be >= 1, got {threshold}")
        super().__init__(ground_truth, clock)
        self.threshold = threshold
        self._strikes: Dict[int, int] = {}

    def report_timeout(self, site: int) -> None:
        strikes = self._strikes.get(site, 0) + 1
        self._strikes[site] = strikes
        if strikes >= self.threshold:
            self._suspect(site)

    def report_down(self, site: int) -> None:
        """Connection refused/reset: suspect immediately."""
        self._strikes[site] = self.threshold
        self._suspect(site)

    def report_success(self, site: int) -> None:
        self._strikes.pop(site, None)
        self._unsuspect(site)

    def clear(self, site: int) -> None:
        """Forget all evidence about ``site`` (it announced a restart)."""
        self.report_success(site)

    def is_suspected(self, site: int) -> bool:
        return site in self._suspected

    def health(self, site: int) -> float:
        """Graded confidence the site is healthy, in [0, 1].

        Strike-fraction for this binary policy: full health with no
        strikes, zero once suspected.
        """
        if site in self._suspected:
            return 0.0
        strikes = self._strikes.get(site, 0)
        return max(0.0, 1.0 - strikes / self.threshold)


class AdaptiveDetector(_SuspicionCounters):
    """Phi-accrual-style adaptive failure detector.

    Per destination, an EWMA of the mean and variance of intervals
    between *successful* RPC exchanges models "how often does this
    site normally answer". The suspicion level is then

        ``phi(site) = -log10 P(X > silence)``  for
        ``X ~ Normal(mean, std)``,

    the improbability of the current silence given history. Two guards
    keep it honest in an RPC (rather than heartbeat) setting:

    * silence only accrues suspicion once at least one timeout has
      been observed since the last success — an idle destination that
      nobody is calling is not thereby suspect;
    * before any interval history exists, the policy degrades to the
      fixed-strike rule, so a site that dies at time zero is still
      caught.

    ``report_down`` (connection refused — the transport *knows*)
    suspects immediately, as in the strike detector.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        phi_threshold: float = 8.0,
        threshold: int = 2,
        ground_truth: GroundTruth = None,
        alpha: float = 0.1,
        min_std_ms: float = 0.5,
        quarantine_ms: float = 250.0,
    ):
        if phi_threshold <= 0:
            raise ValueError(f"phi threshold must be positive, got {phi_threshold}")
        if threshold < 1:
            raise ValueError(f"suspicion threshold must be >= 1, got {threshold}")
        if not 0 < alpha <= 1:
            raise ValueError(f"EWMA alpha must be in (0, 1], got {alpha}")
        if quarantine_ms < 0:
            raise ValueError(f"quarantine must be >= 0 ms, got {quarantine_ms}")
        super().__init__(ground_truth, clock)
        self.clock = clock
        self.phi_threshold = phi_threshold
        self.threshold = threshold
        self.alpha = alpha
        self.min_std_ms = min_std_ms
        #: Suspicion hysteresis. A fail-slow site keeps *succeeding*
        #: (slowly), and under concurrent traffic some success always
        #: lands shortly after suspicion trips — without a latch the
        #: detector flickers and routing never actually drains the sick
        #: site. Once tripped, suspicion holds for ``quarantine_ms``;
        #: fresh timeout evidence extends the quarantine, an explicit
        #: :meth:`clear` (site restart) bypasses it.
        self.quarantine_ms = quarantine_ms
        self._quarantined_until: Dict[int, float] = {}
        self._mean: Dict[int, float] = {}
        self._var: Dict[int, float] = {}
        self._last_ok: Dict[int, float] = {}
        self._timeouts_since_ok: Dict[int, int] = {}
        self._down: Set[int] = set()

    # -- evidence ----------------------------------------------------------

    def report_success(self, site: int) -> None:
        now = self.clock()
        last = self._last_ok.get(site)
        if last is not None:
            interval = now - last
            mean = self._mean.get(site)
            if mean is None:
                self._mean[site] = interval
                self._var[site] = 0.0
            else:
                delta = interval - mean
                self._mean[site] = mean + self.alpha * delta
                self._var[site] = (1.0 - self.alpha) * (
                    self._var[site] + self.alpha * delta * delta
                )
        self._last_ok[site] = now
        self._timeouts_since_ok[site] = 0
        self._down.discard(site)
        if now >= self._quarantined_until.get(site, 0.0):
            self._unsuspect(site)

    def report_timeout(self, site: int) -> None:
        self._timeouts_since_ok[site] = self._timeouts_since_ok.get(site, 0) + 1
        self._refresh(site)
        if site in self._suspected:
            # Fresh evidence while quarantined: extend the latch.
            self._quarantined_until[site] = self.clock() + self.quarantine_ms

    def report_down(self, site: int) -> None:
        """Connection refused/reset: suspect immediately."""
        self._down.add(site)
        self._suspect(site)

    def clear(self, site: int) -> None:
        """Forget *all* evidence about ``site`` (it announced a restart).

        Drops the interval history too: a rejoined site's service-time
        distribution is a fresh machine's, and carrying pre-crash phi
        state into its second life is exactly the stale-suspicion leak
        this hook exists to prevent.
        """
        self._mean.pop(site, None)
        self._var.pop(site, None)
        self._last_ok.pop(site, None)
        self._timeouts_since_ok.pop(site, None)
        self._quarantined_until.pop(site, None)
        self._down.discard(site)
        self._unsuspect(site)

    # -- suspicion level ---------------------------------------------------

    def phi(self, site: int) -> float:
        """Current suspicion level; 0 means no evidence of trouble."""
        if site in self._down:
            return math.inf
        timeouts = self._timeouts_since_ok.get(site, 0)
        if timeouts == 0:
            return 0.0
        last = self._last_ok.get(site)
        mean = self._mean.get(site)
        if last is None or mean is None:
            # No interval history yet: fixed-strike fallback, mapped
            # onto the phi scale so one threshold governs both regimes.
            return self.phi_threshold * (timeouts / self.threshold)
        elapsed = self.clock() - last
        std = max(self.min_std_ms, math.sqrt(self._var.get(site, 0.0)), 0.1 * mean)
        tail = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        if tail <= 0.0:
            return math.inf
        return -math.log10(tail)

    def _suspect(self, site: int) -> None:
        if site not in self._suspected:
            self._quarantined_until[site] = self.clock() + self.quarantine_ms
        super()._suspect(site)

    def _refresh(self, site: int) -> None:
        if self.phi(site) >= self.phi_threshold:
            self._suspect(site)
        elif self.clock() >= self._quarantined_until.get(site, 0.0):
            self._unsuspect(site)

    def is_suspected(self, site: int) -> bool:
        # Phi grows with silence even without new reports; re-evaluate
        # at read time so suspicion does not wait for the next timeout.
        if site not in self._down:
            self._refresh(site)
        return site in self._suspected

    def health(self, site: int) -> float:
        """Graded confidence the site is healthy, in [0, 1].

        ``1 - phi/phi_threshold``: degrades continuously as evidence
        accrues, hitting zero exactly when suspicion trips. This is
        the signal health-aware remastering consumes — a site at
        health 0.4 is not yet routed around, but the strategy already
        pays a soft penalty to master partitions there.
        """
        if self.is_suspected(site):
            return 0.0
        return max(0.0, 1.0 - self.phi(site) / self.phi_threshold)
