"""Timeout-based failure suspicion.

The site selector and routers must not require ground truth about
which sites are up: they *suspect* a site after repeated RPC timeouts
(or immediately on a connection-refused), route around suspected
sites, and clear the suspicion on the next successful exchange. This
is the classic unreliable failure detector: a slow-but-live site can
be suspected (its transactions abort with ``timeout`` rather than
hang), and only the injector's ground truth — standing in for the
durable-log service fencing a dead producer — authorizes the
destructive failover path (forced mastership release).
"""

from __future__ import annotations

from typing import Dict, Set


class FailureDetector:
    """Counts consecutive timeouts per site; suspects past a threshold."""

    def __init__(self, threshold: int = 2):
        if threshold < 1:
            raise ValueError(f"suspicion threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._strikes: Dict[int, int] = {}
        self._suspected: Set[int] = set()

    def report_timeout(self, site: int) -> None:
        strikes = self._strikes.get(site, 0) + 1
        self._strikes[site] = strikes
        if strikes >= self.threshold:
            self._suspected.add(site)

    def report_down(self, site: int) -> None:
        """Connection refused/reset: suspect immediately."""
        self._strikes[site] = self.threshold
        self._suspected.add(site)

    def report_success(self, site: int) -> None:
        self._strikes.pop(site, None)
        self._suspected.discard(site)

    def clear(self, site: int) -> None:
        """Forget all evidence about ``site`` (it announced a restart)."""
        self.report_success(site)

    def is_suspected(self, site: int) -> bool:
        return site in self._suspected

    @property
    def suspected(self) -> Set[int]:
        return set(self._suspected)
