"""Failure exceptions raised by the hardened protocol stack.

Kept dependency-free so the message layer (and the kernel-adjacent
code it guards) can import them without cycles. All of them derive
from :class:`FaultError`, so protocol code can catch "any injected
failure" in one clause while letting genuine bugs propagate.
"""

from __future__ import annotations

#: Canonical abort reasons surfaced on transaction outcomes and split
#: out in the metrics (conflict = non-fault aborts, e.g. stale
#: optimistic routing).
REASON_CONFLICT = "conflict"
REASON_TIMEOUT = "timeout"
REASON_SITE_CRASH = "site_crash"


class FaultError(Exception):
    """Base class for injected-failure conditions."""

    reason = REASON_TIMEOUT


class RpcTimeout(FaultError):
    """An RPC got no response within the timeout.

    ``dispatched`` records whether the request reached the destination
    and a handler actually started there — the caller uses it to decide
    who cleans up in-flight registrations (the handler's own ``finally``
    if it ran, the caller otherwise).
    """

    reason = REASON_TIMEOUT

    def __init__(self, message: str, dispatched: bool = False):
        super().__init__(message)
        self.dispatched = dispatched


class SiteDown(FaultError):
    """The destination site is crashed (connection refused / reset)."""

    reason = REASON_SITE_CRASH

    def __init__(self, site: int):
        super().__init__(f"site {site} is down")
        self.site = site


class TransactionAborted(FaultError):
    """A protocol layer gave up on the transaction for ``reason``."""

    def __init__(self, reason: str, message: str = ""):
        super().__init__(message or f"transaction aborted: {reason}")
        self.reason = reason
