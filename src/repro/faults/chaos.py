"""Chaos runs: a fault scenario driven against one system, reported.

:func:`run_chaos` wires a named scenario (or an explicit
:class:`~repro.faults.plan.FaultPlan`) into a standard benchmark run
and distills the result into a :class:`ChaosReport`: a bucketed
availability timeline (commit/abort rates alongside how many sites
were up), the fault transitions, and the abort-reason breakdown. This
is the experiment behind the paper-style availability story — the
replicated, adaptive systems ride through a crash at a lower rate
while the fixed-mastership comparators lose every transaction touching
the dead site.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import RunResult, run_benchmark
from repro.bench.parallel import RunSpec, WorkloadSpec, execute_specs
from repro.faults.plan import FaultPlan, build_scenario
from repro.sim.config import ClusterConfig, RpcConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "AvailabilityBucket",
    "ChaosReport",
    "DEFENSES",
    "chaos_workload_spec",
    "defense_setup",
    "run_chaos",
    "run_chaos_matrix",
]

#: Selectable gray-failure defense presets for chaos runs.
DEFENSES = ("fixed", "adaptive")

#: Health weight for the ``adaptive`` preset — large enough that a site
#: the detector grades fully unhealthy loses to any candidate whose
#: Equation-8 benefit is within typical chaos-run magnitudes, yet small
#: enough not to drown the balance term for mildly degraded sites.
ADAPTIVE_HEALTH_WEIGHT = 1000.0

#: The default chaos workload as pure data — contended YCSB (50% RMW,
#: moderate skew), identical to the workload ``run_chaos`` builds
#: inline, expressed as a spec so scenario matrices can fan out across
#: worker processes.
DEFAULT_CHAOS_WORKLOAD = dict(num_partitions=40, rmw_fraction=0.5, zipf_theta=0.5)


def chaos_workload_spec() -> WorkloadSpec:
    return WorkloadSpec.of("ycsb", **DEFAULT_CHAOS_WORKLOAD)


def defense_setup(defenses: str, workload):
    """Resolve a defense preset into ``(rpc_config, dynamast_weights)``.

    ``"fixed"`` is the pre-gray-failure baseline: the classic
    fixed-strike detector, one fixed RPC timeout, no hedging, and the
    paper's Equation-8 weights untouched. ``"adaptive"`` arms the full
    gray-failure defense stack: phi-accrual detection, per-destination
    adaptive deadlines, hedged reads, and a health-weighted remastering
    strategy (the workload's recommended weights plus a health
    penalty). ``workload`` supplies the base strategy weights; only
    DynaMast consumes them.
    """
    if defenses == "fixed":
        return RpcConfig(detector_policy="threshold"), None
    if defenses == "adaptive":
        rpc = RpcConfig(
            detector_policy="adaptive",
            adaptive_deadlines=True,
            hedged_reads=True,
        )
        weights = replace(
            workload.recommended_weights(), health=ADAPTIVE_HEALTH_WEIGHT
        )
        return rpc, weights
    raise ValueError(f"unknown defenses {defenses!r}; expected one of {DEFENSES}")


@dataclass(frozen=True)
class AvailabilityBucket:
    """One slice of the availability timeline."""

    start_ms: float
    commits_per_s: float
    aborts_per_s: float
    sites_up: int


@dataclass
class ChaosReport:
    """Everything a chaos run measured, ready to print or export."""

    system_name: str
    scenario: str
    duration_ms: float
    num_sites: int
    commits: int
    aborts_by_reason: Dict[str, int]
    buckets: List[AvailabilityBucket]
    #: (at_ms, kind, site) fault transitions, in order.
    fault_events: List[Tuple[float, str, int]]
    result: Optional[RunResult] = field(repr=False, default=None)

    # -- latency attribution (observed chaos runs only) ----------------------

    def attribution(self):
        """The run's :class:`~repro.obs.attribution.AttributionReport`.

        None unless the chaos run was observed (``run_chaos(..., obs=...)``).
        """
        if self.result is None or self.result.obs is None \
                or not self.result.obs.enabled:
            return None
        from repro.obs.attribution import AttributionReport

        return AttributionReport.from_result(self.result)

    # -- mastering re-convergence (ledger-observed chaos runs) ---------------

    def mastering_summary(
        self, threshold: float = 0.05, window_ms: float = 250.0
    ) -> Optional[Dict]:
        """Mastering metrics with per-disruption re-convergence.

        For a chaos run with a decision ledger attached
        (``run_chaos(..., ledger=DecisionLedger())`` or the CLI's
        ``repro chaos --masters``), returns the ledger's scalar summary
        plus a ``reconvergence`` list with one entry per fault
        transition: how many milliseconds after the event the windowed
        remaster rate settled back at or below ``threshold`` (None when
        it never did — e.g. the run ended mid-storm). A portable
        summary that only carries folded scalars gets an empty
        ``reconvergence`` list (the event-level series stayed in the
        worker). None when the run carried no ledger at all.
        """
        ledger = getattr(self.result, "ledger", None) if self.result else None
        if ledger is not None and ledger.enabled:
            summary = ledger.summary(threshold=threshold, window_ms=window_ms)
            reconvergence = [
                {
                    "at_ms": at_ms,
                    "kind": kind,
                    "site": site,
                    "reconvergence_ms": ledger.convergence_time(
                        after=at_ms, threshold=threshold, window_ms=window_ms
                    ),
                }
                for at_ms, kind, site in self.fault_events
            ]
            return {"summary": summary, "reconvergence": reconvergence}
        folded = getattr(self.result, "mastery", None) if self.result else None
        if folded:
            return {"summary": dict(folded), "reconvergence": []}
        return None

    def degraded_windows(self) -> List[Tuple[float, float]]:
        """``[crash, restart)`` windows during which any site was down."""
        windows: List[Tuple[float, float]] = []
        down = 0
        opened = 0.0
        for at_ms, kind, _site in self.fault_events:
            if kind == "restart":
                down -= 1
                if down == 0:
                    windows.append((opened, at_ms))
            else:
                if down == 0:
                    opened = at_ms
                down += 1
        if down > 0:
            windows.append((opened, self.duration_ms))
        return windows

    def dip_blame(self):
        """Attribute the availability dip: steady vs degraded budgets.

        Splits committed transactions by whether they began while a
        site was down and returns ``(steady_shares, degraded_shares,
        top_shifts)`` — the categories whose share grew most during the
        dip (e.g. lock inheritance at the crashed site's partitions vs
        rerouting/remastering cost). None for unobserved runs.
        """
        report = self.attribution()
        if report is None:
            return None
        from repro.obs.attribution import split_by_windows

        steady, degraded = split_by_windows(report, self.degraded_windows())
        shifts = sorted(
            ((category, degraded[category] - steady[category])
             for category in degraded),
            key=lambda item: -abs(item[1]),
        )
        return steady, degraded, shifts[:5]

    # -- availability summary ------------------------------------------------

    def steady_rate(self) -> float:
        """Median commit rate before the first fault transition."""
        horizon = self.fault_events[0][0] if self.fault_events else self.duration_ms
        rates = sorted(
            bucket.commits_per_s
            for bucket in self.buckets
            if bucket.start_ms < horizon
        )
        if not rates:
            return 0.0
        return rates[len(rates) // 2]

    def min_rate(self) -> float:
        return min((bucket.commits_per_s for bucket in self.buckets), default=0.0)

    def final_rate(self) -> float:
        return self.buckets[-1].commits_per_s if self.buckets else 0.0

    def recovered(self, fraction: float = 0.5) -> bool:
        """Whether the run's last bucket got back to ``fraction`` of steady."""
        return self.final_rate() >= fraction * self.steady_rate()

    # -- export --------------------------------------------------------------

    def to_csv(self) -> str:
        lines = ["start_ms,commits_per_s,aborts_per_s,sites_up"]
        for bucket in self.buckets:
            lines.append(
                f"{bucket.start_ms:g},{bucket.commits_per_s:g},"
                f"{bucket.aborts_per_s:g},{bucket.sites_up}"
            )
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv())


def _rate_series(times, bucket_ms: float, start: float, end: float) -> List[float]:
    """Events-per-second per bucket over ``[start, end)``."""
    buckets = max(1, math.ceil((end - start) / bucket_ms))
    counts = [0] * buckets
    for time in times:
        if start <= time < end:
            counts[int((time - start) // bucket_ms)] += 1
    return [count / (bucket_ms / 1000.0) for count in counts]


def run_chaos(
    system_name: str,
    scenario: str,
    *,
    num_sites: int = 3,
    num_clients: int = 16,
    duration_ms: float = 10_000.0,
    warmup_ms: float = 0.0,
    bucket_ms: float = 250.0,
    seed: int = 0,
    workload=None,
    plan: Optional[FaultPlan] = None,
    obs=None,
    ledger=None,
    slo=None,
    defenses: str = "fixed",
) -> ChaosReport:
    """Run ``scenario`` against ``system_name`` and report availability.

    ``plan`` overrides the named scenario with an explicit schedule (the
    ``scenario`` string then only labels the report). The default
    workload is contended YCSB (50% RMW, moderate skew) — enough write
    conflicts that the fault handling actually gets exercised.
    Passing ``obs`` (an :class:`~repro.obs.Observability`) traces the
    run so :meth:`ChaosReport.dip_blame` can attribute the availability
    dip; passing ``ledger`` (a :class:`~repro.obs.mastery.
    DecisionLedger`) records remaster decisions so
    :meth:`ChaosReport.mastering_summary` can report re-convergence
    after each fault transition; passing ``slo`` (an
    :class:`~repro.obs.slo.SloEngine`) evaluates SLO and invariant
    monitors over the run and correlates incidents against the
    scenario's injected fault windows. ``defenses`` selects the
    gray-failure defense preset (see :func:`defense_setup`).
    """
    if plan is None:
        plan = build_scenario(scenario, num_sites=num_sites, duration_ms=duration_ms)
    if workload is None:
        workload = YCSBWorkload(
            YCSBConfig(num_partitions=40, rmw_fraction=0.5, zipf_theta=0.5)
        )
    rpc, weights = defense_setup(defenses, workload)
    result = run_benchmark(
        system_name,
        workload,
        num_clients=num_clients,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        cluster_config=ClusterConfig(num_sites=num_sites, rpc=rpc),
        weights=weights,
        seed=seed,
        fault_plan=plan,
        obs=obs,
        ledger=ledger,
        slo=slo,
    )
    return report_from_result(
        result, scenario,
        num_sites=num_sites, duration_ms=duration_ms,
        warmup_ms=warmup_ms, bucket_ms=bucket_ms,
    )


def report_from_result(
    result,
    scenario: str,
    *,
    num_sites: int,
    duration_ms: float,
    warmup_ms: float = 0.0,
    bucket_ms: float = 250.0,
) -> ChaosReport:
    """Distill a run (live ``RunResult`` or portable ``RunSummary``)
    into a :class:`ChaosReport`.

    Everything the report needs — commit/abort completion times, fault
    transitions, abort reasons — survives the portable form, so chaos
    matrices can be bucketed in the parent after worker processes ran
    the simulations.
    """
    commit_rates = _rate_series(
        result.metrics.commit_times, bucket_ms, warmup_ms, duration_ms
    )
    abort_rates = _rate_series(
        result.metrics.abort_times, bucket_ms, warmup_ms, duration_ms
    )
    events = [(event.at_ms, event.kind, event.site) for event in result.fault_events]

    buckets = []
    for index, (commit_rate, abort_rate) in enumerate(zip(commit_rates, abort_rates)):
        start = warmup_ms + index * bucket_ms
        up = num_sites
        for at_ms, kind, _site in events:
            if at_ms >= start + bucket_ms:
                break
            up += 1 if kind == "restart" else -1
        buckets.append(AvailabilityBucket(start, commit_rate, abort_rate, up))

    return ChaosReport(
        system_name=result.system_name,
        scenario=scenario,
        duration_ms=duration_ms,
        num_sites=num_sites,
        commits=result.metrics.commits,
        aborts_by_reason=dict(result.metrics.aborts_by_reason),
        buckets=buckets,
        fault_events=events,
        result=result,
    )


def run_chaos_matrix(
    systems: Sequence[str],
    scenarios: Sequence[str],
    *,
    jobs: int = 1,
    num_sites: int = 3,
    num_clients: int = 16,
    duration_ms: float = 10_000.0,
    warmup_ms: float = 0.0,
    bucket_ms: float = 250.0,
    seed: int = 0,
    workload: Optional[WorkloadSpec] = None,
    mastery: bool = False,
    slo: bool = False,
    defenses: str = "fixed",
) -> "Dict[Tuple[str, str], ChaosReport]":
    """Fan a (system x scenario) chaos matrix over worker processes.

    Every cell is one deterministic faulted run; the matrix order
    (systems outer, scenarios inner) is preserved in the returned
    mapping regardless of completion order, and each cell's simulated
    outcome is bit-identical to ``run_chaos`` of the same cell
    (``tests/test_parallel_parity.py`` pins this). ``jobs=1`` runs the
    same specs serially in-process. ``defenses`` selects the
    gray-failure defense preset for every cell (see
    :func:`defense_setup`); the resolved RPC config and strategy
    weights travel to the workers as plain spec data. ``slo=True``
    evaluates the default SLO and invariant monitors in every cell;
    the folded verdict rides back on each summary's ``slo`` dict.
    """
    workload = workload or chaos_workload_spec()
    rpc, weights = defense_setup(defenses, workload.build())
    combos = [(system, scenario) for system in systems for scenario in scenarios]
    specs = [
        RunSpec(
            system=system,
            workload=workload,
            num_clients=num_clients,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            cluster=ClusterConfig(num_sites=num_sites, rpc=rpc),
            weights=weights,
            seed=seed,
            fault_scenario=scenario,
            mastery=mastery,
            slo=slo,
            label=f"chaos:{system}/{scenario}",
        )
        for system, scenario in combos
    ]
    summaries = execute_specs(specs, jobs=jobs)
    return {
        combo: report_from_result(
            summary, combo[1],
            num_sites=num_sites, duration_ms=duration_ms,
            warmup_ms=warmup_ms, bucket_ms=bucket_ms,
        )
        for combo, summary in zip(combos, summaries)
    }
