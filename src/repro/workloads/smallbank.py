"""SmallBank: short banking transactions (paper Appendix F).

Users have a checking and a savings account. The mix stresses the
transaction *protocol* rather than transaction logic:

* 45% single-row updates (DepositChecking, TransactSavings,
  WriteCheck) touching one user's account;
* 40% two-row updates (SendPayment, Amalgamate) atomically moving
  money between two users — the transactions that trigger remastering
  in DynaMast, 2PC in the partitioned systems, and shipping in LEAP;
* 15% Balance — a read-only sum of one user's two accounts.

The second user of a two-row update is drawn from partitions near the
first (the same Bernoulli-neighbour scheme as YCSB), producing
learnable co-access correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.transactions import Key, Transaction
from repro.workloads.base import ClientTurn, Workload


@dataclass
class SmallBankConfig:
    """Scaled SmallBank parameters."""

    users: int = 10000
    users_per_partition: int = 100
    single_update_weight: float = 0.45
    two_row_update_weight: float = 0.40
    balance_weight: float = 0.15
    #: Bernoulli neighbour selection for the payment counterparty.
    neighbour_trials: int = 5
    neighbour_p: float = 0.5
    #: Fraction of account picks drawn from the hotspot. The paper's
    #: SmallBank experiments do not mention skew, so the default is
    #: uniform; setting this > 0 enables the classic SmallBank hotspot
    #: (used by the ablation benchmarks).
    hotspot_fraction: float = 0.0
    #: Number of hot accounts (the first accounts of the key space).
    hotspot_accounts: int = 100

    @property
    def num_partitions(self) -> int:
        return -(-self.users // self.users_per_partition)


@dataclass
class _ClientState:
    client_id: int


class SmallBankWorkload(Workload):
    """Generator for the three SmallBank transaction classes."""

    name = "smallbank"

    #: Both of a user's accounts map to the same partition, so
    #: single-user transactions are always single-partition.
    TABLES = ("checking", "savings")

    def __init__(self, config: Optional[SmallBankConfig] = None):
        self.config = config or SmallBankConfig()
        self._scheme = PartitionScheme(
            lambda key: key[1] // self.config.users_per_partition,
            self.config.num_partitions,
        )

    @property
    def scheme(self) -> PartitionScheme:
        return self._scheme

    def recommended_weights(self) -> StrategyWeights:
        return StrategyWeights.for_smallbank()

    def new_client_state(self, client_id: int, rng) -> _ClientState:
        return _ClientState(client_id=client_id)

    def _draw_user(self, rng) -> int:
        """An account: from the hotspot with ``hotspot_fraction``,
        uniform otherwise."""
        cfg = self.config
        if cfg.hotspot_accounts > 0 and rng.random() < cfg.hotspot_fraction:
            return rng.randrange(min(cfg.hotspot_accounts, cfg.users))
        return rng.randrange(cfg.users)

    def _counterparty(self, user: int, rng) -> int:
        """A second user: hot with ``hotspot_fraction``, otherwise from
        a partition near the first user's."""
        cfg = self.config
        if cfg.hotspot_accounts > 0 and rng.random() < cfg.hotspot_fraction:
            other = rng.randrange(min(cfg.hotspot_accounts, cfg.users))
            if other == user:
                other = (other + 1) % cfg.users
            return other
        successes = sum(
            rng.random() < cfg.neighbour_p for _ in range(cfg.neighbour_trials)
        )
        offset = successes - (cfg.neighbour_trials + 1) // 2
        partition = (user // cfg.users_per_partition + offset) % cfg.num_partitions
        start = partition * cfg.users_per_partition
        limit = min(cfg.users_per_partition, cfg.users - start)
        other = start + rng.randrange(max(1, limit))
        if other == user:
            other = (other + 1) % cfg.users
        return other

    def next_transaction(self, state: _ClientState, rng, now: float) -> ClientTurn:
        cfg = self.config
        user = self._draw_user(rng)
        point = rng.random()
        if point < cfg.single_update_weight:
            table = self.TABLES[rng.randrange(2)]
            txn = Transaction(
                "single_update",
                state.client_id,
                write_set=((table, user),),
                read_set=((table, user),),
            )
        elif point < cfg.single_update_weight + cfg.two_row_update_weight:
            other = self._counterparty(user, rng)
            keys = (("checking", user), ("checking", other))
            txn = Transaction(
                "two_row_update",
                state.client_id,
                write_set=keys,
                read_set=keys,
            )
        else:
            keys = (("checking", user), ("savings", user))
            txn = Transaction("balance", state.client_id, read_set=keys)
        return ClientTurn(txn)

    def initial_records(self) -> Iterable[Tuple[Key, Any]]:
        for user in range(self.config.users):
            yield ("checking", user), 1000
            yield ("savings", user), 1000

    def client_pool(self, num_clients: int):
        """SmallBank clients carry no generator state beyond their id
        (``new_client_state`` consumes no RNG), so the open-loop pool
        is stateless — zero bytes per modeled client."""
        from repro.workloads.openloop import StatelessClientPool

        return StatelessClientPool(self, num_clients, _ClientState)
