"""The paper's modified YCSB workload (§VI-A.2, Appendix C).

The key space is divided into partitions of 100 contiguous keys.
Partitions are correlated in ranges through a *partition order*: the
neighbourhood of a partition is defined in order space, so shuffling
the order (the adaptivity experiment, §VI-B5) re-randomizes which
partitions are co-accessed without changing the key space.

Transactions:

* **Scan** — a base partition drawn from the access distribution, then
  all keys of the next ``k`` partitions in order space, ``k`` uniform
  in [2, 10] (200-1000 keys). Read-only.
* **RMW** — three keys: one from the base partition and two from
  neighbour partitions selected by offsetting the base with
  ``Binomial(5, 0.5) - 3`` (three successes = the base partition, one
  success = two partitions before, five = two after). Reads and writes
  all three keys.

Clients exhibit access locality: a client draws an affinity base
partition and issues ``affinity_txns`` transactions around it before
being replaced by a new client (fresh session, new affinity base).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from itertools import chain
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.sim.rand import ZipfGenerator
from repro.transactions import Key, Transaction
from repro.workloads.base import ClientTurn, Workload

TABLE = "usertable"


@dataclass
class YCSBConfig:
    """Knobs for the modified YCSB workload."""

    #: Number of 100-key partitions (2000 -> 200 000 keys, the scaled
    #: stand-in for the paper's 5 GB database; large enough that client
    #: affinity regions cover only a fraction of the key space, as in
    #: the paper's setup).
    num_partitions: int = 2000
    keys_per_partition: int = 100
    #: Fraction of transactions that are RMWs (the rest are scans).
    rmw_fraction: float = 0.5
    #: Zipfian skew over base partitions; 0 = uniform (paper: 0.75).
    zipf_theta: float = 0.0
    #: Bernoulli neighbour-selection trials and success probability.
    neighbour_trials: int = 5
    neighbour_p: float = 0.5
    #: Scan length bounds, in partitions.
    scan_min_partitions: int = 2
    scan_max_partitions: int = 10
    #: Transactions a client issues against its affinity region before
    #: being replaced. The paper uses 1000 (~1 second of that client's
    #: activity); at this simulation's per-client rate ~300 txns is the
    #: same one second. The adaptivity experiment drops this to 25.
    affinity_txns: int = 300
    #: Offset range for a client's per-transaction base partition
    #: around its affinity base (keeps locality without pinning).
    affinity_spread: int = 2


@dataclass
class _ClientState:
    client_id: int
    affinity_base: int
    remaining: int


class YCSBWorkload(Workload):
    """The modified YCSB generator."""

    name = "ycsb"

    def __init__(self, config: Optional[YCSBConfig] = None):
        self.config = config or YCSBConfig()
        cfg = self.config
        self._scheme = PartitionScheme(
            lambda key: key[1] // cfg.keys_per_partition, cfg.num_partitions
        )
        #: order[i] = the partition at position i of correlation space.
        self.order: List[int] = list(range(cfg.num_partitions))
        #: position[p] = where partition p sits in correlation space.
        self.position: List[int] = list(range(cfg.num_partitions))
        self._zipf: Optional[ZipfGenerator] = None
        #: Lazily built per-partition scan-key tuples. A scan touches
        #: every key of each scanned partition, and those tuples never
        #: change — rebuilding them per scan was the single hottest
        #: allocation site in profiles (~8M key tuples per short run).
        self._scan_blocks: List[Optional[Tuple[Key, ...]]] = [None] * cfg.num_partitions

    @property
    def scheme(self) -> PartitionScheme:
        return self._scheme

    def recommended_weights(self) -> StrategyWeights:
        return StrategyWeights.for_ycsb()

    # -- correlation structure -------------------------------------------------

    def shuffle_correlations(self, rng) -> None:
        """Re-randomize partition neighbourhoods (adaptivity experiment).

        After the shuffle, the same neighbour-offset algorithm produces
        entirely different co-access patterns, so learned statistics
        become stale and DynaMast must re-learn placements.
        """
        rng.shuffle(self.order)
        for index, partition in enumerate(self.order):
            self.position[partition] = index

    def _neighbour(self, base: int, offset: int) -> int:
        """The partition ``offset`` steps from ``base`` in order space."""
        index = (self.position[base] + offset) % self.config.num_partitions
        return self.order[index]

    def _draw_base(self, rng) -> int:
        cfg = self.config
        if cfg.zipf_theta > 0.0:
            if self._zipf is None or self._zipf._rng is not rng:
                self._zipf = ZipfGenerator(cfg.num_partitions, cfg.zipf_theta, rng)
            return self._zipf.sample()
        return rng.randrange(cfg.num_partitions)

    def _key_in(self, partition: int, rng) -> Key:
        cfg = self.config
        start = partition * cfg.keys_per_partition
        return (TABLE, start + rng.randrange(cfg.keys_per_partition))

    # -- workload interface -----------------------------------------------------

    def new_client_state(self, client_id: int, rng) -> _ClientState:
        return _ClientState(
            client_id=client_id,
            affinity_base=self._draw_base(rng),
            remaining=self.config.affinity_txns,
        )

    def next_transaction(self, state: _ClientState, rng, now: float) -> ClientTurn:
        cfg = self.config
        reset = False
        if state.remaining <= 0:
            # The client departs; a new one takes its place.
            state.affinity_base = self._draw_base(rng)
            state.remaining = cfg.affinity_txns
            reset = True
        state.remaining -= 1

        spread = rng.randint(-cfg.affinity_spread, cfg.affinity_spread)
        base = self._neighbour(state.affinity_base, spread)
        if rng.random() < cfg.rmw_fraction:
            txn = self._make_rmw(base, state.client_id, rng)
        else:
            txn = self._make_scan(base, state.client_id, rng)
        return ClientTurn(txn, reset_session=reset)

    def _make_rmw(self, base: int, client_id: int, rng) -> Transaction:
        cfg = self.config
        random = rng.random
        neighbour_p = cfg.neighbour_p
        trials = cfg.neighbour_trials
        centre = (trials + 1) // 2
        partitions = [base]
        for _ in range(2):
            successes = 0
            for _ in range(trials):
                if random() < neighbour_p:
                    successes += 1
            partitions.append(self._neighbour(base, successes - centre))
        keys = tuple(self._key_in(partition, rng) for partition in partitions)
        return Transaction(
            "rmw", client_id, write_set=keys, read_set=keys
        )

    def _scan_block(self, partition: int) -> Tuple[Key, ...]:
        block = self._scan_blocks[partition]
        if block is None:
            start = partition * self.config.keys_per_partition
            block = self._scan_blocks[partition] = tuple(
                (TABLE, start + offset)
                for offset in range(self.config.keys_per_partition)
            )
        return block

    def _make_scan(self, base: int, client_id: int, rng) -> Transaction:
        cfg = self.config
        length = rng.randint(cfg.scan_min_partitions, cfg.scan_max_partitions)
        # The per-partition blocks are pre-built tuples; chaining them
        # into one tuple skips the per-key list appends plus the full
        # copy of tuple(list) (scan sets are the largest key sets made).
        neighbour = self._neighbour
        scan_block = self._scan_block
        if length == 1:
            keys = scan_block(neighbour(base, 0))
        else:
            keys = tuple(chain.from_iterable(
                scan_block(neighbour(base, step)) for step in range(length)
            ))
        return Transaction("scan", client_id, scan_set=keys)

    def initial_records(self) -> Iterable[Tuple[Key, Any]]:
        total = self.config.num_partitions * self.config.keys_per_partition
        return (((TABLE, key), 0) for key in range(total))

    def client_pool(self, num_clients: int) -> "YCSBClientPool":
        return YCSBClientPool(self, num_clients)


class YCSBClientPool:
    """Array-backed YCSB client state: 16 bytes per modeled client.

    Replaces one :class:`_ClientState` object (~150 bytes + GC
    pressure) per client with two machine words — ``affinity_base``
    (signed, -1 = client never seen) and ``remaining`` — so 100k
    modeled clients cost ~1.6 MB instead of tens of MB of objects.

    Equivalence contract (pinned by ``tests/test_openloop.py``): the
    draw sequence per turn is identical to ``new_client_state`` (first
    touch: one ``_draw_base``) + ``next_transaction`` (departure
    re-draw, affinity-spread randint, mix Bernoulli, then the RMW/scan
    key draws), so pool-driven generation is bit-identical to
    individually-modeled clients served in the same order.
    """

    def __init__(self, workload: YCSBWorkload, num_clients: int):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        self.workload = workload
        self.num_clients = num_clients
        self._affinity = array("q", bytes(8 * num_clients))
        for index in range(num_clients):
            self._affinity[index] = -1
        self._remaining = array("q", bytes(8 * num_clients))

    def turn(self, client_id: int, rng, now: float) -> ClientTurn:
        w = self.workload
        cfg = w.config
        reset = False
        if self._affinity[client_id] < 0:
            # First arrival: the lazy equivalent of new_client_state.
            self._affinity[client_id] = w._draw_base(rng)
            self._remaining[client_id] = cfg.affinity_txns
        if self._remaining[client_id] <= 0:
            # The client departs; a new one takes its place.
            self._affinity[client_id] = w._draw_base(rng)
            self._remaining[client_id] = cfg.affinity_txns
            reset = True
        self._remaining[client_id] -= 1

        spread = rng.randint(-cfg.affinity_spread, cfg.affinity_spread)
        base = w._neighbour(self._affinity[client_id], spread)
        if rng.random() < cfg.rmw_fraction:
            txn = w._make_rmw(base, client_id, rng)
        else:
            txn = w._make_scan(base, client_id, rng)
        return ClientTurn(txn, reset_session=reset)
