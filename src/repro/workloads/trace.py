"""Workload trace recording and replay.

The live generators draw from a random stream shared by all simulated
clients, so the exact per-client transaction sequence depends on how
the systems under test interleave them — statistically identical, but
not transaction-for-transaction identical across systems. For
experiments that want *exactly* the same input everywhere (the
strictest apples-to-apples), a trace can be pre-generated once per
client and replayed against every system.

Transactions are re-instantiated on each replay (fresh txn ids and
timing buckets); the key sets, types and session boundaries are
preserved bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.transactions import Key, Transaction
from repro.workloads.base import ClientTurn, Workload


@dataclass(frozen=True)
class TraceEntry:
    """One recorded client step."""

    txn_type: str
    write_set: Tuple[Key, ...]
    read_set: Tuple[Key, ...]
    scan_set: Tuple[Key, ...]
    extra_cpu_ms: float
    reset_session: bool


def record_trace(
    workload: Workload,
    num_clients: int,
    txns_per_client: int,
    seed: int = 0,
    time_step_ms: float = 1.0,
) -> "WorkloadTrace":
    """Pre-generate ``txns_per_client`` steps for each client.

    Each client gets its own derived random stream, so the recorded
    sequences are independent of any interleaving.
    """
    per_client: List[List[TraceEntry]] = []
    for client_id in range(num_clients):
        rng = random.Random((seed << 16) ^ client_id)
        state = workload.new_client_state(client_id, rng)
        entries: List[TraceEntry] = []
        now = 0.0
        for _ in range(txns_per_client):
            turn = workload.next_transaction(state, rng, now)
            txn = turn.txn
            entries.append(
                TraceEntry(
                    txn_type=txn.txn_type,
                    write_set=txn.write_set,
                    read_set=txn.read_set,
                    scan_set=txn.scan_set,
                    extra_cpu_ms=txn.extra_cpu_ms,
                    reset_session=turn.reset_session,
                )
            )
            now += time_step_ms
        per_client.append(entries)
    return WorkloadTrace(workload, per_client)


@dataclass
class _ReplayState:
    client_id: int
    position: int = 0


class WorkloadTrace(Workload):
    """A recorded trace, replayable as a workload.

    Each client replays its recorded sequence in order; when a client
    exhausts its trace, the sequence wraps around (with a session reset
    at the wrap, mimicking client replacement).
    """

    name = "trace"

    def __init__(self, source: Workload, per_client: List[List[TraceEntry]]):
        if not per_client or not all(per_client):
            raise ValueError("a trace needs at least one entry per client")
        self._source = source
        self._per_client = per_client
        self.name = f"trace({source.name})"

    @property
    def scheme(self) -> PartitionScheme:
        return self._source.scheme

    def fixed_placement(self, num_sites: int) -> Dict[int, int]:
        return self._source.fixed_placement(num_sites)

    def placement_unit_of(self, key: Key) -> Optional[int]:
        return self._source.placement_unit_of(key)

    def recommended_weights(self) -> StrategyWeights:
        return self._source.recommended_weights()

    def initial_records(self):
        return self._source.initial_records()

    @property
    def num_clients(self) -> int:
        return len(self._per_client)

    def entries_for(self, client_id: int) -> List[TraceEntry]:
        return self._per_client[client_id % len(self._per_client)]

    def new_client_state(self, client_id: int, rng) -> _ReplayState:
        return _ReplayState(client_id=client_id)

    def next_transaction(self, state: _ReplayState, rng, now: float) -> ClientTurn:
        entries = self.entries_for(state.client_id)
        wrapped = state.position >= len(entries)
        if wrapped:
            state.position = 0
        entry = entries[state.position]
        state.position += 1
        txn = Transaction(
            entry.txn_type,
            state.client_id,
            write_set=entry.write_set,
            read_set=entry.read_set,
            scan_set=entry.scan_set,
            extra_cpu_ms=entry.extra_cpu_ms,
        )
        return ClientTurn(txn, reset_session=entry.reset_session or wrapped)
