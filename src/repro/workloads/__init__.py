"""Benchmark workloads (paper §VI-A.2, Appendices C and F).

* :class:`~repro.workloads.ycsb.YCSBWorkload` — the paper's modified
  YCSB: 100-key partitions, multi-partition scans (200–1000 keys),
  3-key read-modify-writes with Bernoulli-neighbour partition
  selection, optional Zipfian skew, client affinity periods, and a
  shuffled-correlation mode for the adaptivity experiment;
* :class:`~repro.workloads.tpcc.TPCCWorkload` — New-Order, Payment and
  Stock-Level with configurable cross-warehouse fractions;
* :class:`~repro.workloads.smallbank.SmallBankWorkload` — short
  banking transactions (45% single-row updates, 40% two-row updates,
  15% balance reads).
"""

from repro.workloads.base import ClientTurn, Workload
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workloads.trace import WorkloadTrace, record_trace
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "ClientTurn",
    "SmallBankConfig",
    "SmallBankWorkload",
    "WorkloadTrace",
    "record_trace",
    "TPCCConfig",
    "TPCCWorkload",
    "Workload",
    "YCSBConfig",
    "YCSBWorkload",
]
