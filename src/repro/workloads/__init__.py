"""Benchmark workloads (paper §VI-A.2, Appendices C and F).

* :class:`~repro.workloads.ycsb.YCSBWorkload` — the paper's modified
  YCSB: 100-key partitions, multi-partition scans (200–1000 keys),
  3-key read-modify-writes with Bernoulli-neighbour partition
  selection, optional Zipfian skew, client affinity periods, and a
  shuffled-correlation mode for the adaptivity experiment;
* :class:`~repro.workloads.tpcc.TPCCWorkload` — New-Order, Payment and
  Stock-Level with configurable cross-warehouse fractions;
* :class:`~repro.workloads.smallbank.SmallBankWorkload` — short
  banking transactions (45% single-row updates, 40% two-row updates,
  15% balance reads).
"""

from repro.workloads.base import ClientTurn, Workload
from repro.workloads.openloop import (
    ClientPool,
    LazyClientPool,
    OpenLoopEngine,
    OpenLoopSpec,
    StatelessClientPool,
)
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workloads.trace import WorkloadTrace, record_trace
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.ycsb import YCSBClientPool, YCSBConfig, YCSBWorkload

#: Registry of buildable workloads: name -> (config class, workload
#: class). This is what lets a :class:`~repro.bench.parallel.RunSpec`
#: describe a workload as pure data (name + config kwargs) and have a
#: worker process rebuild it — the spawn-safety contract
#: (CONTRIBUTING.md) requires every spec-referenced constructor to be
#: module-level like these.
WORKLOAD_REGISTRY = {
    "ycsb": (YCSBConfig, YCSBWorkload),
    "tpcc": (TPCCConfig, TPCCWorkload),
    "smallbank": (SmallBankConfig, SmallBankWorkload),
}


def build_workload(name: str, **params) -> Workload:
    """Instantiate a fresh registered workload from plain parameters.

    Raises ``ValueError`` naming the unknown workload (and the known
    ones) so multi-process drivers surface a clean, attributable error
    instead of an opaque worker failure.
    """
    try:
        config_cls, workload_cls = WORKLOAD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOAD_REGISTRY))
        raise ValueError(
            f"unknown workload {name!r}; registered workloads: {known}"
        ) from None
    return workload_cls(config_cls(**params))


__all__ = [
    "WORKLOAD_REGISTRY",
    "build_workload",
    "ClientPool",
    "ClientTurn",
    "LazyClientPool",
    "OpenLoopEngine",
    "OpenLoopSpec",
    "SmallBankConfig",
    "SmallBankWorkload",
    "StatelessClientPool",
    "WorkloadTrace",
    "record_trace",
    "TPCCConfig",
    "TPCCWorkload",
    "Workload",
    "YCSBClientPool",
    "YCSBConfig",
    "YCSBWorkload",
]
