"""Open-loop traffic: aggregated client pools behind admission queues.

The closed-loop harness (`repro.bench.harness._client_loop`) runs one
generator process per client, each issuing its next transaction only
after the previous one completes. That shape cannot reach the regime
the north star cares about — heavy traffic from very large user
populations — for two reasons:

1. **Coordinated omission.** A closed-loop client under a slow system
   simply offers less load, so saturation never shows up as queueing or
   goodput collapse, only as mysteriously-lower throughput.
2. **Memory.** One generator process + one state object per client
   caps the modeled population at thousands, not hundreds of thousands.

This module replaces both halves:

* **Arrival side** — one arrival process per run samples a
  nonhomogeneous Poisson stream from a rate curve
  (:mod:`repro.sim.arrivals`) on the dedicated ``arrivals`` RNG stream,
  assigns each arrival to a modeled client, generates the transaction
  *immediately* (so the workload stream's draw sequence is independent
  of queue state), and offers it to the client's home-site
  :class:`~repro.sim.resources.AdmissionQueue`.
* **Client side** — a :class:`ClientPool` collapses per-client
  generator state into array-backed structures (one int per client for
  YCSB, zero bytes per client for SmallBank) with the **equivalence
  contract**: ``pool.turn(cid, rng, now)`` must consume exactly the
  RNG draws that ``new_client_state(cid, rng)`` (on first touch) +
  ``next_transaction(state, rng, now)`` would, so a pool-driven
  generation sequence is bit-identical to individually-modeled clients
  served in the same order (pinned by ``tests/test_openloop.py``).
* **Service side** — ``admission_concurrency`` dispatcher slots per
  site drain the queue FIFO and run transactions through the system
  under test. Latency is measured from *arrival* (enqueue), not from
  dispatch, so admission-queue wait is inside the reported latency —
  the open-loop answer to coordinated omission.

Sessions: a dispatcher slot models a server-side worker from a
connection pool. It keeps a live :class:`~repro.systems.base.Session`
only across consecutive turns of the same modeled client (and drops it
on ``reset_session``); any client switch starts a fresh session. This
is a deliberate modeling choice — with 100k clients multiplexed over a
few slots per site, per-client session continuity would require
per-client version vectors again, exactly the memory shape the pool
exists to avoid. docs/SCALE.md discusses the consequence (slightly
more conservative freshness waits than per-client sessions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.arrivals import arrival_times, build_curve, scale_curve_params
from repro.sim.rand import ARRIVALS_STREAM, WORKLOAD_STREAM
from repro.sim.resources import AdmissionQueue


@dataclass(frozen=True)
class OpenLoopSpec:
    """Picklable description of an open-loop traffic configuration.

    Pure data, like :class:`~repro.bench.parallel.WorkloadSpec`: the
    curve is named (resolved through
    :data:`repro.sim.arrivals.CURVE_REGISTRY`) and its parameters are a
    sorted tuple of pairs, so the spec is hashable, picklable, and
    rebuilds identically in a spawn worker.
    """

    #: Registered curve name (constant / ramp / diurnal / bursty).
    curve: str = "constant"
    #: Curve constructor kwargs as a sorted tuple of (name, value).
    curve_params: Tuple[Tuple[str, Any], ...] = ()
    #: Size of the modeled user population. Arrivals are attributed to
    #: clients uniformly; each client's home site is ``cid % sites``.
    modeled_clients: int = 1000
    #: Dispatcher slots per site draining the admission queue.
    admission_concurrency: int = 4
    #: Admission-queue bound per site; 0 = unbounded (no shedding).
    queue_capacity: int = 0

    def __post_init__(self):
        if self.modeled_clients < 1:
            raise ValueError(
                f"modeled_clients must be >= 1, got {self.modeled_clients}"
            )
        if self.admission_concurrency < 1:
            raise ValueError(
                f"admission_concurrency must be >= 1, got {self.admission_concurrency}"
            )
        if self.queue_capacity < 0:
            raise ValueError(
                f"queue_capacity must be >= 0, got {self.queue_capacity}"
            )

    @classmethod
    def of(
        cls,
        curve: str = "constant",
        *,
        modeled_clients: int = 1000,
        admission_concurrency: int = 4,
        queue_capacity: int = 0,
        **curve_params,
    ) -> "OpenLoopSpec":
        """Build a spec with curve parameters given as plain kwargs."""
        return cls(
            curve=curve,
            curve_params=tuple(sorted(curve_params.items())),
            modeled_clients=modeled_clients,
            admission_concurrency=admission_concurrency,
            queue_capacity=queue_capacity,
        )

    def build_curve(self):
        """Instantiate the named arrival curve (validates parameters)."""
        return build_curve(self.curve, **dict(self.curve_params))

    def scaled(self, multiplier: float) -> "OpenLoopSpec":
        """The same spec with every ``*_tps`` rate scaled — one rung of
        a rate ladder (see :mod:`repro.bench.scale`)."""
        return replace(
            self, curve_params=scale_curve_params(self.curve_params, multiplier)
        )

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.curve_params)
        return (
            f"{self.curve}({params}) x {self.modeled_clients} clients, "
            f"{self.admission_concurrency} slots/site"
            + (f", queue<={self.queue_capacity}" if self.queue_capacity else "")
        )


class ClientPool:
    """Aggregated per-client generator state for ``num_clients`` users.

    The memory contract: a pool may keep at most O(1) machine words per
    client (array-backed scalars), never per-client Python objects —
    that is what lets 100k+ modeled clients fit alongside multi-million
    key tables (CONTRIBUTING.md, "Memory-lean workload state").

    The equivalence contract: ``turn(cid, rng, now)`` consumes exactly
    the same RNG draws as ``workload.new_client_state(cid, rng)`` on
    the client's first turn followed by ``workload.next_transaction``
    on every turn. Hence driving clients through a pool in some arrival
    order produces the same transactions as keeping one state object
    per client and serving them in that order.
    """

    def __init__(self, workload, num_clients: int):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        self.workload = workload
        self.num_clients = num_clients

    def turn(self, client_id: int, rng, now: float):
        """The client's next :class:`~repro.workloads.base.ClientTurn`."""
        raise NotImplementedError


class LazyClientPool(ClientPool):
    """Fallback pool: real per-client state objects, created lazily.

    Correct for every workload (it literally calls
    ``new_client_state`` / ``next_transaction``) but not memory-lean —
    one state object per *touched* client. Workloads that matter at
    scale override :meth:`~repro.workloads.base.Workload.client_pool`
    with an array-backed pool (YCSB) or a stateless one (SmallBank);
    this fallback keeps the rest (TPC-C) runnable open-loop at moderate
    populations.
    """

    def __init__(self, workload, num_clients: int):
        super().__init__(workload, num_clients)
        self._states: List[Any] = [None] * num_clients

    def turn(self, client_id: int, rng, now: float):
        state = self._states[client_id]
        if state is None:
            state = self._states[client_id] = self.workload.new_client_state(
                client_id, rng
            )
        return self.workload.next_transaction(state, rng, now)


class StatelessClientPool(ClientPool):
    """Pool for workloads whose client state is just the client id.

    ``new_client_state`` must consume no RNG and its state must carry
    nothing but ``client_id`` (SmallBank). Zero bytes per client.
    """

    def __init__(self, workload, num_clients: int, state_cls):
        super().__init__(workload, num_clients)
        self._state_cls = state_cls

    def turn(self, client_id: int, rng, now: float):
        return self.workload.next_transaction(self._state_cls(client_id), rng, now)


class OpenLoopEngine:
    """Wires arrivals → admission queues → dispatcher slots for one run.

    Built and installed by :func:`repro.bench.harness.run_benchmark`
    when a :class:`OpenLoopSpec` is passed; owns all open-loop state so
    the harness only has to fold :meth:`counters` into the metrics at
    run end.
    """

    def __init__(self, system, workload, spec: OpenLoopSpec, metrics,
                 warmup_ms: float, obs):
        self.system = system
        self.workload = workload
        self.spec = spec
        self.metrics = metrics
        self.warmup_ms = warmup_ms
        self.obs = obs
        self.env = system.env
        self.num_sites = system.config.num_sites
        self.queues: List[AdmissionQueue] = [
            AdmissionQueue(self.env, spec.queue_capacity)
            for _ in range(self.num_sites)
        ]
        self.pool: ClientPool = workload.client_pool(spec.modeled_clients)
        #: Arrivals whose arrival instant fell after warmup (the
        #: denominator of the recorded offered rate).
        self.offered_recorded = 0
        #: Transactions finished by a dispatcher (any outcome).
        self.completed = 0
        #: Finished transactions that arrived after warmup.
        self.completed_recorded = 0
        #: Transactions currently inside ``system.submit``.
        self.in_flight = 0

    def install(self, duration_ms: float) -> None:
        """Spawn the arrival process and all dispatcher slots."""
        self.env.process(self._arrival_loop(duration_ms))
        for site in range(self.num_sites):
            for _slot in range(self.spec.admission_concurrency):
                self.env.process(self._dispatcher(site))

    def attach_probes(self, sampler) -> None:
        """Register per-site admission depth/shed timeline probes.

        Observed runs sample these alongside the standard cluster
        probes, turning the end-of-run aggregate counters into the
        *time series* the SLO dashboard and saturation analyses need.
        Probes close over the queue objects and read pure state, so an
        observed run's simulated outcome is unchanged.
        """
        for index, queue in enumerate(self.queues):
            sampler.add_probe(
                f"admission_depth.site{index}", lambda q=queue: float(len(q))
            )
            sampler.add_probe(
                f"admission_shed.site{index}", lambda q=queue: float(q.shed)
            )

    def _arrival_loop(self, duration_ms: float):
        env = self.env
        spec = self.spec
        arrivals_rng = self.system.streams.stream(ARRIVALS_STREAM)
        workload_rng = self.system.streams.stream(WORKLOAD_STREAM)
        curve = spec.build_curve()
        warmup = self.warmup_ms
        last = 0.0
        for when in arrival_times(curve, duration_ms, arrivals_rng):
            yield env.timeout(when - last)
            last = when
            client = arrivals_rng.randrange(spec.modeled_clients)
            # Generate before offering: the workload stream's draw
            # sequence depends only on the arrival stream, never on
            # queue occupancy, so shedding cannot ripple into the
            # transactions other clients generate.
            turn = self.pool.turn(client, workload_rng, env.now)
            if env.now >= warmup:
                self.offered_recorded += 1
            site = client % self.num_sites
            self.queues[site].offer((turn, client, env.now))

    def _dispatcher(self, site: int):
        env = self.env
        system = self.system
        metrics = self.metrics
        tracer = self.obs.tracer
        queue = self.queues[site]
        warmup = self.warmup_ms
        session = None
        session_client = -1
        while True:
            turn, client, arrived = yield queue.take()
            if session is None or session_client != client or turn.reset_session:
                session = system.new_session(client)
                session_client = client
            recorded = arrived >= warmup
            if recorded:
                metrics.record_admission_wait(env.now - arrived)
            self.in_flight += 1
            tracer.txn_begin(turn.txn, env.now)
            outcome = yield from system.submit(turn.txn, session)
            self.in_flight -= 1
            self.completed += 1
            if recorded:
                self.completed_recorded += 1
                # Latency from *arrival*, queue wait included — the
                # coordinated-omission-free measurement (docs/SCALE.md).
                metrics.record(turn.txn, outcome, env.now - arrived, env.now)
                if self.obs.enabled and outcome.committed:
                    self.obs.registry.histogram(
                        f"latency.{turn.txn.txn_type}"
                    ).record(env.now - arrived)
            tracer.txn_end(turn.txn, outcome, env.now, recorded=recorded)

    def counters(self) -> Dict[str, float]:
        """Fold every open-loop observable into one flat dict.

        Attached to :attr:`Metrics.open_loop_counters` by the harness
        so it transports through pickled summaries, the report table,
        CSV export, and Prometheus exposition.
        """
        now = self.env.now
        queues = self.queues
        return {
            "offered": float(sum(q.offered for q in queues)),
            "offered_recorded": float(self.offered_recorded),
            "admitted": float(sum(q.admitted for q in queues)),
            "shed": float(sum(q.shed for q in queues)),
            "taken": float(sum(q.taken for q in queues)),
            "completed": float(self.completed),
            "completed_recorded": float(self.completed_recorded),
            "in_flight": float(self.in_flight),
            "queued_end": float(sum(len(q) for q in queues)),
            "peak_depth": float(max(q.peak_depth for q in queues)),
            "mean_depth": (
                sum(q.mean_depth(now) for q in queues) / len(queues)
            ),
            "modeled_clients": float(self.spec.modeled_clients),
        }


def offered_rate_tps(counters: Dict[str, float], window_ms: float) -> float:
    """Recorded offered rate (arrivals/s) from folded counters."""
    if window_ms <= 0:
        return 0.0
    return counters.get("offered_recorded", 0.0) / window_ms * 1000.0


def goodput_ratio(counters: Dict[str, float], commits: int) -> Optional[float]:
    """Committed-to-offered ratio over the recorded window.

    The saturation signal: ~1.0 while the system keeps up, collapsing
    once arrivals outpace service. ``None`` when nothing was offered.
    """
    offered = counters.get("offered_recorded", 0.0)
    if offered <= 0:
        return None
    return commits / offered
