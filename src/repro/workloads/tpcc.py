"""TPC-C subset: New-Order, Payment, Stock-Level (paper §VI-A.2, App. G).

The three transaction types make up the bulk of TPC-C's workload and of
its distributed transactions; the paper evaluates exactly these, with a
45/45/10 mix. Keys are partitioned as the paper's comparators are:

* per warehouse — the warehouse row itself;
* per (warehouse, district) — district row, customers, history,
  orders, new-orders, order-lines;
* per stock chunk — each warehouse's stock split into fixed-size
  chunks so remastering can move stock at sub-warehouse granularity;
* the ``item`` table is static and read-only: replicated everywhere,
  never mastered (partition ``None``).

Cross-warehouse behaviour: a configurable fraction of New-Order
transactions supply some items from a remote warehouse (writing remote
stock), and a fraction of Payments pay for a customer of a remote
warehouse — these are the workload's distributed transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Tuple

from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.transactions import Key, Transaction
from repro.workloads.base import ClientTurn, Workload


@dataclass
class TPCCConfig:
    """Scaled-down TPC-C parameters."""

    warehouses: int = 10
    districts_per_warehouse: int = 10
    customers_per_district: int = 300
    #: Customers per customer partition chunk (fine-grained, so a
    #: cross-warehouse Payment remasters one cold slice of customers
    #: rather than a district's whole customer base).
    customer_chunk: int = 30
    #: Catalogue size (paper: 100 000; scaled with the database).
    items: int = 5000
    #: Stock rows per stock partition chunk. Kept small so that
    #: remastering moves stock at fine granularity: a chunk pulled to a
    #: remote site by a cross-warehouse New-Order disturbs only a small
    #: fraction of the home warehouse's subsequent transactions.
    stock_chunk: int = 50
    #: Order lines per New-Order, uniform in [min, max].
    min_order_lines: int = 5
    max_order_lines: int = 15
    #: Fraction of New-Order transactions that include remote stock.
    neworder_remote_fraction: float = 0.10
    #: Fraction of Payments for a remote warehouse's customer.
    payment_remote_fraction: float = 0.15
    #: Transaction mix (must sum to 1).
    neworder_weight: float = 0.45
    payment_weight: float = 0.45
    stocklevel_weight: float = 0.10
    #: Recent orders examined by Stock-Level.
    stocklevel_orders: int = 20

    @property
    def stock_chunks_per_warehouse(self) -> int:
        return -(-self.items // self.stock_chunk)  # ceil

    @property
    def customer_chunks_per_district(self) -> int:
        return -(-self.customers_per_district // self.customer_chunk)  # ceil

    @property
    def partitions_per_warehouse(self) -> int:
        # warehouse row | district rows + order tables | customer
        # chunks + history | stock chunks
        return (
            1
            + self.districts_per_warehouse
            + self.districts_per_warehouse * self.customer_chunks_per_district
            + self.stock_chunks_per_warehouse
        )

    @property
    def num_partitions(self) -> int:
        return self.warehouses * self.partitions_per_warehouse


@dataclass
class _ClientState:
    client_id: int
    home_warehouse: int


class TPCCWorkload(Workload):
    """Generator for the three-transaction TPC-C subset."""

    name = "tpcc"

    def __init__(self, config: Optional[TPCCConfig] = None):
        self.config = config or TPCCConfig()
        self._scheme = PartitionScheme(self._partition_of, self.config.num_partitions)
        #: Next order id per (warehouse, district).
        self._next_order: Dict[Tuple[int, int], int] = {}
        #: Recent order line counts for Stock-Level, per district.
        self._recent_lines: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._history_ids = count()

    # -- partition mapping ----------------------------------------------------------

    def _base_partition(self, warehouse: int) -> int:
        return warehouse * self.config.partitions_per_warehouse

    def _district_partition(self, warehouse: int, district: int) -> int:
        return self._base_partition(warehouse) + 1 + district

    def _customer_partition(self, warehouse: int, district: int, customer: int) -> int:
        """Customers (and payment history) live apart from the hot
        district row, in small chunks, so remastering a remote customer
        for a Payment never moves the district's New-Order traffic and
        disturbs only a thin slice of its other customers."""
        cfg = self.config
        return (
            self._base_partition(warehouse)
            + 1
            + cfg.districts_per_warehouse
            + district * cfg.customer_chunks_per_district
            + customer // cfg.customer_chunk
        )

    def _stock_partition(self, warehouse: int, item: int) -> int:
        cfg = self.config
        return (
            self._base_partition(warehouse)
            + 1
            + cfg.districts_per_warehouse
            + cfg.districts_per_warehouse * cfg.customer_chunks_per_district
            + item // cfg.stock_chunk
        )

    def _partition_of(self, key: Key) -> Optional[int]:
        table, pk = key
        if table == "item":
            return None  # static read-only: replicated everywhere
        if table == "warehouse":
            return self._base_partition(pk)
        if table == "stock":
            warehouse, item = pk
            return self._stock_partition(warehouse, item)
        if table in ("customer", "history"):
            # history pk carries the paying customer's chunk via pk[2].
            return self._customer_partition(pk[0], pk[1], pk[2])
        # district / orders / new_orders / order_line
        return self._district_partition(pk[0], pk[1])

    @property
    def scheme(self) -> PartitionScheme:
        return self._scheme

    def fixed_placement(self, num_sites: int) -> Dict[int, int]:
        """Warehouse partitioning: every warehouse at one site (the
        placement Schism confirms minimizes distributed txns, §VI-B2)."""
        placement = {}
        for warehouse in range(self.config.warehouses):
            site = warehouse % num_sites
            base = self._base_partition(warehouse)
            for offset in range(self.config.partitions_per_warehouse):
                placement[base + offset] = site
        return placement

    def placement_unit_of(self, key: Key) -> Optional[int]:
        """Warehouses are the coordination granule of the partitioned
        comparators: a transaction touching two warehouses is
        distributed for them, one warehouse is local (§VI-B2)."""
        partition = self._partition_of(key)
        if partition is None:
            return None
        warehouse = partition // self.config.partitions_per_warehouse
        return self._base_partition(warehouse)

    def recommended_weights(self) -> StrategyWeights:
        return StrategyWeights.for_tpcc()

    # -- workload interface -----------------------------------------------------------

    def new_client_state(self, client_id: int, rng) -> _ClientState:
        return _ClientState(
            client_id=client_id,
            home_warehouse=rng.randrange(self.config.warehouses),
        )

    def next_transaction(self, state: _ClientState, rng, now: float) -> ClientTurn:
        cfg = self.config
        point = rng.random()
        if point < cfg.neworder_weight:
            txn = self._make_neworder(state, rng)
        elif point < cfg.neworder_weight + cfg.payment_weight:
            txn = self._make_payment(state, rng)
        else:
            txn = self._make_stocklevel(state, rng)
        return ClientTurn(txn)

    # -- transactions -------------------------------------------------------------------

    def _order_id(self, warehouse: int, district: int) -> int:
        key = (warehouse, district)
        order = self._next_order.get(key, 0)
        self._next_order[key] = order + 1
        return order

    def _make_neworder(self, state: _ClientState, rng) -> Transaction:
        cfg = self.config
        warehouse = state.home_warehouse
        district = rng.randrange(cfg.districts_per_warehouse)
        customer = rng.randrange(cfg.customers_per_district)
        lines = rng.randint(cfg.min_order_lines, cfg.max_order_lines)
        remote = rng.random() < cfg.neworder_remote_fraction
        remote_warehouse = None
        if remote and cfg.warehouses > 1:
            remote_warehouse = rng.randrange(cfg.warehouses - 1)
            if remote_warehouse >= warehouse:
                remote_warehouse += 1

        order = self._order_id(warehouse, district)
        items = rng.sample(range(cfg.items), min(lines, cfg.items))
        reads: List[Key] = [
            ("warehouse", warehouse),
            ("district", (warehouse, district)),
            ("customer", (warehouse, district, customer)),
        ]
        writes: List[Key] = [
            ("district", (warehouse, district)),
            ("orders", (warehouse, district, order)),
            ("new_orders", (warehouse, district, order)),
        ]
        supply_warehouses: List[int] = []
        for index, item in enumerate(items):
            reads.append(("item", item))
            supplier = warehouse
            if remote_warehouse is not None and index == 0:
                supplier = remote_warehouse
            supply_warehouses.append(supplier)
            reads.append(("stock", (supplier, item)))
            writes.append(("stock", (supplier, item)))
            writes.append(("order_line", (warehouse, district, order, index)))
        self._remember_lines(warehouse, district, items, supply_warehouses)
        return Transaction(
            "new_order",
            state.client_id,
            write_set=tuple(writes),
            read_set=tuple(reads),
            extra_cpu_ms=0.1,
        )

    def _remember_lines(
        self,
        warehouse: int,
        district: int,
        items: List[int],
        suppliers: List[int],
    ) -> None:
        cfg = self.config
        recent = self._recent_lines.setdefault((warehouse, district), [])
        recent.extend(zip(suppliers, items))
        # Keep only what Stock-Level can look back at.
        limit = cfg.stocklevel_orders * cfg.max_order_lines
        if len(recent) > limit:
            del recent[: len(recent) - limit]

    def _make_payment(self, state: _ClientState, rng) -> Transaction:
        cfg = self.config
        warehouse = state.home_warehouse
        district = rng.randrange(cfg.districts_per_warehouse)
        customer_warehouse = warehouse
        customer_district = district
        if rng.random() < cfg.payment_remote_fraction and cfg.warehouses > 1:
            customer_warehouse = rng.randrange(cfg.warehouses - 1)
            if customer_warehouse >= warehouse:
                customer_warehouse += 1
            customer_district = rng.randrange(cfg.districts_per_warehouse)
        customer = rng.randrange(cfg.customers_per_district)
        # The history insert lands in the home customer's chunk (pk[2]).
        history = ("history", (warehouse, district, customer, next(self._history_ids)))
        writes = (
            ("warehouse", warehouse),
            ("district", (warehouse, district)),
            ("customer", (customer_warehouse, customer_district, customer)),
            history,
        )
        reads = writes[:3]
        return Transaction(
            "payment", state.client_id, write_set=writes, read_set=reads
        )

    def _make_stocklevel(self, state: _ClientState, rng) -> Transaction:
        cfg = self.config
        warehouse = state.home_warehouse
        district = rng.randrange(cfg.districts_per_warehouse)
        recent = self._recent_lines.get((warehouse, district), [])
        scans: List[Key] = [("district", (warehouse, district))]
        seen = set()
        for supplier, item in recent:
            line_key = ("order_line", (warehouse, district, supplier, item))
            scans.append(line_key)
            if (supplier, item) not in seen:
                seen.add((supplier, item))
                scans.append(("stock", (supplier, item)))
        return Transaction(
            "stock_level", state.client_id, scan_set=tuple(scans)
        )
