"""The workload interface driven by simulated clients."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.transactions import Key, Transaction


@dataclass(slots=True)
class ClientTurn:
    """One step of a client: the transaction to run next.

    ``reset_session`` marks the affinity-period boundary where the
    paper replaces a departing client with a fresh one — the driver
    then starts a new session (fresh client version vector).
    """

    txn: Transaction
    reset_session: bool = False


class Workload(ABC):
    """A transaction mix over a keyed dataset.

    A workload owns the partition scheme (what the site selector tracks
    mastership by) and produces transactions per client. Workload
    objects may keep shared mutable state (e.g. TPC-C order counters);
    the simulation is single-threaded so no synchronization is needed.
    """

    name: str = "workload"

    @property
    @abstractmethod
    def scheme(self) -> PartitionScheme:
        """The key -> partition mapping for this workload."""

    @abstractmethod
    def new_client_state(self, client_id: int, rng) -> Any:
        """Per-client generator state (affinity region, counters...)."""

    @abstractmethod
    def next_transaction(self, state: Any, rng, now: float) -> ClientTurn:
        """Produce the client's next transaction."""

    def initial_records(self) -> Iterable[Tuple[Key, Any]]:
        """Records to bulk-load before the run (may be empty: the
        storage engine creates records lazily on first access, which
        keeps large simulated databases cheap)."""
        return ()

    def fixed_placement(self, num_sites: int) -> Dict[int, int]:
        """The offline placement used by the fixed-mastership systems.

        Defaults to range partitioning; workloads override where the
        paper prescribes something else (warehouse partitioning for
        TPC-C).
        """
        return self.scheme.range_placement(num_sites)

    def placement_unit_of(self, key: Key) -> Optional[int]:
        """The coordination granule of the partitioned comparators.

        Partition-store and multi-master execute transaction branches
        per *placement unit* — the application-level partition their
        offline partitioner assigns to sites (YCSB's 100-key partition,
        TPC-C's warehouse). A transaction spanning units is distributed
        for them, even if the units happen to live at one site; this is
        what the paper's workload modifications are designed to induce
        (§VI-A.2).

        Unit ids are scheme partition ids (a representative partition
        for multi-partition units, e.g. a TPC-C warehouse's base
        partition), so a unit's site is ``placement[unit]``. ``None``
        marks static replicated tables.
        """
        return self.scheme.partition(key)

    def recommended_weights(self) -> StrategyWeights:
        """DynaMast hyperparameters for this workload (Appendix H)."""
        return StrategyWeights()

    def client_pool(self, num_clients: int):
        """Aggregated client state for open-loop traffic.

        The default is the always-correct :class:`~repro.workloads.
        openloop.LazyClientPool` (real state objects, created lazily).
        Workloads meant to scale to 100k+ modeled clients override this
        with an array-backed or stateless pool; the override must honor
        the equivalence contract — consume exactly the RNG draws of
        ``new_client_state`` (first touch) + ``next_transaction``.
        """
        from repro.workloads.openloop import LazyClientPool

        return LazyClientPool(self, num_clients)
