"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bench`` — run one system x workload combination and print a
  metrics report;
* ``compare`` — run several systems on the same workload and print a
  comparison table;
* ``trace`` — run one combination with full observability and export
  Chrome-trace / JSON-lines files for Perfetto;
* ``explain`` — run one combination traced and attribute commit
  latency to causal categories (``--txn`` waterfalls, ``--vs`` /
  ``--diff`` budget comparisons, ``--export`` JSON reports);
* ``masters`` — run one combination with the decision ledger attached
  and report mastership: locality share, windowed remaster rate,
  convergence time, per-partition timelines, ``--why`` decision
  waterfalls, JSONL/CSV/Prometheus export;
* ``chaos`` — run a named fault scenario against one system and print
  the availability timeline (optionally exporting it as CSV);
  ``--masters`` adds mastering re-convergence after each transition;
  ``--slo`` evaluates the SLO/invariant monitors over every run;
* ``slo`` — run one system under a fault scenario (or unfaulted with
  ``--scenario none``) with the streaming SLO engine attached: windowed
  objectives, burn-rate incidents, runtime invariant checks, and
  MTTD/MTTR against the injector's ground truth; exports JSONL/CSV/
  Prometheus and a self-contained HTML dashboard (``--html``);
* ``perf`` — run the pinned wall-clock matrix, write ``BENCH_perf.json``,
  or (``--check``) gate against the committed baseline; ``--scale``
  runs the open-loop saturation matrix instead (``BENCH_scale.json``:
  per-system saturation knees, exact-fingerprint + RSS-budget gates)
  and ``--scale --render-tables`` re-renders the committed report's
  knee tables as markdown without running anything;
* ``experiments`` — list the per-figure experiment drivers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import print_table, run_benchmark
from repro.bench.harness import ALL_SYSTEMS
from repro.bench.report import print_run_report
from repro.sim.config import ClusterConfig
from repro.workloads import (
    SmallBankWorkload,
    TPCCConfig,
    TPCCWorkload,
    YCSBConfig,
    YCSBWorkload,
)
from repro.workloads.smallbank import SmallBankConfig

WORKLOADS = ("ycsb", "tpcc", "smallbank")


def make_workload_spec(name: str, args):
    """Describe a workload from CLI arguments as picklable pure data.

    The spec form is what ``--jobs`` fan-out ships to worker processes;
    :func:`make_workload` builds the same workload in-process from it,
    so serial and parallel runs construct identical generators.
    """
    from repro.bench.parallel import WorkloadSpec

    if name == "ycsb":
        return WorkloadSpec.of("ycsb", rmw_fraction=args.rmw, zipf_theta=args.skew)
    if name == "tpcc":
        return WorkloadSpec.of("tpcc", neworder_remote_fraction=args.remote)
    if name == "smallbank":
        return WorkloadSpec.of("smallbank")
    raise ValueError(f"unknown workload {name!r}; expected one of {WORKLOADS}")


def make_workload(name: str, args):
    """Instantiate a workload from CLI arguments."""
    return make_workload_spec(name, args).build()


def add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=WORKLOADS, default="ycsb")
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1000.0,
                        help="simulated milliseconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rmw", type=float, default=0.5,
                        help="[ycsb] RMW fraction")
    parser.add_argument("--skew", type=float, default=0.0,
                        help="[ycsb] Zipfian theta")
    parser.add_argument("--remote", type=float, default=0.10,
                        help="[tpcc] cross-warehouse New-Order fraction")


def run_one(system: str, args, obs=None, ledger=None):
    workload = make_workload(args.workload, args)
    return run_benchmark(
        system,
        workload,
        num_clients=args.clients,
        duration_ms=args.duration,
        warmup_ms=args.duration / 4,
        cluster_config=ClusterConfig(
            num_sites=args.sites, cores_per_site=args.cores
        ),
        seed=args.seed,
        obs=obs,
        ledger=ledger,
    )


def cmd_bench(args) -> int:
    result = run_one(args.system, args)
    print_run_report(result)
    return 0


def cmd_trace(args) -> int:
    from repro.obs import Observability
    from repro.obs.export import (
        flame_summary,
        reconcile_with_metrics,
        write_chrome_trace,
        write_jsonl,
    )

    if args.sample_interval <= 0:
        print(f"repro trace: error: --sample-interval must be positive, "
              f"got {args.sample_interval}", file=sys.stderr)
        return 2
    obs = Observability(sample_interval_ms=args.sample_interval)
    result = run_one(args.system, args, obs=obs)
    print_run_report(result)

    trace_path = f"{args.out}.trace.json"
    events_path = f"{args.out}.events.jsonl"
    write_chrome_trace(obs.tracer, trace_path, timelines=result.timelines)
    write_jsonl(obs.tracer, events_path)
    print(f"wrote {trace_path} (open in https://ui.perfetto.dev "
          f"or chrome://tracing)", file=sys.stderr)
    print(f"wrote {events_path}", file=sys.stderr)

    print()
    print(flame_summary(obs.tracer, top=args.top))
    print_table(
        "trace vs metrics reconciliation",
        ["phase", "trace ms", "metrics ms", "delta"],
        [
            [row["phase"], row["trace_ms"], row["metrics_ms"],
             f"{row['delta']:.2%}"]
            for row in reconcile_with_metrics(obs.tracer, result.metrics)
        ],
    )
    return 0


def _explain_report(system: str, args):
    """Run ``system`` observed and build its attribution report."""
    from repro.obs import Observability
    from repro.obs.attribution import AttributionReport

    obs = Observability()
    result = run_one(system, args, obs=obs)
    report = AttributionReport.from_result(result, seed=args.seed)
    report.meta["sites"] = args.sites
    return report


def _print_budget(report) -> None:
    from repro.obs.attribution import budget_headers, budget_rows

    meta = report.meta
    print_table(
        f"latency budget: {meta.get('system')} on {meta.get('workload')} "
        f"(seed {meta.get('seed')}, {len(report.txns)} committed txns, "
        f"coverage {report.coverage():.6f})",
        budget_headers(),
        budget_rows(report),
    )
    blame = report.blame()
    if blame:
        print_table(
            "p95+ tail blame (who owns the tail)",
            ["category", "track", "ms", "share"],
            [[b["category"], b["track"], f"{b['ms']:,.1f}", f"{b['share']:.1%}"]
             for b in blame],
        )
    edges = report.edge_summary
    rows = [[kind, count] for kind, count in edges.get("kinds", {}).items()]
    for holder, count in edges.get("lock_blame", {}).items():
        rows.append([f"lock wait-for holder: {holder}", count])
    for origin, count in edges.get("refresh_origins", {}).items():
        rows.append([f"refresh lag origin: {origin}", count])
    if rows:
        print_table("causal edges", ["edge", "count"], rows)


def _print_diff(diff) -> None:
    print_table(
        f"budget diff: {diff['a']} ({diff['a_txns']} txns) vs "
        f"{diff['b']} ({diff['b_txns']} txns)",
        ["category", f"{diff['a']} ms", f"{diff['b']} ms", "delta ms",
         f"{diff['a']} share", f"{diff['b']} share"],
        [
            [row["category"], f"{row['a_ms']:,.1f}", f"{row['b_ms']:,.1f}",
             f"{row['delta_ms']:+,.1f}", f"{row['a_share']:.1%}",
             f"{row['b_share']:.1%}"]
            for row in diff["rows"]
        ],
    )


def cmd_explain(args) -> int:
    import json

    from repro.obs.attribution import AttributionError, diff_reports, render_waterfall

    if args.diff:
        try:
            loaded = []
            for path in args.diff:
                with open(path) as handle:
                    loaded.append(json.load(handle))
            diff = diff_reports(*loaded)
        except (OSError, json.JSONDecodeError, AttributionError) as exc:
            print(f"repro explain: error: {exc}", file=sys.stderr)
            return 2
        _print_diff(diff)
        return 0

    report = _explain_report(args.system, args)
    if not report.txns:
        print("repro explain: error: no committed transactions to attribute "
              "(run longer or with more clients)", file=sys.stderr)
        return 2

    if args.txn is not None:
        txn = report.find(args.txn)
        if txn is None:
            print(f"repro explain: error: txn {args.txn} was not attributed "
                  f"(unknown id, aborted, or started during warmup)",
                  file=sys.stderr)
            return 2
        print(render_waterfall(txn))
        return 0

    _print_budget(report)
    print()
    print(f"== {args.exemplars} worst transactions (waterfalls) ==")
    for txn in report.tail_exemplars(args.exemplars):
        print()
        print(render_waterfall(txn))

    if args.vs:
        vs_report = _explain_report(args.vs, args)
        _print_budget(vs_report)
        try:
            diff = diff_reports(report.to_dict(), vs_report.to_dict())
        except AttributionError as exc:
            print(f"repro explain: error: {exc}", file=sys.stderr)
            return 2
        _print_diff(diff)

    if args.export:
        with open(args.export, "w") as handle:
            json.dump(report.to_dict(exemplars=args.exemplars), handle,
                      indent=2, sort_keys=True)
        print(f"wrote {args.export}", file=sys.stderr)
    return 0


def cmd_masters(args) -> int:
    from repro.bench.report import print_mastering
    from repro.obs.mastery import DecisionLedger, render_decision

    if args.window <= 0:
        print(f"repro masters: error: --window must be positive, "
              f"got {args.window}", file=sys.stderr)
        return 2
    ledger = DecisionLedger()
    result = run_one(args.system, args, ledger=ledger)

    if args.why is not None:
        if not 0 <= args.why < len(ledger.decisions):
            print(f"repro masters: error: decision {args.why} was not "
                  f"recorded (this run made {len(ledger.decisions)} "
                  f"decisions, numbered from 0)", file=sys.stderr)
            return 2
        print(render_decision(ledger.decisions[args.why]))
        return 0

    print_mastering(result)
    series = ledger.rate_series(args.window)
    print_table(
        f"windowed remaster rate ({args.window:g} ms windows)",
        ["window start", "routed", "remastered", "moved", "fraction"],
        [
            [f"{window.start_ms:g}", window.routed, window.remastered,
             window.partitions_moved, f"{window.remaster_fraction:.2%}"]
            for window in series
        ],
    )
    convergence = ledger.convergence_time(
        threshold=args.threshold, window_ms=args.window
    )
    print()
    if convergence is None:
        print(f"convergence: never settled at <= {args.threshold:.0%} "
              f"remastered per window")
    else:
        print(f"convergence: {convergence:,.0f} ms from run start "
              f"(<= {args.threshold:.0%} remastered per {args.window:g} ms "
              f"window, steady through run end)")

    timeline = ledger.timeline()
    if args.partition is not None:
        print()
        print(timeline.render(args.partition, end=result.duration_ms))
    if args.decisions:
        print_table(
            f"last {args.decisions} remaster decisions (--why <seq> for "
            f"the score waterfall)",
            ["seq", "at ms", "txn", "chosen", "runner-up", "margin",
             "tie", "moved"],
            [
                [record.seq, f"{record.at_ms:g}", record.txn_id,
                 record.chosen,
                 "-" if record.runner_up is None else record.runner_up,
                 f"{record.margin:.3g}", record.tie_break,
                 record.partitions_moved]
                for record in ledger.decisions[-args.decisions:]
            ],
        )

    if args.export_jsonl:
        ledger.write_jsonl(args.export_jsonl)
        print(f"wrote {args.export_jsonl}", file=sys.stderr)
    if args.export_csv:
        ledger.write_csv(args.export_csv, window_ms=args.window)
        print(f"wrote {args.export_csv}", file=sys.stderr)
    if args.prometheus:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        ledger.to_registry(registry, threshold=args.threshold,
                           window_ms=args.window)
        with open(args.prometheus, "w") as handle:
            handle.write(registry.to_prometheus())
        print(f"wrote {args.prometheus}", file=sys.stderr)
    return 0


def cmd_compare(args) -> int:
    systems = args.systems.split(",") if args.systems else list(ALL_SYSTEMS)
    rows = []
    results = {}
    if args.jobs > 1:
        from repro.bench.parallel import RunSpec, SpecExecutionError, execute_specs

        specs = [
            RunSpec(
                system=system,
                workload=make_workload_spec(args.workload, args),
                num_clients=args.clients,
                duration_ms=args.duration,
                warmup_ms=args.duration / 4,
                cluster=ClusterConfig(
                    num_sites=args.sites, cores_per_site=args.cores
                ),
                seed=args.seed,
            )
            for system in systems
        ]
        try:
            results = dict(zip(systems, execute_specs(specs, jobs=args.jobs)))
        except SpecExecutionError as exc:
            print(f"repro compare: error: {exc}", file=sys.stderr)
            return 2
        print(f"ran {len(results)} systems across {args.jobs} workers",
              file=sys.stderr)
    else:
        for system in systems:
            results[system] = run_one(system, args)
            print(f"ran {system}", file=sys.stderr)
    for system, result in results.items():
        combined = result.latency()
        rows.append([
            system,
            result.throughput,
            combined.mean,
            combined.p99,
            f"{result.metrics.remaster_fraction():.1%}",
        ])
    print_table(
        f"{args.workload}, {args.clients} clients, {args.sites} sites",
        ["system", "txn/s", "mean ms", "p99 ms", "remaster/ship"],
        rows,
    )
    if args.csv:
        from repro.bench.export import write_csv

        write_csv(results, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.json:
        from repro.bench.export import write_json

        write_json(results, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_slo(args) -> int:
    from repro.bench.report import print_slo
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan
    from repro.obs import SloEngine, quick_slos

    if args.window <= 0:
        print(f"repro slo: error: --window must be positive, "
              f"got {args.window}", file=sys.stderr)
        return 2
    engine = (quick_slos(window_ms=args.window) if args.quick
              else SloEngine(window_ms=args.window))
    # "none" runs unfaulted: the objectives and invariants still
    # evaluate, but there is no ground truth to correlate against, so
    # any incident is a false positive by definition.
    plan = FaultPlan() if args.scenario == "none" else None
    report = run_chaos(
        args.system,
        args.scenario,
        num_sites=args.sites,
        num_clients=args.clients,
        duration_ms=args.duration,
        seed=args.seed,
        plan=plan,
        slo=engine,
        defenses=args.defenses,
    )
    print(f"\n== repro slo: {args.system} under {args.scenario} "
          f"({args.sites} sites, {args.duration:g} ms, "
          f"defenses={args.defenses}, window={args.window:g} ms) ==")
    print_slo(report.result)
    if args.html:
        from repro.obs.dashboard import write_dashboard

        write_dashboard(report.result, args.html,
                        title=f"{args.system} / {args.scenario}")
        print(f"wrote {args.html}", file=sys.stderr)
    if args.export_jsonl:
        engine.write_jsonl(args.export_jsonl)
        print(f"wrote {args.export_jsonl}", file=sys.stderr)
    if args.export_csv:
        engine.write_csv(args.export_csv)
        print(f"wrote {args.export_csv}", file=sys.stderr)
    if args.prometheus:
        with open(args.prometheus, "w") as handle:
            handle.write(engine.to_prometheus(labels={
                "system": args.system, "scenario": args.scenario,
            }))
        print(f"wrote {args.prometheus}", file=sys.stderr)
    return 0


def cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos

    systems = args.systems.split(",") if args.systems else [args.system]
    scenarios = args.scenarios.split(",") if args.scenarios else [args.scenario]
    if len(systems) > 1 or len(scenarios) > 1 or args.jobs > 1:
        return _chaos_matrix(args, systems, scenarios)
    # A single-cell "matrix" (--systems X --scenarios Y) runs on the
    # classic serial path.
    args.system, args.scenario = systems[0], scenarios[0]

    obs = None
    if args.explain:
        from repro.obs import Observability

        obs = Observability()
    ledger = None
    if args.masters:
        from repro.obs.mastery import DecisionLedger

        ledger = DecisionLedger()
    slo = None
    if args.slo:
        from repro.obs import SloEngine

        slo = SloEngine()
    report = run_chaos(
        args.system,
        args.scenario,
        num_sites=args.sites,
        num_clients=args.clients,
        duration_ms=args.duration,
        bucket_ms=args.bucket,
        seed=args.seed,
        obs=obs,
        ledger=ledger,
        slo=slo,
        defenses=args.defenses,
    )
    print_table(
        f"chaos: {args.system} under {args.scenario} "
        f"({args.sites} sites, {args.duration:g} ms, "
        f"defenses={args.defenses})",
        ["bucket ms", "commit/s", "abort/s", "sites up"],
        [
            [f"{bucket.start_ms:g}", bucket.commits_per_s,
             bucket.aborts_per_s, bucket.sites_up]
            for bucket in report.buckets
        ],
    )
    summary = [
        ["commits", f"{report.commits:,}"],
        ["steady commit/s", f"{report.steady_rate():,.0f}"],
        ["min commit/s", f"{report.min_rate():,.0f}"],
        ["final commit/s", f"{report.final_rate():,.0f}"],
        ["p99 commit ms", f"{report.result.metrics.latency().p99:,.2f}"],
    ]
    for reason, count in sorted(report.aborts_by_reason.items()):
        summary.append([f"aborts ({reason})", f"{count:,}"])
    detector = report.result.metrics.detector_counters if report.result else {}
    for key in ("suspicion_episodes", "false_suspicions",
                "hedges_launched", "hedge_wins"):
        if detector.get(key):
            summary.append([key.replace("_", " "), f"{detector[key]:,}"])
    for key in ("detection_latency_ms", "quarantine_ms"):
        if key in detector:
            summary.append(
                [key[:-3].replace("_", " "), f"{detector[key]:,.2f} ms"]
            )
    for at_ms, kind, site in report.fault_events:
        summary.append([f"{kind} site{site}", f"at {at_ms:g} ms"])
    print_table("chaos summary", ["metric", "value"], summary)
    if args.explain:
        blame = report.dip_blame()
        if blame is not None:
            steady, degraded, shifts = blame
            print_table(
                "availability-dip attribution (share of commit latency)",
                ["category", "steady", "degraded", "shift"],
                [
                    [category, f"{steady[category]:.1%}",
                     f"{degraded[category]:.1%}", f"{delta:+.1%}"]
                    for category, delta in shifts
                ],
            )
    if args.masters:
        mastering = report.mastering_summary(window_ms=args.bucket)
        if mastering is not None:
            from repro.bench.report import print_mastering

            print_mastering(report.result)
            rows = []
            for entry in mastering["reconvergence"]:
                settled = entry["reconvergence_ms"]
                rows.append([
                    f"{entry['kind']} site{entry['site']}",
                    f"{entry['at_ms']:g}",
                    "never" if settled is None else f"{settled:,.0f} ms",
                ])
            if rows:
                print_table(
                    "mastering re-convergence after fault transitions",
                    ["event", "at ms", "re-converged in"],
                    rows,
                )
    if args.slo:
        from repro.bench.report import print_slo

        print_slo(report.result)
    if args.out:
        report.write_csv(args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _chaos_matrix(args, systems, scenarios) -> int:
    """Fan a (system x scenario) matrix over worker processes."""
    from repro.bench.parallel import SpecExecutionError
    from repro.faults.chaos import run_chaos_matrix

    if args.explain:
        print("repro chaos: error: --explain needs a live tracer and is "
              "only available for single serial runs (drop --jobs/"
              "--systems/--scenarios)", file=sys.stderr)
        return 2
    try:
        reports = run_chaos_matrix(
            systems,
            scenarios,
            jobs=args.jobs,
            num_sites=args.sites,
            num_clients=args.clients,
            duration_ms=args.duration,
            bucket_ms=args.bucket,
            seed=args.seed,
            mastery=args.masters,
            slo=args.slo,
            defenses=args.defenses,
        )
    except (SpecExecutionError, ValueError) as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    rows = []
    headers = ["system", "scenario", "commits", "aborts", "steady/s",
               "min/s", "final/s", "p99 ms", "detect ms", "quarant ms",
               "recovered"]
    if args.masters:
        headers += ["locality", "converged"]
    if args.slo:
        headers += ["incidents", "TP", "FP", "MTTD ms"]
    for (system, scenario), report in reports.items():
        aborts = sum(report.aborts_by_reason.values())
        detector = report.result.metrics.detector_counters
        row = [
            system, scenario, report.commits, aborts,
            f"{report.steady_rate():,.0f}", f"{report.min_rate():,.0f}",
            f"{report.final_rate():,.0f}",
            f"{report.result.metrics.latency().p99:,.2f}",
            "-" if "detection_latency_ms" not in detector
            else f"{detector['detection_latency_ms']:,.1f}",
            "-" if "quarantine_ms" not in detector
            else f"{detector['quarantine_ms']:,.0f}",
            "yes" if report.recovered() else "NO",
        ]
        if args.masters:
            mastering = report.mastering_summary(window_ms=args.bucket)
            if mastering is None:
                row += ["-", "-"]
            else:
                summary = mastering["summary"]
                converged = summary["convergence_ms"]
                row += [
                    f"{summary['locality_share']:.1%}",
                    "never" if converged < 0 else f"{converged:,.0f} ms",
                ]
        if args.slo:
            verdict = getattr(report.result, "slo", None) or {}
            if verdict:
                mttd = verdict["mttd_mean_ms"]
                row += [
                    int(verdict["incidents"]),
                    int(verdict["true_positives"]),
                    int(verdict["false_positives"]),
                    "n/a" if mttd < 0 else f"{mttd:,.0f}",
                ]
            else:
                row += ["-", "-", "-", "-"]
        rows.append(row)
    print_table(
        f"chaos matrix: {len(systems)} system(s) x {len(scenarios)} "
        f"scenario(s) ({args.sites} sites, {args.duration:g} ms, "
        f"jobs={args.jobs})",
        headers,
        rows,
    )
    if args.out:
        base, dot, extension = args.out.rpartition(".")
        if not dot:
            base, extension = args.out, "csv"
        for (system, scenario), report in reports.items():
            path = f"{base}.{system}.{scenario}.{extension}"
            report.write_csv(path)
            print(f"wrote {path}", file=sys.stderr)
    return 0


def cmd_perf(args) -> int:
    from repro.bench import perf

    if args.scale:
        from repro.bench import scale
        from repro.bench.perf import DEFAULT_REPORT as PERF_REPORT

        # --out/--baseline default to the perf report; when routing to
        # the scale harness, untouched defaults become the scale report.
        out = args.out if args.out != PERF_REPORT else scale.DEFAULT_REPORT
        baseline = (args.baseline if args.baseline != PERF_REPORT
                    else scale.DEFAULT_REPORT)
        try:
            return scale.main(
                smoke=args.smoke,
                check=args.check,
                out=out,
                baseline_path=baseline,
                jobs=args.jobs,
                render_tables=args.render_tables,
            )
        except (OSError, ValueError) as exc:
            print(f"repro perf --scale: error: {exc}", file=sys.stderr)
            return 2
    if args.render_tables:
        print("repro perf: error: --render-tables requires --scale",
              file=sys.stderr)
        return 2

    try:
        return perf.main(
            quick=args.quick,
            check=args.check,
            out=args.out,
            baseline_path=args.baseline,
            baseline_from=args.baseline_from or None,
            baseline_label=args.baseline_label,
            tolerance=args.tolerance,
            repeats=args.repeats,
            jobs=args.jobs,
            cores=args.cores or None,
            smoke=args.smoke,
            profile=args.profile,
        )
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"repro perf: error: {exc}", file=sys.stderr)
        return 2


def cmd_experiments(_args) -> int:
    from repro.bench import experiments

    drivers = [
        ("fig4a_ycsb_uniform", "Fig 4a: YCSB uniform 50/50 throughput vs clients"),
        ("fig4b_ycsb_write_heavy", "Fig 4b: YCSB uniform 90/10 throughput"),
        ("tpcc_default_suite", "Figs 4c/4d/8e/8f: TPC-C latency, default mix"),
        ("fig4e_neworder_mix", "Fig 4e: throughput vs %New-Order"),
        ("cross_warehouse_sweep", "§VI-B3/Fig 8g: latency vs %cross-warehouse"),
        ("skew_suite", "§VI-B4: skewed YCSB throughput"),
        ("fig5b_adaptivity", "Fig 5b: adaptivity to workload change"),
        ("fig5a_sensitivity", "Fig 5a/§VI-B6: hyperparameter sensitivity"),
        ("fig7_breakdown", "Fig 7/App D: latency breakdown + overheads"),
        ("fig6b_database_size", "Fig 6b: database size scaling"),
        ("fig6c_site_scaling", "Fig 6c: 4 -> 16 site scalability"),
        ("smallbank_suite", "Figs 8a-8d: SmallBank"),
    ]
    print_table(
        "experiment drivers (repro.bench.experiments)",
        ["driver", "reproduces"],
        [[name, description] for name, description in drivers],
    )
    for name, _ in drivers:
        assert hasattr(experiments, name), f"missing driver {name}"
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DynaMast reproduction toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    bench = commands.add_parser("bench", help="run one system on one workload")
    bench.add_argument("system", choices=ALL_SYSTEMS)
    add_common_arguments(bench)
    bench.set_defaults(fn=cmd_bench)

    compare = commands.add_parser("compare", help="compare systems on a workload")
    compare.add_argument("--systems", default="",
                         help="comma-separated subset (default: all five)")
    compare.add_argument("--csv", default="", help="also write results as CSV")
    compare.add_argument("--json", default="", help="also write results as JSON")
    compare.add_argument("--jobs", type=int, default=1,
                         help="worker processes to fan the systems over "
                              "(results are bit-identical to --jobs 1)")
    add_common_arguments(compare)
    compare.set_defaults(fn=cmd_compare)

    trace = commands.add_parser(
        "trace", help="run one system traced and export Perfetto/Chrome trace"
    )
    trace.add_argument("--system", choices=ALL_SYSTEMS, default="dynamast")
    trace.add_argument("--out", default="repro-run",
                       help="output prefix (<out>.trace.json, <out>.events.jsonl)")
    trace.add_argument("--sample-interval", type=float, default=10.0,
                       help="timeline sampling cadence, simulated ms")
    trace.add_argument("--top", type=int, default=20,
                       help="flame summary rows")
    add_common_arguments(trace)
    trace.set_defaults(fn=cmd_trace)

    explain = commands.add_parser(
        "explain", help="attribute commit latency to causal categories"
    )
    explain.add_argument("--system", choices=ALL_SYSTEMS, default="dynamast")
    explain.add_argument("--txn", type=int, default=None,
                         help="print one transaction's critical-path waterfall")
    explain.add_argument("--vs", choices=ALL_SYSTEMS, default="",
                         help="also run this system and diff the two budgets")
    explain.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                         help="compare two exported reports (no run); exits 2 "
                              "on malformed or mismatched pairs")
    explain.add_argument("--export", default="",
                         help="write the attribution report as JSON")
    explain.add_argument("--exemplars", type=int, default=3,
                         help="worst-transaction waterfalls to print")
    add_common_arguments(explain)
    explain.set_defaults(fn=cmd_explain)

    masters = commands.add_parser(
        "masters", help="run one system with the decision ledger and "
                        "report mastership timelines and convergence"
    )
    masters.add_argument("--system", choices=ALL_SYSTEMS, default="dynamast")
    masters.add_argument("--window", type=float, default=100.0,
                         help="remaster-rate window, simulated ms")
    masters.add_argument("--threshold", type=float, default=0.05,
                         help="steady-state remastered fraction defining "
                              "convergence (default: %(default)s)")
    masters.add_argument("--why", type=int, default=None, metavar="SEQ",
                         help="print one decision's provenance waterfall "
                              "and exit")
    masters.add_argument("--partition", type=int, default=None,
                         help="print this partition's ownership timeline")
    masters.add_argument("--decisions", type=int, default=10,
                         help="recent decisions to list (0 to hide)")
    masters.add_argument("--export-jsonl", default="",
                         help="write the full ledger (repro-masters/1 JSONL)")
    masters.add_argument("--export-csv", default="",
                         help="write the windowed remaster-rate series as CSV")
    masters.add_argument("--prometheus", default="",
                         help="write mastering metrics in Prometheus text "
                              "exposition format")
    add_common_arguments(masters)
    masters.set_defaults(fn=cmd_masters)

    from repro.faults.plan import SCENARIOS

    chaos = commands.add_parser(
        "chaos", help="run a fault scenario and print the availability timeline"
    )
    chaos.add_argument("--system", choices=ALL_SYSTEMS, default="dynamast")
    chaos.add_argument("--scenario", choices=SCENARIOS, default="crash-restart")
    chaos.add_argument("--systems", default="",
                       help="comma-separated systems for a fan-out matrix")
    chaos.add_argument("--scenarios", default="",
                       help="comma-separated scenarios for a fan-out matrix")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the matrix (bit-identical "
                            "to serial)")
    chaos.add_argument("--sites", type=int, default=3)
    chaos.add_argument("--clients", type=int, default=16)
    chaos.add_argument("--duration", type=float, default=10_000.0,
                       help="simulated milliseconds")
    chaos.add_argument("--bucket", type=float, default=250.0,
                       help="availability bucket width, simulated ms")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--out", default="", help="write the timeline as CSV")
    chaos.add_argument("--explain", action="store_true",
                       help="trace the run and attribute the availability dip")
    chaos.add_argument("--masters", action="store_true",
                       help="attach the decision ledger and report mastering "
                            "re-convergence after each fault transition")
    chaos.add_argument("--slo", action="store_true",
                       help="attach the streaming SLO engine: incident "
                            "ledger and MTTD/MTTR per run (matrix runs get "
                            "incident/TP/FP columns)")
    from repro.faults.chaos import DEFENSES

    chaos.add_argument("--defenses", choices=DEFENSES, default="fixed",
                       help="gray-failure defense preset: 'fixed' (classic "
                            "strike detector, fixed timeout) or 'adaptive' "
                            "(phi-accrual detection, adaptive deadlines, "
                            "hedged reads, health-aware remastering)")
    chaos.set_defaults(fn=cmd_chaos)

    slo = commands.add_parser(
        "slo", help="run one system SLO-monitored and report incidents, "
                    "invariants, and MTTD/MTTR vs injected faults"
    )
    slo.add_argument("--system", choices=ALL_SYSTEMS, default="dynamast")
    slo.add_argument("--scenario", choices=SCENARIOS + ("none",),
                     default="fail_slow_master",
                     help="fault scenario ('none' runs unfaulted: every "
                          "incident is then a false positive)")
    slo.add_argument("--sites", type=int, default=3)
    slo.add_argument("--clients", type=int, default=16)
    slo.add_argument("--duration", type=float, default=10_000.0,
                     help="simulated milliseconds")
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--window", type=float, default=250.0,
                     help="tumbling SLO window, simulated ms")
    slo.add_argument("--quick", action="store_true",
                     help="2-window baseline calibration for short smoke "
                          "runs (default: 4 windows)")
    slo.add_argument("--html", default="",
                     help="write a self-contained HTML dashboard")
    slo.add_argument("--export-jsonl", default="",
                     help="write the incident ledger and window series "
                          "(repro-slo/1 JSONL)")
    slo.add_argument("--export-csv", default="",
                     help="write incidents and violations as CSV")
    slo.add_argument("--prometheus", default="",
                     help="write the verdict counters in Prometheus text "
                          "exposition format")
    slo.add_argument("--defenses", choices=DEFENSES, default="adaptive",
                     help="gray-failure defense preset (default: "
                          "%(default)s — SLO runs usually study the "
                          "defended stack)")
    slo.set_defaults(fn=cmd_slo)

    from repro.bench.perf import DEFAULT_REPORT, DEFAULT_TOLERANCE

    perf = commands.add_parser(
        "perf", help="run the pinned wall-clock matrix / gate regressions"
    )
    perf.add_argument("--quick", action="store_true",
                      help="CI subset of the matrix")
    perf.add_argument("--scale", action="store_true",
                      help="run the open-loop saturation matrix instead "
                           "(BENCH_scale.json: knees + RSS budgets; "
                           "--check compares fingerprints exactly)")
    perf.add_argument("--smoke", action="store_true",
                      help="the CI shape: quick subset at one repeat "
                           "(with --scale: the cheap per-system subset)")
    perf.add_argument("--render-tables", action="store_true",
                      help="with --scale: print the committed report's knee "
                           "tables as markdown and exit (no runs; the "
                           "source for EXPERIMENTS.md / docs/SCALE.md)")
    perf.add_argument("--check", action="store_true",
                      help="compare against the committed report instead of "
                           "writing; exit 1 on regression")
    perf.add_argument("--out", default=DEFAULT_REPORT,
                      help="report path to write (default: %(default)s)")
    perf.add_argument("--baseline", default=DEFAULT_REPORT,
                      help="committed report --check compares against")
    perf.add_argument("--baseline-from", default="",
                      help="embed this prior report as the before/after "
                           "baseline when writing")
    perf.add_argument("--baseline-label", default="previous baseline",
                      help="label for --baseline-from in the report")
    perf.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                      help="--check regression band (default: %(default)s)")
    perf.add_argument("--repeats", type=int, default=3,
                      help="runs per case; best wall-clock wins")
    perf.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the matrix; per-case walls "
                           "are still measured inside each worker, so "
                           "--check bands stay meaningful")
    perf.add_argument("--cores", type=int, default=0,
                      help="run the multi-core sweep at jobs levels "
                           "{1, 2, N}; records machine.parallel.sweep "
                           "(elapsed / fan-out speedup / efficiency per "
                           "level) with fingerprint parity enforced")
    perf.add_argument("--profile", action="store_true",
                      help="cProfile each selected case once and write "
                           "BENCH_perf_profile.txt next to the report "
                           "instead of running the matrix")
    perf.set_defaults(fn=cmd_perf)

    experiments = commands.add_parser("experiments", help="list figure drivers")
    experiments.set_defaults(fn=cmd_experiments)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
