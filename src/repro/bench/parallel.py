"""Deterministic multi-process experiment engine.

The paper's evaluation is a large matrix of *independent* runs — five
systems x three workloads x seed repeats x fault scenarios — and every
run here is a sealed deterministic simulation: its observable outcome
is a pure function of the spec that describes it. That makes the
matrix embarrassingly parallel across worker *processes* (the GIL rules
out threads), and determinism makes the parallelism trivially safe to
verify: a parallel sweep must produce fingerprints bit-identical to the
serial sweep, and the tests in ``tests/test_parallel_parity.py`` pin
exactly that.

Three pieces:

* :class:`RunSpec` — a declarative, picklable description of one run
  (system, :class:`WorkloadSpec` naming a registered workload plus its
  config params, seed, durations, cluster config, fault plan or named
  scenario, obs/streaming flags). Everything a spec references must be
  module-level and picklable — no lambdas, no closures, no live
  handles (CONTRIBUTING.md, "Spawn safety").
* :class:`RunSummary` — the portable transport form of a
  :class:`~repro.bench.harness.RunResult`: all folded measurements plus
  a canonical :func:`run_fingerprint`, per-worker wall clock and peak
  RSS, with the live ``system`` / ``obs`` / ``injector`` handles
  deliberately dropped so results can cross a process boundary (and so
  long suite loops stop pinning entire clusters in memory).
* :class:`ParallelExecutor` — fans callables over a spawn-context
  ``ProcessPoolExecutor``, returns results in deterministic submission
  order regardless of completion order, surfaces worker crashes as
  :class:`SpecExecutionError` with the offending item attached (never a
  bare ``BrokenProcessPool``), and degrades to an identical in-process
  serial path at ``jobs=1``.

The executor is generic over (picklable) callables; the spec-level
entry points :func:`execute_spec` (in-process, live result) and
:func:`execute_specs` (the fan-out used by ``run_suite``,
``run_repeated``, ``repro perf --jobs`` and ``repro chaos --jobs``)
are built on top of it.
"""

from __future__ import annotations

import hashlib
import json
import resource
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.metrics import LatencySummary, Metrics
from repro.core.strategy import StrategyWeights
from repro.faults.plan import FaultPlan
from repro.sim.config import ClusterConfig
from repro.workloads.openloop import OpenLoopSpec

__all__ = [
    "ParallelExecutor",
    "RunSpec",
    "RunSummary",
    "SpecExecutionError",
    "WorkloadSpec",
    "execute_spec",
    "execute_specs",
    "run_fingerprint",
    "summarize",
]


# ---------------------------------------------------------------------------
# Canonical run fingerprint
# ---------------------------------------------------------------------------


def run_fingerprint(result) -> str:
    """Digest the *simulated* outcome of a run (RunResult or RunSummary).

    Covers every observable simulated quantity — commit count and the
    sum of commit times, mean latency, per-category traffic bytes,
    aborts by reason, routing fractions, site utilization, and the
    fault timeline — while excluding host-side measurements
    (``wall_clock_s``, ``events_processed``, RSS), which legitimately
    vary across machines and process placement. Two runs of the same
    :class:`RunSpec` must produce the same fingerprint whether they ran
    serially, in another process, or on another host.
    """
    metrics = result.metrics
    payload = {
        "system": result.system_name,
        "workload": result.workload_name,
        "commits": metrics.commits,
        "commit_time_sum": round(sum(metrics.commit_times), 6),
        "latency_mean": round(result.latency().mean, 6),
        "traffic": sorted(result.traffic_bytes.items()),
        "aborts_by_reason": sorted(metrics.aborts_by_reason.items()),
        "remaster_rate": round(result.remaster_rate, 9),
        "route_fractions": [round(f, 9) for f in result.route_fractions],
        "site_utilization": [round(u, 9) for u in result.site_utilization],
        "fault_events": [
            (round(event.at_ms, 6), event.kind, event.site)
            for event in result.fault_events
        ],
    }
    # Open-loop observables join the digest only when present, so every
    # closed-loop fingerprint pinned before this subsystem existed is
    # unchanged (getattr: summaries pickled by older builds lack the
    # attribute entirely).
    open_loop = getattr(metrics, "open_loop_counters", None)
    if open_loop:
        payload["open_loop"] = sorted(
            (key, round(float(value), 6)) for key, value in open_loop.items()
        )
        payload["admission_wait_sum"] = round(metrics.admission_wait_total(), 6)
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Declarative specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by registry name plus config parameters.

    ``build()`` instantiates a *fresh* workload (generators hold
    mutable state, so every run needs its own). Validation is
    deliberately lazy — an unknown name fails at build time, inside
    the worker, so the executor's failure path can attribute it to the
    spec that caused it.
    """

    name: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **params) -> "WorkloadSpec":
        return cls(name, tuple(sorted(params.items())))

    def build(self):
        from repro.workloads import build_workload

        return build_workload(self.name, **dict(self.params))


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one benchmark run, as pure data.

    Spawn-safety contract: every field must pickle, and anything it
    references (workload names, fault scenarios) must resolve through
    module-level registries in the worker process. Live objects —
    ``Observability`` handles, workload instances, lambdas — are
    excluded by construction; observation is requested with the
    ``observed`` flag and rebuilt worker-side.
    """

    system: str
    workload: WorkloadSpec
    num_clients: int = 50
    duration_ms: float = 2000.0
    warmup_ms: float = 500.0
    cluster: Optional[ClusterConfig] = None
    weights: Optional[StrategyWeights] = None
    placement: Optional[Tuple[Tuple[int, int], ...]] = None
    seed: int = 0
    load_data: bool = False
    streaming_metrics: bool = False
    #: Attach a fresh Observability in the worker (timelines and
    #: attribution shares come back on the summary; the handle does not).
    observed: bool = False
    #: Attach a fresh DecisionLedger in the worker (mastering metrics
    #: come back folded on ``RunSummary.mastery``; the ledger does not).
    mastery: bool = False
    #: Attach a fresh SloEngine in the worker (the scalar verdict comes
    #: back folded on ``RunSummary.slo``; the engine does not).
    slo: bool = False
    #: Named fault scenario, instantiated in the worker via
    #: :func:`repro.faults.plan.build_scenario` against this spec's
    #: cluster size and duration.
    fault_scenario: Optional[str] = None
    #: Explicit fault schedule; overrides ``fault_scenario``.
    fault_plan: Optional[FaultPlan] = None
    #: Open-loop traffic description; when set, the worker drives the
    #: run with an OpenLoopEngine instead of ``num_clients`` closed-loop
    #: clients (``num_clients`` is then ignored). Pure data like every
    #: other field — the curve resolves through CURVE_REGISTRY.
    open_loop: Optional[OpenLoopSpec] = None
    #: Display / bookkeeping label (defaults to system + workload).
    label: Optional[str] = None

    def describe(self) -> str:
        base = self.label or f"{self.system}/{self.workload.name}"
        return f"{base} seed={self.seed}"

    def placement_dict(self) -> Optional[Dict[int, int]]:
        if self.placement is None:
            return None
        return dict(self.placement)


def execute_spec(spec: RunSpec):
    """Run one spec in-process and return the live ``RunResult``.

    This is the single execution path shared by the ``jobs=1`` serial
    mode and the worker processes: both funnel through the same
    :func:`~repro.bench.harness.run_benchmark` call, which is what
    makes serial/parallel bit-identity hold by construction.
    """
    from repro.bench.harness import run_benchmark

    plan = spec.fault_plan
    if plan is None and spec.fault_scenario is not None:
        from repro.faults.plan import build_scenario

        cluster = spec.cluster or ClusterConfig()
        plan = build_scenario(
            spec.fault_scenario,
            num_sites=cluster.num_sites,
            duration_ms=spec.duration_ms,
        )
    obs = None
    if spec.observed:
        from repro.obs import Observability

        obs = Observability()
    ledger = None
    if spec.mastery:
        from repro.obs.mastery import DecisionLedger

        ledger = DecisionLedger()
    slo_engine = None
    if spec.slo:
        from repro.obs.slo import SloEngine

        slo_engine = SloEngine()
    return run_benchmark(
        spec.system,
        spec.workload.build(),
        num_clients=spec.num_clients,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
        cluster_config=spec.cluster,
        weights=spec.weights,
        placement=spec.placement_dict(),
        seed=spec.seed,
        load_data=spec.load_data,
        obs=obs,
        streaming_metrics=spec.streaming_metrics,
        fault_plan=plan,
        ledger=ledger,
        open_loop=spec.open_loop,
        slo=slo_engine,
    )


# ---------------------------------------------------------------------------
# Portable results
# ---------------------------------------------------------------------------


@dataclass
class RunSummary:
    """The portable form of a :class:`~repro.bench.harness.RunResult`.

    Carries every folded measurement across a process boundary; the
    live ``system`` / ``obs`` / ``injector`` handles are deliberately
    dropped (the class attributes below are always ``None``), so a
    summary pickles cheaply and keeps no cluster alive. Observed runs
    fold their attribution budget into ``attribution_shares`` before
    the tracer is discarded.
    """

    system_name: str
    workload_name: str
    num_clients: int
    duration_ms: float
    warmup_ms: float
    metrics: Metrics
    throughput: float
    remaster_rate: float
    route_fractions: List[float]
    traffic_bytes: Dict[str, int]
    site_utilization: List[float]
    abort_rate: float = 0.0
    aborts_by_type: Dict[str, int] = field(default_factory=dict)
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    fault_events: List = field(default_factory=list)
    timelines: Dict = field(default_factory=dict)
    #: Share of commit latency per causal category (observed runs only).
    attribution_shares: Dict[str, float] = field(default_factory=dict)
    #: Folded ledger scalars (mastery runs only): locality share,
    #: entropy, churn, convergence — see DecisionLedger.summary().
    mastery: Dict[str, float] = field(default_factory=dict)
    #: Folded SLO verdict (SLO-monitored runs only): incident /
    #: violation / true-positive counts, MTTD/MTTR — see
    #: SloEngine.summary().
    slo: Dict[str, float] = field(default_factory=dict)
    #: Recorded offered arrival rate (open-loop runs; 0.0 closed-loop).
    offered_rate: float = 0.0
    #: Canonical digest of the simulated outcome (:func:`run_fingerprint`).
    fingerprint: str = ""
    #: Host seconds the producing process spent inside ``run_benchmark``.
    wall_clock_s: float = 0.0
    events_processed: int = 0
    #: ``ru_maxrss`` of the producing process, in KB (0 if unknown).
    peak_rss_kb: int = 0

    # The live handles never survive transport; keeping the attribute
    # names (always None) preserves duck-typing with RunResult for
    # report/export/chaos consumers.
    system = None
    obs = None
    injector = None
    ledger = None

    def latency(self, txn_type: Optional[str] = None) -> LatencySummary:
        return self.metrics.latency(txn_type)

    def portable(self) -> "RunSummary":
        """Already portable; returns self (mirrors RunResult.portable)."""
        return self


def summarize(result) -> RunSummary:
    """Build the portable :class:`RunSummary` of a live run."""
    shares: Dict[str, float] = {}
    obs = getattr(result, "obs", None)
    if obs is not None and obs.enabled and result.metrics.commits:
        from repro.obs.attribution import AttributionReport

        report = AttributionReport.from_result(result, keep_segments=False)
        shares = {
            category: round(share, 9)
            for category, share in report.shares().items()
        }
    mastery: Dict[str, float] = {}
    ledger = getattr(result, "ledger", None)
    if ledger is not None and ledger.enabled:
        mastery = ledger.summary()
    elif getattr(result, "mastery", None):
        mastery = dict(result.mastery)  # re-summarizing a RunSummary
    slo_verdict: Dict[str, float] = {}
    slo = getattr(result, "slo", None)
    if slo is not None:
        if getattr(slo, "enabled", False):
            slo_verdict = slo.summary()
        elif isinstance(slo, dict):
            slo_verdict = dict(slo)  # re-summarizing a RunSummary
    return RunSummary(
        system_name=result.system_name,
        workload_name=result.workload_name,
        num_clients=result.num_clients,
        duration_ms=result.duration_ms,
        warmup_ms=result.warmup_ms,
        metrics=result.metrics,
        throughput=result.throughput,
        remaster_rate=result.remaster_rate,
        route_fractions=list(result.route_fractions),
        traffic_bytes=dict(result.traffic_bytes),
        site_utilization=list(result.site_utilization),
        abort_rate=result.abort_rate,
        aborts_by_type=dict(result.aborts_by_type),
        aborts_by_reason=dict(result.aborts_by_reason),
        fault_events=list(result.fault_events),
        timelines=dict(result.timelines),
        attribution_shares=shares,
        mastery=mastery,
        slo=slo_verdict,
        offered_rate=getattr(result, "offered_rate", 0.0),
        fingerprint=run_fingerprint(result),
        wall_clock_s=result.wall_clock_s,
        events_processed=result.events_processed,
        peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    )


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class SpecExecutionError(RuntimeError):
    """One work item failed; carries the item and the worker traceback.

    Raised parent-side only (never pickled across the pool), so it can
    reference the original spec object directly.
    """

    def __init__(self, item, message: str, worker_traceback: str = ""):
        described = getattr(item, "describe", lambda: repr(item))()
        super().__init__(f"worker failed for {described}: {message}")
        self.item = item
        self.worker_traceback = worker_traceback


def _invoke(fn, item):
    """Worker-side wrapper: never lets an exception cross the pipe raw.

    Exceptions are folded to plain strings because arbitrary exception
    objects may not survive pickling (a failure to unpickle a failure
    would surface as an opaque ``BrokenProcessPool``).
    """
    try:
        return ("ok", fn(item))
    except BaseException as exc:  # noqa: BLE001 — reported, not swallowed
        return ("err", f"{type(exc).__name__}: {exc}", traceback.format_exc())


class ParallelExecutor:
    """Deterministic fan-out of picklable callables over processes.

    ``jobs=1`` never touches multiprocessing: items run in-process, in
    order, on exactly the code path the pre-parallel drivers used. With
    ``jobs>1`` a spawn-context pool executes items concurrently, and
    results are returned **in submission order** regardless of
    completion order — determinism of the output list is part of the
    contract, not a scheduling accident.

    ``on_error="raise"`` (default) raises :class:`SpecExecutionError`
    for the first failing item *after* letting every other item finish,
    so one bad spec cannot poison the rest of a matrix mid-flight;
    ``on_error="collect"`` returns the error objects in the failing
    items' slots instead of raising.
    """

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(
        self,
        fn: Callable,
        items: Sequence,
        on_error: str = "raise",
    ) -> List:
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
        if self.jobs == 1 or len(items) <= 1:
            outcomes = [self._run_serial(fn, item) for item in items]
        else:
            outcomes = self._run_pool(fn, items)
        if on_error == "raise":
            for outcome in outcomes:
                if isinstance(outcome, SpecExecutionError):
                    raise outcome
        return outcomes

    def _run_serial(self, fn, item):
        try:
            return fn(item)
        except Exception as exc:  # noqa: BLE001
            return SpecExecutionError(item, f"{type(exc).__name__}: {exc}",
                                      traceback.format_exc())

    def _run_pool(self, fn, items) -> List:
        # Spawn (not fork): workers import a pristine interpreter, so
        # results cannot depend on parent-process state — the same
        # isolation property the determinism contract relies on — and
        # the engine behaves identically on macOS/Windows.
        context = get_context("spawn")
        workers = min(self.jobs, len(items))
        outcomes: List = []
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [pool.submit(_invoke, fn, item) for item in items]
            for item, future in zip(items, futures):
                try:
                    status = future.result()
                except BrokenProcessPool:
                    outcomes.append(SpecExecutionError(
                        item,
                        "worker process died abruptly (BrokenProcessPool); "
                        "the spec may have exhausted memory or crashed the "
                        "interpreter",
                    ))
                    continue
                except Exception as exc:  # noqa: BLE001
                    outcomes.append(SpecExecutionError(
                        item, f"{type(exc).__name__}: {exc}"))
                    continue
                if status[0] == "ok":
                    outcomes.append(status[1])
                else:
                    outcomes.append(SpecExecutionError(item, status[1], status[2]))
        return outcomes


def _spec_worker(spec: RunSpec) -> RunSummary:
    """Module-level worker entrypoint (must be picklable by name)."""
    return summarize(execute_spec(spec))


def execute_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    on_error: str = "raise",
) -> List[RunSummary]:
    """Execute ``specs`` and return portable summaries in spec order.

    The workhorse behind every ``--jobs`` flag: ``run_suite``,
    ``run_repeated``, the perf matrix, and chaos fan-out all reduce
    their work to a spec list and call this.
    """
    return ParallelExecutor(jobs).map(_spec_worker, specs, on_error=on_error)
