"""Run metrics: latency distributions, throughput, breakdowns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.registry import StreamingHistogram
from repro.transactions import Outcome, Transaction


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (milliseconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p90=_percentile(ordered, 0.90),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            maximum=ordered[-1],
        )

    @classmethod
    def of_histogram(cls, histogram: StreamingHistogram) -> "LatencySummary":
        """Approximate summary from a streaming histogram.

        Count, mean, and maximum are exact; percentiles carry the
        histogram's bucket error (half a bucket's relative width).
        """
        if histogram.count == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=histogram.count,
            mean=histogram.mean,
            p50=histogram.quantile(0.50),
            p90=histogram.quantile(0.90),
            p95=histogram.quantile(0.95),
            p99=histogram.quantile(0.99),
            maximum=histogram.maximum,
        )


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a pre-sorted sample."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class Metrics:
    """Collects per-transaction measurements during a run.

    With ``streaming=True``, latency samples stream into log-bucketed
    histograms instead of per-type Python lists: constant memory for
    arbitrarily long runs, at the price of small (bucket-width) error
    in the reported percentiles. The default keeps exact sample lists,
    so existing results are unchanged.
    """

    #: SLO engine observing the record stream (attached by the harness
    #: for SLO-monitored runs, detached again before the run returns).
    #: Class-level default so unmonitored runs pay one ``is None``
    #: check per record and pickled instances never carry an engine.
    slo_engine = None
    #: Per-site end-of-run admission-queue state of an open-loop run
    #: ((site, depth, shed, offered) dicts) — folded by the harness,
    #: deliberately outside the fingerprinted ``open_loop_counters``.
    open_loop_sites: tuple = ()

    def __init__(self, streaming: bool = False):
        self.streaming = streaming
        self.latencies: Dict[str, Union[List[float], StreamingHistogram]] = {}
        self.commit_times: List[float] = []
        #: Completion times of aborted txns (for availability timelines).
        self.abort_times: List[float] = []
        self.commits = 0
        self.remastered_txns = 0
        self.distributed_txns = 0
        self.phase_totals: Dict[str, float] = {}
        #: Aborted (non-committed) transactions by type.
        self.aborts: Dict[str, int] = {}
        #: Aborted transactions by reason ("conflict" / "timeout" /
        #: "site_crash"); outcomes without an explicit reason are the
        #: legacy optimistic-routing conflicts.
        self.aborts_by_reason: Dict[str, int] = {}
        #: Total retry attempts reported by aborted-and-retried txns.
        self.retries = 0
        #: Site-selector volume counters folded in by the harness at the
        #: end of a run (updates_routed / updates_remastered /
        #: remaster_operations / partitions_moved) — remaster *volume*,
        #: visible even in unobserved runs; empty for selector-less
        #: systems.
        self.selector_counters: Dict[str, int] = {}
        #: Failure-detector / hedging counters folded in by the harness
        #: for fault-injected runs (suspicion_episodes /
        #: false_suspicions / suspected_sites / hedges_launched /
        #: hedge_wins, plus detection_latency_ms / quarantine_ms when
        #: defined); empty without an installed injector.
        self.detector_counters: Dict[str, float] = {}
        #: Open-loop traffic counters folded in by the harness for
        #: open-loop runs (offered / offered_recorded / admitted / shed
        #: / taken / completed / peak_depth / mean_depth ... — see
        #: :meth:`repro.workloads.openloop.OpenLoopEngine.counters`);
        #: empty for closed-loop runs, which is what keeps closed-loop
        #: fingerprints unchanged.
        self.open_loop_counters: Dict[str, float] = {}
        #: Admission-queue waits (ms) of recorded open-loop arrivals —
        #: sample list, or a streaming histogram in streaming mode.
        self.admission_waits: Union[List[float], StreamingHistogram] = (
            StreamingHistogram("admission_wait") if streaming else []
        )

    def record(
        self,
        txn: Transaction,
        outcome: Outcome,
        latency: float,
        now: float,
    ) -> None:
        """Account one completed transaction (committed or aborted)."""
        if self.slo_engine is not None:
            self.slo_engine.observe_txn(txn, outcome, latency, now)
        self.retries += outcome.retries
        if not outcome.committed:
            self.aborts[txn.txn_type] = self.aborts.get(txn.txn_type, 0) + 1
            reason = outcome.abort_reason or "conflict"
            self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1
            self.abort_times.append(now)
            return
        self.commits += 1
        self.commit_times.append(now)
        if self.streaming:
            histogram = self.latencies.get(txn.txn_type)
            if histogram is None:
                histogram = self.latencies[txn.txn_type] = StreamingHistogram(
                    f"latency.{txn.txn_type}"
                )
            histogram.record(latency)
        else:
            self.latencies.setdefault(txn.txn_type, []).append(latency)
        if outcome.remastered:
            self.remastered_txns += 1
        if outcome.distributed:
            self.distributed_txns += 1
        accounted = 0.0
        for phase, duration in txn.timings.items():
            self.phase_totals[phase] = self.phase_totals.get(phase, 0.0) + duration
            accounted += duration
        # Anything not explicitly timed (queueing between phases).
        other = max(0.0, latency - accounted)
        self.phase_totals["other"] = self.phase_totals.get("other", 0.0) + other

    def record_admission_wait(self, wait_ms: float) -> None:
        """Account one recorded arrival's time in the admission queue.

        Open-loop latency is measured from arrival, so this wait is a
        *component* of recorded latency, kept separately because depth
        and wait are the saturation signals (docs/SCALE.md).
        """
        if self.streaming:
            self.admission_waits.record(wait_ms)
        else:
            self.admission_waits.append(wait_ms)

    # -- summaries -----------------------------------------------------------

    def admission_wait(self) -> LatencySummary:
        """Summary of recorded admission-queue waits (open-loop runs)."""
        if isinstance(self.admission_waits, StreamingHistogram):
            return LatencySummary.of_histogram(self.admission_waits)
        return LatencySummary.of(self.admission_waits)

    def admission_wait_total(self) -> float:
        """Total recorded admission wait (ms) — a stable scalar for
        fingerprints in exact mode and reports in either mode."""
        if isinstance(self.admission_waits, StreamingHistogram):
            return self.admission_waits.total
        return sum(self.admission_waits)

    def latency(self, txn_type: Optional[str] = None) -> LatencySummary:
        """Latency summary for one transaction type, or all combined."""
        if self.streaming:
            if txn_type is not None:
                histogram = self.latencies.get(txn_type)
                if histogram is None:
                    return LatencySummary.of(())
                return LatencySummary.of_histogram(histogram)
            merged: Optional[StreamingHistogram] = None
            for histogram in self.latencies.values():
                if merged is None:
                    merged = StreamingHistogram(
                        "latency", base=histogram.base, growth=histogram.growth
                    )
                merged.merge(histogram)
            if merged is None:
                return LatencySummary.of(())
            return LatencySummary.of_histogram(merged)
        if txn_type is not None:
            return LatencySummary.of(self.latencies.get(txn_type, ()))
        combined: List[float] = []
        for samples in self.latencies.values():
            combined.extend(samples)
        return LatencySummary.of(combined)

    def txn_types(self) -> List[str]:
        return sorted(self.latencies)

    def throughput(self, window_ms: float) -> float:
        """Committed transactions per simulated second."""
        if window_ms <= 0:
            return 0.0
        return self.commits / (window_ms / 1000.0)

    def timeline(self, bucket_ms: float, start: float, end: float) -> List[tuple]:
        """(bucket start, txn/s) series — the adaptivity figure."""
        if bucket_ms <= 0 or end <= start:
            return []
        buckets = int((end - start) // bucket_ms) + 1
        counts = [0] * buckets
        for time in self.commit_times:
            if start <= time < end:
                counts[int((time - start) // bucket_ms)] += 1
        return [
            (start + index * bucket_ms, count / (bucket_ms / 1000.0))
            for index, count in enumerate(counts)
        ]

    def breakdown(self) -> Dict[str, float]:
        """Phase -> fraction of total accounted latency (Figure 7)."""
        total = sum(self.phase_totals.values())
        if total <= 0:
            return {}
        return {
            phase: duration / total
            for phase, duration in sorted(self.phase_totals.items())
        }

    def remaster_fraction(self) -> float:
        """Fraction of committed txns that needed remastering/shipping."""
        if self.commits == 0:
            return 0.0
        return self.remastered_txns / self.commits

    def to_prometheus(self, labels: Optional[Dict[str, str]] = None) -> str:
        """Render these metrics in Prometheus text exposition format.

        Commit/abort/retry counts become counters (aborts labelled by
        transaction type and reason), phase totals a counter labelled
        by phase, and per-type latencies ``repro_latency_ms``
        histograms (exact sample lists are streamed into the standard
        log-bucketed geometry first, so both collection modes expose
        the same shape). ``labels`` are attached to every sample.
        """
        from repro.obs.registry import (
            _format_labels,
            _format_value,
            _merge_labels,
        )

        lines: List[str] = []

        def counter(name: str, samples: List[Tuple[Dict[str, str], float]]) -> None:
            lines.append(f"# TYPE {name} counter")
            for extra, value in samples:
                merged = _merge_labels(labels, extra)
                lines.append(f"{name}{_format_labels(merged)} {_format_value(value)}")

        counter("repro_commits_total", [({}, self.commits)])
        counter("repro_remastered_txns_total", [({}, self.remastered_txns)])
        counter("repro_distributed_txns_total", [({}, self.distributed_txns)])
        counter("repro_retries_total", [({}, self.retries)])
        for name in ("updates_routed", "updates_remastered",
                     "remaster_operations", "partitions_moved"):
            if name in self.selector_counters:
                counter(f"repro_selector_{name}_total",
                        [({}, self.selector_counters[name])])
        for name in ("suspicion_episodes", "false_suspicions",
                     "hedges_launched", "hedge_wins"):
            if name in self.detector_counters:
                counter(f"repro_detector_{name}_total",
                        [({}, self.detector_counters[name])])
        for name in ("suspected_sites", "detection_latency_ms", "quarantine_ms"):
            if name in self.detector_counters:
                lines.append(f"# TYPE repro_detector_{name} gauge")
                merged = _merge_labels(labels, {})
                lines.append(
                    f"repro_detector_{name}{_format_labels(merged)} "
                    f"{_format_value(self.detector_counters[name])}"
                )
        if self.open_loop_counters:
            for name in ("offered", "admitted", "shed", "taken", "completed"):
                if name in self.open_loop_counters:
                    counter(f"repro_openloop_{name}_total",
                            [({}, self.open_loop_counters[name])])
            for name in ("in_flight", "queued_end", "peak_depth",
                         "mean_depth", "modeled_clients"):
                if name in self.open_loop_counters:
                    lines.append(f"# TYPE repro_openloop_{name} gauge")
                    merged = _merge_labels(labels, {})
                    lines.append(
                        f"repro_openloop_{name}{_format_labels(merged)} "
                        f"{_format_value(self.open_loop_counters[name])}"
                    )
        if self.open_loop_sites:
            lines.append("# TYPE repro_openloop_queue_depth gauge")
            for entry in self.open_loop_sites:
                merged = _merge_labels(labels, {"site": str(entry["site"])})
                lines.append(
                    f"repro_openloop_queue_depth{_format_labels(merged)} "
                    f"{_format_value(entry['depth'])}"
                )
            counter("repro_openloop_queue_shed_total", [
                ({"site": str(entry["site"])}, entry["shed"])
                for entry in self.open_loop_sites
            ])
        wait_count = (
            self.admission_waits.count
            if isinstance(self.admission_waits, StreamingHistogram)
            else len(self.admission_waits)
        )
        if wait_count:
            if isinstance(self.admission_waits, StreamingHistogram):
                waits = self.admission_waits
            else:
                waits = StreamingHistogram("admission_wait")
                for sample in self.admission_waits:
                    waits.record(sample)
            lines.append("# TYPE repro_admission_wait_ms histogram")
            series = _merge_labels(labels, {})
            cumulative = 0
            for lower, count in waits.bucket_counts():
                cumulative += count
                upper = waits.base if lower == 0.0 else lower * waits.growth
                bucket = _merge_labels(series, {"le": _format_value(upper)})
                lines.append(
                    f"repro_admission_wait_ms_bucket{_format_labels(bucket)} "
                    f"{cumulative}"
                )
            inf_bucket = _merge_labels(series, {"le": "+Inf"})
            lines.append(
                f"repro_admission_wait_ms_bucket{_format_labels(inf_bucket)} "
                f"{waits.count}"
            )
            lines.append(
                f"repro_admission_wait_ms_sum{_format_labels(series)} "
                f"{_format_value(waits.total)}"
            )
            lines.append(
                f"repro_admission_wait_ms_count{_format_labels(series)} "
                f"{waits.count}"
            )
        if self.aborts:
            counter("repro_aborts_total", [
                ({"txn_type": txn_type}, count)
                for txn_type, count in sorted(self.aborts.items())
            ])
        if self.aborts_by_reason:
            counter("repro_aborts_by_reason_total", [
                ({"reason": reason}, count)
                for reason, count in sorted(self.aborts_by_reason.items())
            ])
        if self.phase_totals:
            counter("repro_phase_ms_total", [
                ({"phase": phase}, total)
                for phase, total in sorted(self.phase_totals.items())
            ])
        if self.latencies:
            lines.append("# TYPE repro_latency_ms histogram")
        for txn_type in self.txn_types():
            samples = self.latencies[txn_type]
            if isinstance(samples, StreamingHistogram):
                histogram = samples
            else:
                histogram = StreamingHistogram(f"latency.{txn_type}")
                for sample in samples:
                    histogram.record(sample)
            series = _merge_labels(labels, {"txn_type": txn_type})
            cumulative = 0
            for lower, count in histogram.bucket_counts():
                cumulative += count
                upper = (
                    histogram.base if lower == 0.0
                    else lower * histogram.growth
                )
                bucket = _merge_labels(series, {"le": _format_value(upper)})
                lines.append(
                    f"repro_latency_ms_bucket{_format_labels(bucket)} {cumulative}"
                )
            inf_bucket = _merge_labels(series, {"le": "+Inf"})
            lines.append(
                f"repro_latency_ms_bucket{_format_labels(inf_bucket)} "
                f"{histogram.count}"
            )
            lines.append(
                f"repro_latency_ms_sum{_format_labels(series)} "
                f"{_format_value(histogram.total)}"
            )
            lines.append(
                f"repro_latency_ms_count{_format_labels(series)} {histogram.count}"
            )
        return "\n".join(lines) + "\n" if lines else ""

    # -- aborts ---------------------------------------------------------------

    @property
    def abort_count(self) -> int:
        """Total aborted transactions recorded."""
        return sum(self.aborts.values())

    def abort_rate(self) -> float:
        """Fraction of recorded transactions that aborted."""
        total = self.commits + self.abort_count
        if total == 0:
            return 0.0
        return self.abort_count / total

    def abort_breakdown(self) -> List[Tuple[str, int]]:
        """(txn type, abort count) pairs, most aborted first."""
        return sorted(self.aborts.items(), key=lambda item: (-item[1], item[0]))
