"""Export benchmark results as JSON/CSV for downstream analysis.

The figure benchmarks print human tables; this module serializes
:class:`~repro.bench.harness.RunResult` objects (and dictionaries of
them, as the experiment drivers return) into plain data suitable for
plotting pipelines.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping

from repro.bench.harness import RunResult
from repro.bench.parallel import RunSummary

#: Columns exported for each run.
FIELDS = (
    "system",
    "workload",
    "clients",
    "throughput",
    "mean_ms",
    "p50_ms",
    "p90_ms",
    "p99_ms",
    "remaster_rate",
    "remastered_fraction",
    "distributed_fraction",
    "abort_rate",
    "aborts",
    "aborts_conflict",
    "aborts_timeout",
    "aborts_site_crash",
    "max_site_utilization",
    "updates_routed",
    "updates_remastered",
    "remaster_operations",
    "partitions_moved",
    "suspicion_episodes",
    "false_suspicions",
    "hedges_launched",
    "hedge_wins",
    "detection_latency_ms",
    "quarantine_ms",
)


def run_to_row(result: RunResult) -> Dict[str, object]:
    """Flatten one run into an export row."""
    latency = result.latency()
    metrics = result.metrics
    commits = max(1, metrics.commits)
    return {
        "system": result.system_name,
        "workload": result.workload_name,
        "clients": result.num_clients,
        "throughput": round(result.throughput, 2),
        "mean_ms": round(latency.mean, 4),
        "p50_ms": round(latency.p50, 4),
        "p90_ms": round(latency.p90, 4),
        "p99_ms": round(latency.p99, 4),
        "remaster_rate": round(result.remaster_rate, 5),
        "remastered_fraction": round(metrics.remaster_fraction(), 5),
        "distributed_fraction": round(metrics.distributed_txns / commits, 5),
        "abort_rate": round(metrics.abort_rate(), 5),
        "aborts": metrics.abort_count,
        "aborts_conflict": metrics.aborts_by_reason.get("conflict", 0),
        "aborts_timeout": metrics.aborts_by_reason.get("timeout", 0),
        "aborts_site_crash": metrics.aborts_by_reason.get("site_crash", 0),
        "max_site_utilization": round(max(result.site_utilization, default=0.0), 4),
        # Selector volume counters (0 for selector-less systems).
        "updates_routed": metrics.selector_counters.get("updates_routed", 0),
        "updates_remastered": metrics.selector_counters.get("updates_remastered", 0),
        "remaster_operations": metrics.selector_counters.get("remaster_operations", 0),
        "partitions_moved": metrics.selector_counters.get("partitions_moved", 0),
        # Failure-detector counters (0 for unfaulted runs).
        "suspicion_episodes": metrics.detector_counters.get("suspicion_episodes", 0),
        "false_suspicions": metrics.detector_counters.get("false_suspicions", 0),
        "hedges_launched": metrics.detector_counters.get("hedges_launched", 0),
        "hedge_wins": metrics.detector_counters.get("hedge_wins", 0),
        # Blank (not 0) when the detector never suspected / no fault was
        # planned — absence of a measurement, not a zero measurement.
        "detection_latency_ms": metrics.detector_counters.get(
            "detection_latency_ms", ""
        ),
        "quarantine_ms": metrics.detector_counters.get("quarantine_ms", ""),
    }


def attach_attribution(row: Dict[str, object], result: RunResult) -> None:
    """Add ``attrib_<category>_share`` columns for an observed run.

    No-op for unobserved runs, so plain bench exports keep their exact
    schema; observed exports gain one share column per attribution
    category (summing to ~1.0). Portable :class:`RunSummary` objects
    carry their shares pre-folded (the live tracer stayed in the worker
    process), so those are exported directly.
    """
    shares = getattr(result, "attribution_shares", None)
    if shares is None:
        if result.obs is None or not result.obs.enabled:
            return
        from repro.obs.attribution import AttributionReport

        report = AttributionReport.from_result(result, keep_segments=False)
        shares = report.shares()
    for category, share in shares.items():
        row[f"attrib_{category}_share"] = round(share, 5)


def attach_open_loop(row: Dict[str, object], result: RunResult) -> None:
    """Add ``openloop_*`` columns for an open-loop run.

    No-op for closed-loop runs, preserving their exact export schema.
    Open-loop rows gain the capacity-planning columns: recorded offered
    rate, goodput ratio (commits / recorded arrivals — the saturation
    signal), shed arrivals, admission-wait p50/p99, and queue depths.
    """
    metrics = result.metrics
    counters = getattr(metrics, "open_loop_counters", None)
    if not counters:
        return
    from repro.workloads.openloop import goodput_ratio

    window = result.duration_ms - result.warmup_ms
    wait = metrics.admission_wait()
    ratio = goodput_ratio(counters, metrics.commits)
    row["openloop_offered_tps"] = round(
        counters["offered_recorded"] / window * 1000.0, 2
    ) if window > 0 else 0.0
    row["openloop_goodput_ratio"] = round(ratio, 5) if ratio is not None else ""
    row["openloop_shed"] = int(counters.get("shed", 0))
    row["openloop_queued_end"] = int(counters.get("queued_end", 0))
    row["openloop_peak_depth"] = int(counters.get("peak_depth", 0))
    row["openloop_mean_depth"] = round(counters.get("mean_depth", 0.0), 4)
    row["openloop_wait_p50_ms"] = round(wait.p50, 4)
    row["openloop_wait_p99_ms"] = round(wait.p99, 4)
    row["openloop_modeled_clients"] = int(counters.get("modeled_clients", 0))


def attach_mastery(row: Dict[str, object], result: RunResult) -> None:
    """Add ``mastery_<metric>`` columns for a ledger-observed run.

    No-op when no decision ledger was attached, keeping plain exports'
    exact schema. Live results summarize their ledger here; portable
    :class:`RunSummary` objects carry the scalars pre-folded (the
    ledger stayed in the worker process).
    """
    summary = getattr(result, "mastery", None)
    if not summary:
        ledger = getattr(result, "ledger", None)
        if ledger is None or not ledger.enabled:
            return
        summary = ledger.summary()
    for name in ("locality_share", "entropy", "churn_partitions",
                 "ping_pong_partitions", "ping_pong_bounces",
                 "convergence_ms"):
        row[f"mastery_{name}"] = summary[name]


def attach_slo(row: Dict[str, object], result: RunResult) -> None:
    """Add ``slo_<metric>`` columns for an SLO-monitored run.

    No-op when no SLO engine watched the run, keeping plain exports'
    exact schema. Live results summarize their engine here; portable
    :class:`RunSummary` objects carry the verdict scalars pre-folded
    (the engine stayed in the worker process).
    """
    slo = getattr(result, "slo", None)
    if slo is None:
        return
    if getattr(slo, "enabled", False):
        summary = slo.summary()
    elif isinstance(slo, Mapping) and slo:
        summary = slo
    else:
        return
    for name, value in sorted(summary.items()):
        row[f"slo_{name}"] = value


def rows_from(results) -> List[Dict[str, object]]:
    """Flatten a RunResult/RunSummary, a mapping of them, or nested mappings."""
    if isinstance(results, (RunResult, RunSummary)):
        row = run_to_row(results)
        attach_attribution(row, results)
        attach_open_loop(row, results)
        attach_mastery(row, results)
        attach_slo(row, results)
        return [row]
    if isinstance(results, Mapping):
        rows: List[Dict[str, object]] = []
        for key, value in results.items():
            for row in rows_from(value):
                row.setdefault("label", str(key))
                rows.append(row)
        return rows
    raise TypeError(f"cannot export {type(results).__name__}")


def to_json(results, indent: int = 2) -> str:
    """Serialize results to a JSON string."""
    return json.dumps(rows_from(results), indent=indent, sort_keys=True)


def to_csv(results) -> str:
    """Serialize results to a CSV string."""
    rows = rows_from(results)
    fields = list(FIELDS)
    if any("label" in row for row in rows):
        fields = ["label"] + fields
    # Observed runs carry attribution share and mastering columns; keep
    # the column set stable across rows by taking the union in order.
    attrib = sorted({
        key for row in rows for key in row if key.startswith("attrib_")
    })
    fields += attrib
    fields += sorted({
        key for row in rows for key in row if key.startswith("openloop_")
    })
    fields += sorted({
        key for row in rows for key in row if key.startswith("mastery_")
    })
    fields += sorted({
        key for row in rows for key in row if key.startswith("slo_")
    })
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_json(results, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_json(results))


def write_csv(results, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_csv(results))
