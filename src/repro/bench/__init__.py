"""Benchmark harness: clients, metrics, experiment drivers.

:func:`~repro.bench.harness.run_benchmark` assembles a cluster, a
system, and a workload, drives ``num_clients`` closed-loop clients for
a simulated duration, and returns a :class:`~repro.bench.harness.RunResult`
with throughput, per-transaction-type latency distributions, the
latency breakdown of Figure 7, remastering/2PC/shipping counts, and
network traffic by category. Passing an
:class:`~repro.workloads.openloop.OpenLoopSpec` switches the run to
open-loop traffic — rate-curve arrivals through per-site admission
queues, with 100k+ modeled clients aggregated into one pool — and
:mod:`repro.bench.scale` pins saturation-knee cases at that scale
(``repro perf --scale``).

Every table and figure of the paper's evaluation has a driver in
:mod:`repro.bench.experiments`, exercised by the ``benchmarks/`` tree.
"""

from repro.bench.harness import RunResult, run_benchmark
from repro.bench.parallel import (
    ParallelExecutor,
    RunSpec,
    RunSummary,
    SpecExecutionError,
    WorkloadSpec,
    execute_specs,
    run_fingerprint,
)
from repro.bench.repeat import Estimate, RepeatedResult, run_repeated
from repro.bench.scale import SCALE_MATRIX, ScaleCase, find_knee
from repro.bench.metrics import LatencySummary, Metrics
from repro.bench.report import format_row, print_run_report, print_table

__all__ = [
    "Estimate",
    "LatencySummary",
    "Metrics",
    "ParallelExecutor",
    "RepeatedResult",
    "RunResult",
    "RunSpec",
    "RunSummary",
    "SCALE_MATRIX",
    "ScaleCase",
    "SpecExecutionError",
    "find_knee",
    "WorkloadSpec",
    "execute_specs",
    "run_fingerprint",
    "run_repeated",
    "format_row",
    "print_run_report",
    "print_table",
    "run_benchmark",
]
