"""Wall-clock performance regression harness (``repro perf``).

Runs a pinned matrix of (system x workload x scale) configurations on
the real benchmark harness, measures *host* cost — wall-clock seconds,
simulated-events per host second, peak RSS — and writes the results to
``BENCH_perf.json`` at the repo root in a stable, versioned schema.
``--check`` compares a fresh run against the committed report and exits
nonzero when any case regresses past the tolerance band; CI runs this
on the ``--quick`` subset as the perf-smoke job.

Two things keep cross-machine comparison honest:

* a **calibration score** (kops/s of a fixed pure-Python loop) is
  stored with every report; checks normalize wall-clock by the ratio of
  calibration scores, so a slower CI runner is not flagged as a
  regression;
* the matrix is **pinned** — the cases, seeds, and workload knobs below
  are part of the schema. Changing them invalidates comparisons, so any
  edit must also refresh the committed ``BENCH_perf.json`` (see
  EXPERIMENTS.md, "Performance baseline").

This module (with :mod:`repro.bench.harness`) is a blessed wall-clock
reader: host time is its subject matter. It never feeds host time back
into a simulation, so simulated results stay a pure function of the
seed; the fingerprint tests in ``tests/test_faults_injection.py`` and
``tests/test_perf_identity.py`` are the proof.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from functools import partial

from repro.bench.harness import run_benchmark
from repro.bench.parallel import ParallelExecutor, run_fingerprint
from repro.sim.config import ClusterConfig
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

#: Bump when the report layout or the pinned matrix changes shape.
#: /2: per-case ``wall_total_s`` (sum over repeats, measured inside the
#: executing process) and the ``machine.parallel`` block recording the
#: serial-vs-parallel speedup of the matrix.
#: /3: ``machine.parallel`` gains ``host_cores``, ``limited_by_host``
#: and a ``sweep`` list (one row per jobs level of a ``--cores`` run,
#: with elapsed, worker-concurrency speedup, and the honest cross-level
#: ``fanout_speedup`` = elapsed@jobs=1 / elapsed@jobs=j).
SCHEMA = "repro-perf/3"

#: Schemas acceptable as a *baseline* (``--baseline-from`` and the
#: ``--check`` committed report): the comparison only needs per-case
#: walls and the calibration score, both present since /2.
BASELINE_SCHEMAS = ("repro-perf/2", SCHEMA)

#: Where ``repro perf`` writes (and ``--check`` reads) by default.
DEFAULT_REPORT = "BENCH_perf.json"

#: Default regression tolerance band for ``--check`` (fraction).
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class PerfCase:
    """One pinned cell of the perf matrix."""

    name: str
    system: str
    workload: str
    clients: int
    duration_ms: float
    sites: int
    seed: int = 11

    def build_workload(self):
        # Workload knobs are pinned here, not taken from the CLI: the
        # matrix must mean the same thing in every report it is
        # compared against.
        if self.workload == "ycsb":
            return YCSBWorkload(YCSBConfig(
                num_partitions=200, rmw_fraction=0.5, zipf_theta=0.5,
            ))
        if self.workload == "ycsb-skew":
            return YCSBWorkload(YCSBConfig(
                num_partitions=200, rmw_fraction=0.5, zipf_theta=0.9,
            ))
        if self.workload == "tpcc":
            return TPCCWorkload(TPCCConfig(warehouses=4, items=1000))
        if self.workload == "smallbank":
            return SmallBankWorkload(SmallBankConfig(users=4000))
        raise ValueError(f"unknown perf workload {self.workload!r}")


#: The pinned matrix: every system on the shared YCSB scale, plus
#: skew / multi-workload / larger-scale cells for the primary system.
PERF_MATRIX: Sequence[PerfCase] = (
    PerfCase("dynamast-ycsb", "dynamast", "ycsb", 16, 800.0, 3),
    PerfCase("single-master-ycsb", "single-master", "ycsb", 16, 800.0, 3),
    PerfCase("multi-master-ycsb", "multi-master", "ycsb", 16, 800.0, 3),
    PerfCase("partition-store-ycsb", "partition-store", "ycsb", 16, 800.0, 3),
    PerfCase("leap-ycsb", "leap", "ycsb", 16, 800.0, 3),
    PerfCase("dynamast-ycsb-skew", "dynamast", "ycsb-skew", 16, 800.0, 3),
    PerfCase("dynamast-tpcc", "dynamast", "tpcc", 16, 800.0, 3),
    PerfCase("dynamast-smallbank", "dynamast", "smallbank", 16, 800.0, 3),
    PerfCase("dynamast-ycsb-large", "dynamast", "ycsb", 32, 1500.0, 4),
)

#: CI subset: one cheap cell per distinct code path family.
QUICK_CASES = ("dynamast-ycsb", "multi-master-ycsb", "dynamast-tpcc")


def calibrate(loops: int = 200_000, rounds: int = 3) -> float:
    """Score this host: kops/s of a fixed pure-Python integer loop.

    Best-of-``rounds`` to shrug off scheduler noise. The loop is
    deliberately interpreter-bound (no allocation, no C fast paths) so
    the score tracks the same resource the simulator burns.
    """
    best = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc = (acc * 31 + i) % 1_000_003
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, loops / elapsed / 1000.0)
    return round(best, 1)


def run_case(case: PerfCase, repeats: int = 3) -> Dict:
    """Run one matrix cell ``repeats`` times; keep the best wall-clock.

    Minimum-of-repeats is the standard for wall benchmarks: noise only
    ever adds time. Simulated quantities (events, commits) are
    identical across repeats by the determinism contract.

    Every wall measurement happens *inside the executing process* (it
    is ``RunResult.wall_clock_s`` from the harness), so under ``--jobs``
    the per-case numbers stay directly comparable to serial ones and
    the ``--check`` tolerance band keeps meaning what it always meant.
    ``wall_total_s`` (all repeats) is what a serial sweep would have
    spent on this cell — the numerator of the recorded speedup.
    """
    best = None
    total_wall = 0.0
    for _ in range(repeats):
        result = run_benchmark(
            case.system,
            case.build_workload(),
            num_clients=case.clients,
            duration_ms=case.duration_ms,
            warmup_ms=case.duration_ms / 4,
            cluster_config=ClusterConfig(num_sites=case.sites),
            seed=case.seed,
        )
        total_wall += result.wall_clock_s
        if best is None or result.wall_clock_s < best.wall_clock_s:
            best = result
    wall = best.wall_clock_s
    return {
        "system": case.system,
        "workload": case.workload,
        "clients": case.clients,
        "sites": case.sites,
        "duration_ms": case.duration_ms,
        "seed": case.seed,
        "wall_s": round(wall, 4),
        "wall_total_s": round(total_wall, 4),
        #: Canonical digest of the simulated outcome; identical across
        #: repeats, hosts, and serial/parallel execution.
        "fingerprint": run_fingerprint(best),
        "sim_events": best.events_processed,
        "events_per_s": round(best.events_processed / wall) if wall else 0,
        "commits": best.metrics.commits,
        #: In a worker process this is that worker's high-water mark,
        #: aggregated max-across-workers (never summed) by run_matrix.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def select_cases(quick: bool = False) -> List[PerfCase]:
    if quick:
        return [case for case in PERF_MATRIX if case.name in QUICK_CASES]
    return list(PERF_MATRIX)


def run_matrix(
    cases: Sequence[PerfCase],
    repeats: int = 3,
    progress=None,
    jobs: int = 1,
) -> Dict:
    """Run ``cases`` and assemble the report payload.

    ``jobs > 1`` fans the cases over worker processes (spawn context,
    deterministic case order). Simulated quantities are bit-identical
    to a serial sweep by the determinism contract; per-case walls are
    still measured inside each worker, and peak RSS is aggregated as
    the max across workers, never a sum. The ``machine.parallel`` block
    records the measured end-to-end speedup: serial-equivalent seconds
    (the sum of in-worker walls, i.e. what ``--jobs 1`` would have
    cost) over elapsed seconds.

    Honesty note on that speedup figure: it measures *this host's*
    concurrency, not the engine's. The committed ``BENCH_perf.json``
    is generated at ``--jobs 1`` on a **one-core** host (see
    ``machine.cpu_count``), so its pinned ``parallel.speedup`` is
    exactly 1.0 — a statement that no parallelism was attempted, not
    that none is available. On a one-core host ``jobs > 1`` can only
    timeshare: serial-equivalent inflates while elapsed barely moves,
    and the ratio reads as time-sharing overhead (see EXPERIMENTS.md,
    "Parallel execution", for the measured table and why the baseline
    is therefore always refreshed serially).
    """
    calibration = calibrate()
    results, elapsed = _run_cases(cases, repeats, jobs, progress)
    serial_equivalent = sum(row["wall_total_s"] for row in results.values())
    return {
        "schema": SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
            "calibration_kops": calibration,
            "parallel": {
                "jobs": jobs,
                "elapsed_s": round(elapsed, 4),
                "serial_equivalent_s": round(serial_equivalent, 4),
                "speedup": round(serial_equivalent / elapsed, 3) if elapsed else 0.0,
                "peak_rss_kb_max_worker": max(
                    (row["peak_rss_kb"] for row in results.values()), default=0
                ),
            },
        },
        "settings": {"repeats": repeats, "jobs": jobs},
        "cases": results,
    }


def _run_cases(
    cases: Sequence[PerfCase],
    repeats: int,
    jobs: int,
    progress=None,
) -> tuple:
    """Execute ``cases`` at one jobs level; (results, elapsed seconds)."""
    results: Dict[str, Dict] = {}
    started = time.perf_counter()
    if jobs > 1:
        measured_rows = ParallelExecutor(jobs).map(
            partial(run_case, repeats=repeats), list(cases),
        )
        for case, measured in zip(cases, measured_rows):
            results[case.name] = measured
            if progress is not None:
                progress(case.name, measured)
    else:
        for case in cases:
            measured = run_case(case, repeats=repeats)
            results[case.name] = measured
            if progress is not None:
                progress(case.name, measured)
    return results, time.perf_counter() - started


def sweep_levels(cores: int) -> List[int]:
    """The jobs levels a ``--cores N`` sweep runs: {1, 2, N}, sorted."""
    if cores < 1:
        raise ValueError(f"--cores must be >= 1, got {cores}")
    return sorted({1, 2, cores} if cores >= 2 else {1})


def run_sweep(
    cases: Sequence[PerfCase],
    repeats: int = 3,
    cores: int = 2,
    progress=None,
    emit=print,
    executor=_run_cases,
) -> Dict:
    """Run the matrix at each sweep level and assemble a /3 report.

    The jobs=1 pass supplies the canonical per-case rows (walls measured
    serially, exactly like a plain run). Higher levels re-run the same
    cases fanned over worker processes, verify **fingerprint parity**
    (every simulated outcome bit-identical to the serial pass), and
    contribute one sweep row each:

    * ``speedup`` — serial-equivalent over elapsed *within* the level,
      the worker-concurrency measure the /2 ``parallel`` block always
      recorded. On a host with fewer cores than workers this measures
      time-sharing, not hardware: in-worker walls inflate while elapsed
      stays put, so it exceeds 1 even on one core.
    * ``fanout_speedup`` — elapsed@jobs=1 over elapsed@jobs=j, the
      honest wall-clock win of fanning out on *this* host. On a
      one-core host it hovers at or below 1; this is the number the CI
      parity gate asserts ≥ 1.3 on its multi-core runners.
    * ``efficiency`` — ``fanout_speedup / jobs``.

    ``limited_by_host`` is set when any level used more workers than
    the host has cores, so a reader can tell a pinned 1.0 apart from a
    measured one. ``executor`` is injectable for unit tests.
    """
    calibration = calibrate()
    levels = sweep_levels(cores)
    host_cores = os.cpu_count() or 1
    sweep: List[Dict] = []
    baseline_results: Dict[str, Dict] = {}
    baseline_elapsed = 0.0
    for level in levels:
        results, elapsed = executor(
            cases, repeats, level, progress if level == 1 else None,
        )
        if level == 1:
            baseline_results = results
            baseline_elapsed = elapsed
        else:
            mismatched = [
                name for name, row in results.items()
                if row["fingerprint"] != baseline_results[name]["fingerprint"]
            ]
            if mismatched:
                raise RuntimeError(
                    "fingerprint parity violated at jobs="
                    f"{level}: {', '.join(sorted(mismatched))}"
                )
        serial_equivalent = sum(r["wall_total_s"] for r in results.values())
        fanout = baseline_elapsed / elapsed if elapsed else 0.0
        sweep.append({
            "jobs": level,
            "elapsed_s": round(elapsed, 4),
            "serial_equivalent_s": round(serial_equivalent, 4),
            "speedup": round(serial_equivalent / elapsed, 3) if elapsed else 0.0,
            "fanout_speedup": round(fanout, 3),
            "efficiency": round(fanout / level, 3) if level else 0.0,
        })
        if emit is not None:
            emit(f"  sweep jobs={level}: {elapsed:.1f}s elapsed, "
                 f"fan-out x{fanout:.2f}, "
                 f"worker-concurrency x{sweep[-1]['speedup']:.2f}")
    best = max(sweep, key=lambda row: row["speedup"])
    return {
        "schema": SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
            "calibration_kops": calibration,
            "parallel": {
                "jobs": best["jobs"],
                "elapsed_s": best["elapsed_s"],
                "serial_equivalent_s": best["serial_equivalent_s"],
                "speedup": best["speedup"],
                "host_cores": host_cores,
                "limited_by_host": max(levels) > host_cores,
                "sweep": sweep,
                "peak_rss_kb_max_worker": max(
                    (row["peak_rss_kb"] for row in baseline_results.values()),
                    default=0,
                ),
            },
        },
        "settings": {"repeats": repeats, "jobs": 1, "cores": cores},
        "cases": baseline_results,
    }


def attach_baseline(payload: Dict, baseline: Dict, label: str) -> None:
    """Embed ``baseline`` (another report) and the speedup comparison.

    Used when refreshing ``BENCH_perf.json`` after substrate work: the
    pre-change report rides along as documentation of the win.
    """
    payload["baseline"] = {
        "label": label,
        "generated_at": baseline.get("generated_at"),
        "calibration_kops": baseline["machine"]["calibration_kops"],
        "cases": {
            name: {
                "wall_s": case["wall_s"],
                "events_per_s": case["events_per_s"],
                "peak_rss_kb": case.get("peak_rss_kb"),
            }
            for name, case in baseline["cases"].items()
        },
    }
    per_case = {}
    speedups = []
    for name, current in payload["cases"].items():
        base = baseline["cases"].get(name)
        if base is None:
            continue
        normalized = _normalize(
            current["wall_s"],
            payload["machine"]["calibration_kops"],
            baseline["machine"]["calibration_kops"],
        )
        speedup = base["wall_s"] / normalized if normalized else 0.0
        reduction = 1.0 - normalized / base["wall_s"] if base["wall_s"] else 0.0
        per_case[name] = {
            "baseline_wall_s": base["wall_s"],
            "normalized_wall_s": round(normalized, 4),
            "speedup": round(speedup, 3),
            "wall_reduction": round(reduction, 4),
        }
        speedups.append(reduction)
    payload["comparison"] = {
        "vs": label,
        "per_case": per_case,
        "mean_wall_reduction": (
            round(sum(speedups) / len(speedups), 4) if speedups else 0.0
        ),
    }


def _normalize(wall_s: float, current_kops: float, baseline_kops: float) -> float:
    """Express ``wall_s`` in baseline-machine seconds.

    A host twice as fast (2x calibration) would finish the same work in
    half the time; multiplying by the kops ratio undoes that, so the
    tolerance band measures the *code*, not the machine.
    """
    if not current_kops or not baseline_kops:
        return wall_s
    return wall_s * (current_kops / baseline_kops)


def compare_reports(
    current: Dict,
    committed: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict]:
    """Return one row per shared case; regressed rows flagged."""
    rows = []
    for name, fresh in current["cases"].items():
        base = committed["cases"].get(name)
        if base is None:
            continue
        normalized = _normalize(
            fresh["wall_s"],
            current["machine"]["calibration_kops"],
            committed["machine"]["calibration_kops"],
        )
        ratio = normalized / base["wall_s"] if base["wall_s"] else 1.0
        rows.append({
            "case": name,
            "committed_wall_s": base["wall_s"],
            "normalized_wall_s": round(normalized, 4),
            "ratio": round(ratio, 3),
            "regressed": ratio > 1.0 + tolerance,
        })
    return rows


def load_report(path: str, schemas: Sequence[str] = BASELINE_SCHEMAS) -> Dict:
    """Read a report, accepting any of ``schemas``.

    Baselines tolerate the previous layout (/2) so a refresh can embed
    the pre-bump committed report as its before/after comparison.
    """
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema not in schemas:
        raise ValueError(
            f"{path}: schema {schema!r} not in {schemas!r}; "
            "regenerate the report with this tree's `repro perf`"
        )
    return payload


def profile_matrix(
    cases: Sequence[PerfCase],
    out: str = DEFAULT_REPORT,
    top: int = 30,
    emit=print,
) -> str:
    """Profile every case once; write top-``top`` dumps next to ``out``.

    Each case runs a single repeat under :mod:`cProfile` and dumps its
    ``top`` hottest frames twice — by cumulative and by internal time —
    so a perf hunt starts from measured hot paths instead of guesses.
    Returns the path written (``BENCH_perf_profile.txt`` in the report's
    directory).
    """
    import cProfile
    import io
    import pstats

    path = os.path.join(os.path.dirname(out) or ".", "BENCH_perf_profile.txt")
    sections = [
        f"# repro perf --profile ({len(cases)} case(s), top {top} frames)",
        f"# generated_at: {time.strftime('%Y-%m-%dT%H:%M:%SZ', time.gmtime())}",
    ]
    for case in cases:
        profiler = cProfile.Profile()
        profiler.enable()
        row = run_case(case, repeats=1)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        stats.sort_stats("tottime").print_stats(top)
        sections.append(
            f"\n== {case.name} (wall {row['wall_s']}s, "
            f"{row['events_per_s']:,} ev/s) =="
        )
        sections.append(buffer.getvalue().rstrip())
        if emit is not None:
            emit(f"  profiled {case.name:<24} {row['wall_s']:>8.3f}s")
    with open(path, "w") as handle:
        handle.write("\n".join(sections) + "\n")
    return path


def write_report(payload: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(
    *,
    quick: bool = False,
    check: bool = False,
    out: str = DEFAULT_REPORT,
    baseline_path: str = DEFAULT_REPORT,
    baseline_from: Optional[str] = None,
    baseline_label: str = "previous baseline",
    tolerance: float = DEFAULT_TOLERANCE,
    repeats: int = 3,
    jobs: int = 1,
    cores: Optional[int] = None,
    smoke: bool = False,
    profile: bool = False,
    emit=print,
) -> int:
    """Drive a perf run; returns a process exit code.

    ``check=False``: run the matrix, write ``out`` (optionally embedding
    ``baseline_from`` as the before/after comparison).
    ``check=True``: run the matrix and compare against the committed
    report at ``baseline_path``; never writes; exit 1 on regression.
    ``jobs``: worker processes for the matrix (1 = classic serial run).
    ``cores``: run the multi-core sweep (jobs levels {1, 2, cores});
    the written report carries the ``machine.parallel.sweep`` block.
    ``smoke``: the CI shape — quick subset at one repeat.
    ``profile``: profile each selected case instead of reporting; the
    dump lands next to ``out``.
    """
    if smoke:
        quick = True
        repeats = 1
    # Load reports up front so a missing/stale file fails before the
    # matrix burns minutes of wall-clock.
    committed = load_report(baseline_path) if check else None
    baseline = load_report(baseline_from) if baseline_from else None

    cases = select_cases(quick=quick)
    if profile:
        emit(f"perf: profiling {len(cases)} case(s)"
             + (" [quick]" if quick else ""))
        path = profile_matrix(cases, out=out, emit=emit)
        emit(f"wrote {path}")
        return 0
    emit(f"perf: running {len(cases)} case(s), repeats={repeats}, "
         + (f"cores sweep {sweep_levels(cores)}" if cores else f"jobs={jobs}")
         + (" [smoke]" if smoke else " [quick]" if quick else ""))
    progress = lambda name, row: emit(
        f"  {name:<24} {row['wall_s']:>8.3f}s  "
        f"{row['events_per_s']:>10,} ev/s  {row['commits']:>8,} commits"
    )
    if cores:
        payload = run_sweep(
            cases, repeats=repeats, cores=cores, progress=progress, emit=emit,
        )
    else:
        payload = run_matrix(cases, repeats=repeats, jobs=jobs, progress=progress)
    emit(f"calibration: {payload['machine']['calibration_kops']} kops")
    parallel = payload["machine"]["parallel"]
    emit(f"matrix wall: {parallel['elapsed_s']:.1f}s elapsed vs "
         f"{parallel['serial_equivalent_s']:.1f}s serial-equivalent "
         f"(speedup x{parallel['speedup']:.2f} at jobs={parallel['jobs']})")
    if parallel.get("limited_by_host"):
        emit(f"note: sweep ran {max(sweep_levels(cores))} workers on "
             f"{parallel['host_cores']} host core(s); fan-out numbers are "
             "host-limited (see EXPERIMENTS.md, Parallel execution)")

    if check:
        rows = compare_reports(payload, committed, tolerance=tolerance)
        if not rows:
            emit("perf: no overlapping cases with the committed report")
            return 1
        regressions = [row for row in rows if row["regressed"]]
        for row in rows:
            flag = "REGRESSED" if row["regressed"] else "ok"
            emit(f"  {row['case']:<24} committed {row['committed_wall_s']:>8.3f}s"
                 f"  now {row['normalized_wall_s']:>8.3f}s (normalized)"
                 f"  x{row['ratio']:.2f}  {flag}")
        if regressions:
            emit(f"perf: {len(regressions)} case(s) regressed beyond "
                 f"{tolerance:.0%} vs {baseline_path}")
            return 1
        emit(f"perf: within {tolerance:.0%} of {baseline_path}")
        return 0

    if baseline is not None:
        attach_baseline(payload, baseline, baseline_label)
        mean = payload["comparison"]["mean_wall_reduction"]
        emit(f"mean wall-clock reduction vs {baseline_label}: {mean:.1%}")
    write_report(payload, out)
    emit(f"wrote {out}")
    return 0
