"""Assemble and drive one benchmark run.

This module is one of the two blessed wall-clock readers in
``src/repro`` (the other is :mod:`repro.bench.perf`): host time is
forbidden inside simulation code — the simulated clock is ``env.now`` —
but the harness must measure how long the host took to execute a run.
The measurements live on :class:`RunResult` as ``wall_clock_s`` and
``events_processed`` and are never fed back into the simulation, so
they cannot perturb simulated results (the fingerprint tests exclude
them by construction).
"""

from __future__ import annotations

import time

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.metrics import LatencySummary, Metrics
from repro.core.strategy import StrategyWeights
from repro.obs import NULL_OBS, Observability
from repro.obs.sampler import Timeline
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.systems.base import System
from repro.workloads.base import Workload

#: Systems that maintain replicas at every site.
REPLICATED_SYSTEMS = {"dynamast", "single-master", "multi-master"}
ALL_SYSTEMS = ("dynamast", "single-master", "multi-master", "partition-store", "leap")


@dataclass
class RunResult:
    """Everything measured during one benchmark run."""

    system_name: str
    workload_name: str
    num_clients: int
    duration_ms: float
    warmup_ms: float
    metrics: Metrics
    #: Committed transactions per simulated second (post-warmup).
    throughput: float
    #: Fraction of update txns the site selector had to remaster
    #: (DynaMast family) — the paper's <3% claim (§VI-B7).
    remaster_rate: float
    #: Fraction of update requests routed to each site (Fig. 5a).
    route_fractions: List[float]
    #: Bytes on the wire by category (client / replication / remaster /
    #: 2pc / ship) — the Appendix D traffic analysis.
    traffic_bytes: Dict[str, int]
    #: Per-site CPU utilization over the run.
    site_utilization: List[float]
    #: Fraction of recorded (post-warmup) transactions that aborted.
    abort_rate: float = 0.0
    #: Aborted transactions by type.
    aborts_by_type: Dict[str, int] = field(default_factory=dict)
    #: Aborted transactions by reason (conflict / timeout / site_crash).
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Fault transitions observed during the run (fault-injected runs).
    fault_events: List = field(default_factory=list)
    #: The installed fault injector (None for unfaulted runs).
    injector: Optional[object] = field(repr=False, default=None)
    #: Sampled per-site timelines (populated only for observed runs).
    timelines: Dict[str, Timeline] = field(default_factory=dict)
    #: The observability handle of an observed run (None otherwise).
    obs: Optional[Observability] = field(repr=False, default=None)
    #: The decision ledger of a mastering-observed run (None otherwise).
    ledger: Optional[object] = field(repr=False, default=None)
    #: The SLO engine of an SLO-monitored run (None otherwise) —
    #: finalized, with incidents/violations/correlation populated.
    slo: Optional[object] = field(repr=False, default=None)
    #: The live system object, for deeper inspection in tests/benches.
    system: Optional[System] = field(repr=False, default=None)
    #: Recorded offered arrival rate (arrivals/s over the post-warmup
    #: window) for open-loop runs; 0.0 for closed-loop runs, where
    #: offered load is whatever the clients manage (the coordinated-
    #: omission caveat in docs/SCALE.md).
    offered_rate: float = 0.0
    #: Host seconds spent inside :func:`run_benchmark` (setup + run).
    #: Host-side only: excluded from fingerprints, varies per machine.
    wall_clock_s: float = 0.0
    #: Kernel events processed during the run (deterministic for a
    #: given build, but an implementation detail — delivery batching
    #: may change it without changing simulated results, so it is also
    #: excluded from fingerprints).
    events_processed: int = 0

    def latency(self, txn_type: Optional[str] = None) -> LatencySummary:
        return self.metrics.latency(txn_type)

    def portable(self):
        """The picklable :class:`~repro.bench.parallel.RunSummary`.

        Drops the live ``system`` / ``obs`` / ``injector`` handles —
        each of which transitively pins an entire simulated cluster —
        while keeping every folded measurement, so long suite loops can
        retain results without retaining clusters, and results can
        cross a process boundary. Observed runs fold their attribution
        budget into ``attribution_shares`` first.
        """
        from repro.bench.parallel import summarize

        return summarize(self)


def run_benchmark(
    system_name: str,
    workload: Workload,
    *,
    num_clients: int = 50,
    duration_ms: float = 2000.0,
    warmup_ms: float = 500.0,
    cluster_config: Optional[ClusterConfig] = None,
    weights: Optional[StrategyWeights] = None,
    placement: Optional[Dict[int, int]] = None,
    seed: int = 0,
    load_data: bool = False,
    events: Sequence[Tuple[float, Callable]] = (),
    obs: Optional[Observability] = None,
    streaming_metrics: bool = False,
    fault_plan=None,
    ledger=None,
    open_loop=None,
    slo=None,
) -> RunResult:
    """Run ``workload`` against one system and measure it.

    ``events`` is a list of ``(time_ms, fn)`` pairs; each ``fn(system,
    workload)`` fires at the given simulated time (used to change the
    workload mid-run in the adaptivity experiment). Latencies are
    recorded only for transactions that *start* after ``warmup_ms``.

    ``obs`` attaches a fresh :class:`~repro.obs.Observability` to the
    run: every transaction is traced as a span tree, the standard
    per-site timelines are sampled, and the handle comes back on
    ``RunResult.obs`` for export. Without it the run uses the no-op
    tracer and is bit-identical to an unobserved build.
    ``streaming_metrics`` stores latencies in log-bucketed histograms
    instead of raw lists (constant memory, approximate percentiles).
    ``fault_plan`` installs a :class:`~repro.faults.FaultInjector`
    interpreting the given :class:`~repro.faults.FaultPlan` before the
    workload starts; without one the run is bit-identical to a build
    without the faults subsystem.
    ``ledger`` attaches a :class:`~repro.obs.mastery.DecisionLedger` to
    the system's site selector (ignored for selector-less systems); the
    ledger is passive, so even a ledger-observed run's simulated
    outcome is bit-identical to an unobserved one.
    ``slo`` attaches a :class:`~repro.obs.slo.SloEngine`: every
    recorded transaction streams through its windowed SLO monitors and
    the runtime invariants are checked at each window close; the
    finalized engine (incidents, violations, fault correlation) comes
    back on ``RunResult.slo``. The engine is a passive recorder — it
    schedules nothing and consumes no randomness — so an SLO-monitored
    run's simulated outcome is bit-identical to an unmonitored one.
    ``open_loop`` replaces the closed-loop clients with an
    :class:`~repro.workloads.openloop.OpenLoopEngine` driven by the
    given :class:`~repro.workloads.openloop.OpenLoopSpec`: arrivals
    follow the spec's rate curve (dedicated ``arrivals`` RNG stream),
    ``num_clients`` is ignored in favour of ``spec.modeled_clients``,
    and latency is measured from arrival — admission-queue wait
    included. Closed-loop runs never touch the arrivals stream or the
    open-loop code paths, so their results are bit-identical to builds
    without this subsystem.
    """
    if system_name not in ALL_SYSTEMS:
        raise ValueError(f"unknown system {system_name!r}; expected one of {ALL_SYSTEMS}")
    wall_start = time.perf_counter()
    observability = obs if obs is not None else NULL_OBS
    config = cluster_config or ClusterConfig()
    if seed:
        config = config.scaled(seed=seed)
    cluster = Cluster(
        config,
        replicated=system_name in REPLICATED_SYSTEMS,
        obs=observability,
    )
    scheme = workload.scheme

    kwargs: Dict = {"scheme": scheme}
    if system_name == "dynamast":
        kwargs["weights"] = weights or workload.recommended_weights()
        if placement is not None:
            kwargs["placement"] = placement
    elif system_name != "single-master":
        kwargs["placement"] = placement or workload.fixed_placement(config.num_sites)
        if system_name in ("multi-master", "partition-store"):
            kwargs["unit_of"] = workload.placement_unit_of
    system = build_system(system_name, cluster, **kwargs)

    if load_data:
        fixed = placement or workload.fixed_placement(config.num_sites)
        cluster.load(
            workload.initial_records(),
            owner_of=scheme.owner_lookup(fixed),
        )

    if ledger is not None:
        routing = getattr(system, "selector", None)
        if routing is not None:
            routing.attach_ledger(ledger)
        ledger.run_end_ms = duration_ms

    injector = None
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(cluster, fault_plan, cluster.streams.faults())
        injector.install()

    metrics = Metrics(streaming=streaming_metrics)
    observability.observe_cluster(cluster)
    engine = None
    if open_loop is not None:
        from repro.workloads.openloop import OpenLoopEngine

        engine = OpenLoopEngine(system, workload, open_loop, metrics,
                                warmup_ms, observability)
        engine.install(duration_ms)
        if observability.enabled:
            engine.attach_probes(observability.sampler)
        num_clients = open_loop.modeled_clients
    else:
        rng = cluster.streams.stream("workload")
        for client_id in range(num_clients):
            cluster.env.process(
                _client_loop(system, workload, client_id, rng, metrics, warmup_ms,
                             observability)
            )
    if slo is not None and slo.enabled:
        slo.install(
            system,
            injector=injector,
            queues=engine.queues if engine is not None else (),
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
        )
        metrics.slo_engine = slo
    for when, fn in events:
        cluster.env.process(_fire_event(cluster.env, when, fn, system, workload))

    cluster.env.run(until=duration_ms)
    if slo is not None and slo.enabled:
        slo.finalize(duration_ms)
        # Detach before the metrics object travels (RunSummary pickles
        # Metrics; the engine holds live cluster references).
        metrics.slo_engine = None
    wall_clock_s = time.perf_counter() - wall_start

    window = duration_ms - warmup_ms
    selector = getattr(system, "selector", None)
    if selector is not None:
        metrics.selector_counters = {
            "updates_routed": selector.updates_routed,
            "updates_remastered": selector.updates_remastered,
            "remaster_operations": selector.remaster_operations,
            "partitions_moved": selector.partitions_moved,
        }
    if injector is not None:
        metrics.detector_counters = injector.detector_counters()
    offered_rate = 0.0
    if engine is not None:
        from repro.workloads.openloop import offered_rate_tps

        metrics.open_loop_counters = engine.counters()
        offered_rate = offered_rate_tps(metrics.open_loop_counters, window)
        # Per-site end-of-run queue state, for the per-site Prometheus
        # gauges. Kept OFF the fingerprinted counters() dict so the
        # committed BENCH_scale.json fingerprints stay valid.
        metrics.open_loop_sites = tuple(
            {"site": index, "depth": float(len(queue)),
             "shed": float(queue.shed), "offered": float(queue.offered)}
            for index, queue in enumerate(engine.queues)
        )
    return RunResult(
        system_name=system_name,
        workload_name=workload.name,
        num_clients=num_clients,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        metrics=metrics,
        throughput=metrics.throughput(window),
        remaster_rate=selector.remaster_rate() if selector else 0.0,
        route_fractions=selector.route_fractions() if selector else [],
        traffic_bytes=dict(cluster.network.traffic.bytes_by_category),
        site_utilization=[site.utilization() for site in cluster.sites],
        abort_rate=metrics.abort_rate(),
        aborts_by_type=dict(metrics.aborts),
        aborts_by_reason=dict(metrics.aborts_by_reason),
        fault_events=list(injector.events) if injector is not None else [],
        injector=injector,
        timelines=dict(observability.timelines) if observability.enabled else {},
        obs=obs,
        ledger=ledger,
        slo=slo,
        system=system,
        offered_rate=offered_rate,
        wall_clock_s=wall_clock_s,
        events_processed=cluster.env.events_processed,
    )


def _client_loop(system, workload, client_id, rng, metrics, warmup_ms, obs):
    """One closed-loop client issuing transactions back to back."""
    env = system.env
    tracer = obs.tracer
    state = workload.new_client_state(client_id, rng)
    session = system.new_session(client_id)
    while True:
        turn = workload.next_transaction(state, rng, env._now)
        if turn.reset_session:
            session = system.new_session(client_id)
        started = env._now
        tracer.txn_begin(turn.txn, started)
        outcome = yield from system.submit(turn.txn, session)
        recorded = started >= warmup_ms
        if recorded:
            metrics.record(turn.txn, outcome, env._now - started, env._now)
            if obs.enabled and outcome.committed:
                obs.registry.histogram(
                    f"latency.{turn.txn.txn_type}"
                ).record(env._now - started)
        tracer.txn_end(turn.txn, outcome, env._now, recorded=recorded)


def _fire_event(env, when, fn, system, workload):
    yield env.timeout(when)
    fn(system, workload)
