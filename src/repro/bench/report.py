"""Plain-text tables for benchmark output (paper-vs-measured rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """Format one row with right-aligned numeric cells."""
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:,.2f}"
        elif isinstance(cell, int):
            text = f"{cell:,}"
        else:
            text = str(cell)
        if isinstance(cell, (int, float)):
            parts.append(text.rjust(width))
        else:
            parts.append(text.ljust(width))
    return "  ".join(parts)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a titled, aligned table to stdout."""
    rows = [list(row) for row in rows]
    widths: List[int] = []
    for column in range(len(headers)):
        cells = [headers[column]] + [
            f"{row[column]:,.2f}" if isinstance(row[column], float)
            else f"{row[column]:,}" if isinstance(row[column], int)
            else str(row[column])
            for row in rows
        ]
        widths.append(max(len(str(cell)) for cell in cells))
    print()
    print(f"== {title} ==")
    print(format_row(headers, widths))
    print("  ".join("-" * width for width in widths))
    for row in rows:
        print(format_row(row, widths))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for speedup reporting."""
    if denominator <= 0:
        return float("inf") if numerator > 0 else 0.0
    return numerator / denominator
