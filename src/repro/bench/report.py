"""Plain-text tables for benchmark output (paper-vs-measured rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """Format one row with right-aligned numeric cells."""
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:,.2f}"
        elif isinstance(cell, int):
            text = f"{cell:,}"
        else:
            text = str(cell)
        if isinstance(cell, (int, float)):
            parts.append(text.rjust(width))
        else:
            parts.append(text.ljust(width))
    return "  ".join(parts)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a titled, aligned table to stdout."""
    rows = [list(row) for row in rows]
    widths: List[int] = []
    for column in range(len(headers)):
        cells = [headers[column]] + [
            f"{row[column]:,.2f}" if isinstance(row[column], float)
            else f"{row[column]:,}" if isinstance(row[column], int)
            else str(row[column])
            for row in rows
        ]
        widths.append(max(len(str(cell)) for cell in cells))
    print()
    print(f"== {title} ==")
    print(format_row(headers, widths))
    print("  ".join("-" * width for width in widths))
    for row in rows:
        print(format_row(row, widths))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for speedup reporting."""
    if denominator <= 0:
        return float("inf") if numerator > 0 else 0.0
    return numerator / denominator


def print_run_report(result) -> None:
    """Print the standard per-run report for one ``RunResult``.

    Latency table per txn type, protocol activity (including the abort
    rate and per-type abort counts), and — for observed runs — a
    summary of every sampled timeline.
    """
    metrics = result.metrics
    rows = []
    for txn_type in metrics.txn_types():
        summary = result.latency(txn_type)
        rows.append([txn_type, summary.count, summary.mean, summary.p90,
                     summary.p99])
    print_table(
        f"{result.system_name} on {result.workload_name}: "
        f"{result.throughput:,.0f} txn/s",
        ["txn type", "count", "mean ms", "p90 ms", "p99 ms"],
        rows,
    )
    activity = [
        ["remaster/ship fraction", f"{metrics.remaster_fraction():.2%}"],
        ["distributed txns",
         f"{metrics.distributed_txns / max(1, metrics.commits):.2%}"],
        ["abort rate", f"{result.abort_rate:.2%}"],
        ["site utilization", " ".join(f"{u:.2f}" for u in result.site_utilization)],
    ]
    if metrics.selector_counters:
        counters = metrics.selector_counters
        activity.append(["updates routed", f"{counters['updates_routed']:,}"])
        activity.append(
            ["updates remastered", f"{counters['updates_remastered']:,}"]
        )
        activity.append(
            ["remaster operations", f"{counters['remaster_operations']:,}"]
        )
        activity.append(
            ["partitions moved", f"{counters['partitions_moved']:,}"]
        )
    if metrics.detector_counters:
        detector = metrics.detector_counters
        labels = {
            "suspicion_episodes": "suspicion episodes",
            "false_suspicions": "false suspicions",
            "suspected_sites": "suspected sites (at end)",
            "hedges_launched": "hedged reads launched",
            "hedge_wins": "hedged reads won",
        }
        for key, label in labels.items():
            if key in detector:
                activity.append([label, f"{detector[key]:,}"])
        for key, label in (
            ("detection_latency_ms", "detection latency"),
            ("quarantine_ms", "quarantine time"),
        ):
            if key in detector:
                activity.append([label, f"{detector[key]:,.2f} ms"])
    for txn_type, count in sorted(result.aborts_by_type.items()):
        activity.append([f"aborts ({txn_type})", f"{count:,}"])
    for reason, count in sorted(result.aborts_by_reason.items()):
        activity.append([f"aborts [{reason}]", f"{count:,}"])
    print_table("protocol activity", ["metric", "value"], activity)
    if getattr(metrics, "open_loop_counters", None):
        print_open_loop(result)
    mastery = getattr(result, "mastery", None)
    ledger = getattr(result, "ledger", None)
    if mastery or (ledger is not None and ledger.enabled):
        print_mastering(result)
    slo = getattr(result, "slo", None)
    if slo is not None and (getattr(slo, "enabled", False) or slo):
        print_slo(result)
    if result.timelines:
        print_table(
            "sampled timelines (mean / max over run)",
            ["timeline", "samples", "mean", "max"],
            [
                [name, len(timeline.samples), timeline.mean(), timeline.maximum()]
                for name, timeline in sorted(result.timelines.items())
            ],
        )
    if result.obs is not None and result.obs.enabled:
        print_attribution(result)


def print_open_loop(result) -> None:
    """Print the traffic table of an open-loop run.

    The capacity-planning view: offered vs goodput over the recorded
    window (their ratio is the saturation signal — see docs/SCALE.md),
    shedding, and admission-queue depth/wait.
    """
    from repro.workloads.openloop import goodput_ratio

    metrics = result.metrics
    counters = metrics.open_loop_counters
    window = result.duration_ms - result.warmup_ms
    offered_tps = (
        counters["offered_recorded"] / window * 1000.0 if window > 0 else 0.0
    )
    ratio_value = goodput_ratio(counters, metrics.commits)
    wait = metrics.admission_wait()
    rows = [
        ["modeled clients", f"{int(counters.get('modeled_clients', 0)):,}"],
        ["offered (recorded)", f"{int(counters['offered_recorded']):,} "
         f"({offered_tps:,.0f} arrivals/s)"],
        ["goodput", f"{metrics.commits:,} ({result.throughput:,.0f} txn/s)"],
        ["goodput / offered",
         "n/a" if ratio_value is None else f"{ratio_value:.2%}"],
        ["shed arrivals", f"{int(counters.get('shed', 0)):,}"],
        ["still queued at end", f"{int(counters.get('queued_end', 0)):,}"],
        ["queue depth peak / mean",
         f"{int(counters.get('peak_depth', 0)):,} / "
         f"{counters.get('mean_depth', 0.0):.2f}"],
        ["admission wait p50 / p99",
         f"{wait.p50:,.2f} / {wait.p99:,.2f} ms"],
    ]
    print_table("open-loop traffic", ["metric", "value"], rows)


def print_mastering(result) -> None:
    """Print the mastering summary of a ledger-observed run.

    Works on a live :class:`~repro.bench.harness.RunResult` (summarizes
    its ledger, and adds the top-mover timeline the live event stream
    affords) and on a portable ``RunSummary`` whose ``mastery`` scalars
    were folded worker-side.
    """
    summary = getattr(result, "mastery", None) or None
    ledger = getattr(result, "ledger", None)
    if summary is None:
        if ledger is None or not ledger.enabled:
            return
        summary = ledger.summary()
    convergence = summary["convergence_ms"]
    rows = [
        ["decisions", f"{int(summary['decisions']):,}"],
        ["updates routed", f"{int(summary['updates_routed']):,}"],
        ["updates remastered", f"{int(summary['updates_remastered']):,}"],
        ["partitions moved", f"{int(summary['partitions_moved']):,}"],
        ["locality share", f"{summary['locality_share']:.2%}"],
        ["mastership entropy", f"{summary['entropy']:.3f}"],
        ["churning partitions", f"{int(summary['churn_partitions']):,}"],
        ["ping-pong partitions", f"{int(summary['ping_pong_partitions']):,}"],
        ["ping-pong bounces", f"{int(summary['ping_pong_bounces']):,}"],
        ["convergence",
         "never" if convergence < 0 else f"{convergence:,.0f} ms "
         f"(<= {summary['convergence_threshold']:.0%} per "
         f"{summary['convergence_window_ms']:g} ms window)"],
    ]
    print_table("mastering (decision ledger)", ["metric", "value"], rows)
    if ledger is not None and ledger.enabled:
        timeline = ledger.timeline()
        movers = timeline.top_movers(top=5)
        if movers:
            print_table(
                "most remastered partitions",
                ["partition", "moves", "timeline"],
                [[partition, moves,
                  timeline.render(partition, max_intervals=6)]
                 for partition, moves in movers],
            )


def print_slo(result) -> None:
    """Print the SLO/incident verdict of an SLO-monitored run.

    Works on a live :class:`~repro.bench.harness.RunResult` carrying a
    :class:`~repro.obs.slo.SloEngine` (full objective, incident, and
    fault-correlation tables) and on a portable ``RunSummary`` whose
    ``slo`` verdict scalars were folded worker-side (summary table
    only — the window series stayed in the worker).
    """
    slo = getattr(result, "slo", None)
    if slo is None:
        return
    if not getattr(slo, "enabled", False):
        if not slo:
            return
        print_table(
            "SLO verdict (folded)", ["metric", "value"],
            [[name, f"{value:g}"] for name, value in sorted(slo.items())],
        )
        return

    print_table(
        "SLO objectives",
        ["objective", "metric", "bound", "threshold", "windows",
         "breached", "incidents"],
        [
            [row["objective"], row["metric"], row["bound"],
             "unarmed" if row["threshold"] is None
             else f"{row['threshold']:,.3f}",
             row["windows"], row["breached_windows"], row["incidents"]]
            for row in slo.objective_rows()
        ],
    )
    episodes = list(slo.incidents) + list(slo.violations)
    if episodes:
        print_table(
            "incidents",
            ["kind", "objective", "onset ms", "clear ms", "peak sev",
             "blamed sites", "detail"],
            [
                [inc.kind, inc.objective, f"{inc.onset_ms:,.0f}",
                 "open" if inc.clear_ms is None else f"{inc.clear_ms:,.0f}",
                 f"{inc.peak_severity:,.2f}",
                 ",".join(str(s) for s in inc.blamed_sites) or "-",
                 (inc.detail or "")[:60]]
                for inc in episodes
            ],
        )
    if slo.correlation:
        print_table(
            "fault correlation (vs injector ground truth)",
            ["fault window", "kinds", "sites", "detected",
             "MTTD ms", "MTTR ms", "incidents"],
            [
                [f"[{span['start_ms']:,.0f}, {span['end_ms']:,.0f})",
                 ",".join(span["kinds"]), ",".join(map(str, span["sites"])),
                 "yes" if span["detected"] else "MISS",
                 "-" if span["detection_ms"] is None
                 else f"{span['detection_ms']:,.0f}",
                 "-" if span["recovery_ms"] is None
                 else f"{span['recovery_ms']:,.0f}",
                 ",".join(sorted(set(span["incidents"]))) or "-"]
                for span in slo.correlation
            ],
        )
    summary = slo.summary()
    verdict = [
        ["incidents (SLO)", f"{int(summary['incidents']):,}"],
        ["violations (invariant)", f"{int(summary['violations']):,}"],
        ["true positives", f"{int(summary['true_positives']):,}"],
        ["false positives", f"{int(summary['false_positives']):,}"],
        ["fault spans detected",
         f"{int(summary['detected_spans']):,} / {int(summary['fault_spans']):,}"],
        ["MTTD", "n/a" if summary["mttd_mean_ms"] < 0
         else f"{summary['mttd_mean_ms']:,.0f} ms"],
        ["MTTR", "n/a" if summary["mttr_mean_ms"] < 0
         else f"{summary['mttr_mean_ms']:,.0f} ms"],
        ["windows evaluated", f"{int(summary['windows_evaluated']):,}"],
    ]
    print_table("SLO verdict", ["metric", "value"], verdict)


def print_attribution(result) -> None:
    """Print the latency-budget table of an observed run.

    Imports lazily so unobserved bench paths never load the causal
    layer.
    """
    from repro.obs.attribution import (
        AttributionReport, budget_headers, budget_rows,
    )

    report = AttributionReport.from_result(result)
    if not report.txns:
        return
    print_table(
        "latency attribution (share of quantile latency per category)",
        budget_headers(),
        budget_rows(report),
    )
    blame = report.blame(top=5)
    if blame:
        print_table(
            "p95+ tail blame",
            ["category", "track", "ms", "share"],
            [[b["category"], b["track"], f"{b['ms']:,.1f}",
              f"{b['share']:.1%}"] for b in blame],
        )
