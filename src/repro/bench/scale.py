"""Open-loop scale harness: saturation knees at big topologies
(``repro perf --scale``).

Where :mod:`repro.bench.perf` pins *host* cost (wall-clock per case),
this harness pins *capacity*: for each system it walks a ladder of
offered rates under an open-loop arrival curve and locates the
**saturation knee** — the highest offered rate at which goodput still
keeps up (goodput/offered >= :data:`KNEE_THRESHOLD`). Past the knee an
open-loop system does not "slow down gracefully": admission queues
grow, waits explode, and the goodput ratio collapses; the knee is the
number a capacity plan needs (docs/SCALE.md explains how to read the
curves).

Results go to ``BENCH_scale.json`` (schema ``repro-scale/1``) —
deliberately a *separate* report from ``BENCH_perf.json``, because the
two gate different things: perf compares calibration-normalized walls
(machine-dependent, tolerance-banded), scale compares simulated
fingerprints (machine-independent, exact) plus a peak-RSS budget per
case. The matrix below is pinned the same way the perf matrix is: the
cases, seeds, curves, and ladders are part of the schema, and editing
them means regenerating the committed report.

Determinism: everything here is a pure function of the pinned
:class:`~repro.bench.parallel.RunSpec` list. Fan-out over ``--jobs``
must be bit-identical to a serial sweep — the scale-smoke CI job runs
the smoke subset at ``--jobs 2`` against the committed fingerprints to
pin exactly that. This module reads no host clock (the per-point wall
figures come from ``RunSummary.wall_clock_s``, measured by the blessed
reader inside the harness), so the determinism guard applies to it in
full.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import RunSpec, WorkloadSpec, execute_specs
from repro.sim.config import ClusterConfig
from repro.workloads.openloop import OpenLoopSpec, goodput_ratio

#: Bump when the report layout or the pinned matrix changes shape.
SCHEMA = "repro-scale/1"

#: Where ``repro perf --scale`` writes (and ``--check`` reads).
DEFAULT_REPORT = "BENCH_scale.json"

#: A ladder point "keeps up" while goodput/offered stays at or above
#: this; the knee is the highest offered rate that does.
KNEE_THRESHOLD = 0.90


@dataclass(frozen=True)
class ScaleCase:
    """One pinned capacity case: a system under a rate ladder.

    ``open_loop`` describes the curve at multiplier 1.0; each ladder
    entry scales every ``*_tps`` parameter, so the ladder sweeps offered
    rate without changing the curve's shape or timing. All pure data —
    the whole case flattens into picklable :class:`RunSpec` rows.
    """

    name: str
    system: str
    workload: WorkloadSpec
    open_loop: OpenLoopSpec
    ladder: Tuple[float, ...]
    sites: int
    duration_ms: float = 600.0
    warmup_ms: float = 150.0
    seed: int = 11
    #: Peak-RSS budget per ladder point, asserted by ``--check``. The
    #: budget is a documented honesty bound (docs/SCALE.md), set from
    #: measurement plus headroom — not a tuning target.
    rss_budget_mb: int = 512

    def specs(self) -> List[RunSpec]:
        """One RunSpec per ladder point, in ladder order."""
        return [
            RunSpec(
                system=self.system,
                workload=self.workload,
                duration_ms=self.duration_ms,
                warmup_ms=self.warmup_ms,
                cluster=ClusterConfig(num_sites=self.sites, seed=self.seed),
                seed=self.seed,
                # Streaming histograms, not raw sample lists: latency
                # memory stays constant no matter how many arrivals a
                # ladder point admits — part of the memory-lean story.
                streaming_metrics=True,
                open_loop=self.open_loop.scaled(multiplier),
                label=f"{self.name}@x{multiplier:g}",
            )
            for multiplier in self.ladder
        ]

    def table_keys(self) -> int:
        """Modeled table size in keys (for the report header)."""
        params = dict(self.workload.params)
        if self.workload.name == "ycsb":
            return params.get("num_partitions", 2000) * params.get(
                "keys_per_partition", 100
            )
        if self.workload.name == "smallbank":
            return params.get("users", 10000) * 2
        return 0


def _knee_ycsb(**overrides) -> WorkloadSpec:
    """The shared YCSB shape of the per-system knee cases: 200k keys,
    paper skew, RMW-heavy (scans are batch reads that would dominate
    cost without probing the update path the knee is about)."""
    params = dict(num_partitions=2000, zipf_theta=0.75, rmw_fraction=0.9)
    params.update(overrides)
    return WorkloadSpec.of("ycsb", **params)


def _per_system_case(system: str, ladder: Tuple[float, ...]) -> ScaleCase:
    return ScaleCase(
        name=f"{system}-constant-8x20k",
        system=system,
        workload=_knee_ycsb(),
        open_loop=OpenLoopSpec.of(
            "constant",
            rate_tps=2000.0,
            modeled_clients=20_000,
            # Two admission slots per site: the honest capacity knob.
            # With wider slots no system saturates inside an affordable
            # ladder; at 2 the knees separate per system (docs/SCALE.md).
            admission_concurrency=2,
        ),
        ladder=ladder,
        sites=8,
        duration_ms=500.0,
        warmup_ms=125.0,
        # Measured ~90 MB peak per rung on CPython 3.11; budget leaves
        # ~2.5x headroom for interpreter variance, not for growth.
        rss_budget_mb=256,
    )


#: The pinned matrix: one knee ladder per system at 8 sites / 20k
#: modeled clients / 200k keys, plus the flagship diurnal case at
#: 16 sites / 100k modeled clients / 1M keys. Multipliers are pinned
#: per system so every ladder straddles that system's knee.
SCALE_MATRIX: Sequence[ScaleCase] = (
    _per_system_case("dynamast", (0.5, 1.0, 2.0, 4.0, 8.0)),
    _per_system_case("single-master", (0.5, 1.0, 2.0, 4.0, 8.0)),
    _per_system_case("multi-master", (0.5, 1.0, 2.0, 4.0, 8.0)),
    _per_system_case("partition-store", (0.5, 1.0, 2.0, 4.0, 8.0)),
    _per_system_case("leap", (0.5, 1.0, 2.0, 4.0, 8.0)),
    ScaleCase(
        name="dynamast-diurnal-16x100k",
        system="dynamast",
        workload=WorkloadSpec.of(
            "ycsb", num_partitions=10_000, zipf_theta=0.75, rmw_fraction=1.0
        ),
        open_loop=OpenLoopSpec.of(
            "diurnal",
            base_tps=2000.0,
            peak_tps=8000.0,
            period_ms=400.0,
            modeled_clients=100_000,
            admission_concurrency=2,
        ),
        # x2.5 is the knee (ratio ~0.96); x3 collapses (~0.87), so the
        # ladder shows the knee as a knee, not as its highest rung.
        ladder=(1.0, 2.0, 2.5, 3.0),
        sites=16,
        duration_ms=600.0,
        warmup_ms=150.0,
        # Measured ~240 MB peak at x3 on CPython 3.11 (~2x headroom).
        rss_budget_mb=512,
    ),
)

#: CI subset (``--smoke``): the five cheap per-system ladders; the
#: flagship stays local/full-matrix only to keep the CI job short.
SMOKE_CASES = tuple(
    case.name for case in SCALE_MATRIX if case.name.endswith("-constant-8x20k")
)


def select_cases(smoke: bool = False) -> List[ScaleCase]:
    if smoke:
        return [case for case in SCALE_MATRIX if case.name in SMOKE_CASES]
    return list(SCALE_MATRIX)


def point_row(case: ScaleCase, multiplier: float, summary) -> Dict:
    """Flatten one ladder point's summary into a report row."""
    metrics = summary.metrics
    counters = metrics.open_loop_counters
    window = case.duration_ms - case.warmup_ms
    wait = metrics.admission_wait()
    ratio = goodput_ratio(counters, metrics.commits)
    return {
        "multiplier": multiplier,
        "offered_tps": round(summary.offered_rate, 2),
        "goodput_tps": round(summary.throughput, 2),
        "goodput_ratio": round(ratio, 4) if ratio is not None else None,
        "latency_p50_ms": round(metrics.latency().p50, 3),
        "latency_p99_ms": round(metrics.latency().p99, 3),
        "admission_wait_p99_ms": round(wait.p99, 3),
        "shed": int(counters.get("shed", 0)),
        "queued_end": int(counters.get("queued_end", 0)),
        "peak_depth": int(counters.get("peak_depth", 0)),
        "offered": int(counters.get("offered", 0)),
        "commits": metrics.commits,
        #: Machine-independent pin (the --check subject).
        "fingerprint": summary.fingerprint,
        #: Host-side context; never compared, budget-asserted only.
        "wall_s": round(summary.wall_clock_s, 4),
        "peak_rss_kb": summary.peak_rss_kb,
        "events_processed": summary.events_processed,
        "window_ms": window,
    }


def find_knee(points: Sequence[Dict], threshold: float = KNEE_THRESHOLD
              ) -> Optional[Dict]:
    """The highest-offered ladder point that still keeps up.

    ``None`` when even the lowest rung collapses (the ladder starts
    past saturation — a matrix bug worth noticing, not hiding).
    """
    knee = None
    for point in points:
        ratio = point.get("goodput_ratio")
        if ratio is None or ratio < threshold:
            continue
        if knee is None or point["offered_tps"] > knee["offered_tps"]:
            knee = point
    return knee


def run_cases(cases: Sequence[ScaleCase], jobs: int = 1,
              progress=None) -> Dict[str, Dict]:
    """Run every ladder point of every case; return per-case payloads.

    All points flatten into one spec list so ``--jobs`` parallelism
    spans cases *and* rungs; results regroup deterministically because
    ``execute_specs`` returns summaries in spec order.
    """
    flat: List = []
    for case in cases:
        for multiplier, spec in zip(case.ladder, case.specs()):
            flat.append((case, multiplier, spec))
    summaries = execute_specs([spec for _, _, spec in flat], jobs=jobs)
    payloads: Dict[str, Dict] = {}
    for (case, multiplier, _spec), summary in zip(flat, summaries):
        entry = payloads.setdefault(case.name, {
            "system": case.system,
            "workload": case.workload.name,
            "workload_params": dict(case.workload.params),
            "sites": case.sites,
            "modeled_clients": case.open_loop.modeled_clients,
            "table_keys": case.table_keys(),
            "curve": case.open_loop.curve,
            "curve_params": dict(case.open_loop.curve_params),
            "admission_concurrency": case.open_loop.admission_concurrency,
            "duration_ms": case.duration_ms,
            "warmup_ms": case.warmup_ms,
            "seed": case.seed,
            "rss_budget_mb": case.rss_budget_mb,
            "points": [],
        })
        row = point_row(case, multiplier, summary)
        entry["points"].append(row)
        if progress is not None:
            progress(case.name, row)
    for name, entry in payloads.items():
        entry["knee"] = find_knee(entry["points"])
    return payloads


def build_report(cases: Sequence[ScaleCase], jobs: int = 1,
                 progress=None) -> Dict:
    return {
        "schema": SCHEMA,
        # No generated_at: this module reads no host clock (determinism
        # guard); the git history timestamps the committed report.
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "settings": {"jobs": jobs, "knee_threshold": KNEE_THRESHOLD},
        "cases": run_cases(cases, jobs=jobs, progress=progress),
    }


def check_report(current: Dict, committed: Dict) -> List[str]:
    """Compare a fresh run against the committed report.

    Returns a list of failure strings (empty = pass). Two gates:

    * **fingerprints, exactly** — simulated outcomes are machine-
      independent, so any drift means the simulation changed and the
      committed report must be regenerated deliberately;
    * **peak RSS within budget** — each ladder point of the fresh run
      must fit its case's ``rss_budget_mb``. Budgets gate the *fresh*
      run (this machine), not the committed numbers.
    """
    failures: List[str] = []
    for name, entry in current["cases"].items():
        base = committed["cases"].get(name)
        if base is None:
            failures.append(f"{name}: not in committed report")
            continue
        fresh_points = entry["points"]
        base_points = base["points"]
        if len(fresh_points) != len(base_points):
            failures.append(
                f"{name}: ladder length {len(fresh_points)} != committed "
                f"{len(base_points)}"
            )
            continue
        for fresh, pinned in zip(fresh_points, base_points):
            label = f"{name}@x{fresh['multiplier']:g}"
            if fresh["fingerprint"] != pinned["fingerprint"]:
                failures.append(
                    f"{label}: fingerprint {fresh['fingerprint']} != committed "
                    f"{pinned['fingerprint']}"
                )
            budget_kb = entry["rss_budget_mb"] * 1024
            if fresh["peak_rss_kb"] > budget_kb:
                failures.append(
                    f"{label}: peak RSS {fresh['peak_rss_kb']} KB over the "
                    f"{entry['rss_budget_mb']} MB budget"
                )
    return failures


def _first_collapsed(points: Sequence[Dict], knee: Optional[Dict],
                     threshold: float) -> Optional[Dict]:
    """The lowest rung past the knee that fails to keep up."""
    for point in points:
        ratio = point.get("goodput_ratio")
        if ratio is not None and ratio >= threshold:
            continue
        if knee is None or point["offered_tps"] > knee["offered_tps"]:
            return point
    return None


def knee_tables(report: Dict) -> Dict[str, str]:
    """Markdown knee tables rendered from a report payload.

    The canonical source of the saturation tables in EXPERIMENTS.md
    and docs/SCALE.md — those files embed this output verbatim
    (``tests/test_scale.py`` pins it), so the docs can never drift from
    the committed ``BENCH_scale.json``. Keys:

    * ``"summary"`` — the three-column per-system table (EXPERIMENTS.md);
    * ``"detail"`` — the five-column per-system table (docs/SCALE.md);
    * one key per non-ladder case name (e.g. the diurnal flagship) —
      that case's full ladder table, knee row bolded (docs/SCALE.md).
    """
    threshold = report.get("settings", {}).get("knee_threshold",
                                               KNEE_THRESHOLD)
    cases = report["cases"]
    ordered = [case.name for case in SCALE_MATRIX if case.name in cases]
    ordered += [name for name in sorted(cases) if name not in ordered]

    summary = ["| System | Knee (offered/s) | First collapsed rung |",
               "|---|---|---|"]
    detail = ["| system | knee (offered/s) | ratio at knee | "
              "first collapsed rung | ratio there |",
              "|---|---|---|---|---|"]
    tables: Dict[str, str] = {}
    for name in ordered:
        entry = cases[name]
        points = entry["points"]
        knee = entry.get("knee")
        collapse = _first_collapsed(points, knee, threshold)
        if name.endswith("-constant-8x20k"):
            system = entry["system"]
            if knee is None:
                plain_knee, bold_knee, knee_ratio = "none", "none", "-"
            else:
                plain_knee = (f"{knee['offered_tps']:,.0f} "
                              f"(x{knee['multiplier']:g})")
                bold_knee = (f"**{knee['offered_tps']:,.0f}** "
                             f"(x{knee['multiplier']:g})")
                knee_ratio = f"{knee['goodput_ratio']:.2f}"
            if collapse is None:
                summary_cell, rung_cell, rung_ratio = "-", "-", "-"
            else:
                ratio = collapse.get("goodput_ratio")
                rung_ratio = "-" if ratio is None else f"{ratio:.2f}"
                rung_cell = (f"x{collapse['multiplier']:g} = "
                             f"{collapse['offered_tps']:,.0f}/s")
                summary_cell = (f"x{collapse['multiplier']:g}: "
                                f"ratio {rung_ratio}")
            summary.append(f"| {system} | {plain_knee} | {summary_cell} |")
            detail.append(f"| {system} | {bold_knee} | {knee_ratio} | "
                          f"{rung_cell} | {rung_ratio} |")
        else:
            lines = ["| multiplier | offered/s | goodput/s | ratio | "
                     "wait p99 | peak RSS |",
                     "|---|---|---|---|---|---|"]
            for point in points:
                ratio = point.get("goodput_ratio")
                cells = [
                    f"x{point['multiplier']:g}",
                    f"{point['offered_tps']:,.0f}",
                    f"{point['goodput_tps']:,.0f}",
                    "-" if ratio is None else f"{ratio:.2f}",
                    f"{point['admission_wait_p99_ms']:,.1f} ms",
                    f"{point['peak_rss_kb'] // 1024} MB",
                ]
                if knee is not None and point["multiplier"] == knee["multiplier"]:
                    cells[:4] = [f"**{cell}**" for cell in cells[:4]]
                lines.append("| " + " | ".join(cells) + " |")
            tables[name] = "\n".join(lines)
    tables["summary"] = "\n".join(summary)
    tables["detail"] = "\n".join(detail)
    return tables


def render_tables(report: Dict) -> str:
    """All knee tables as one printable markdown document."""
    tables = knee_tables(report)
    parts = [
        "<!-- generated by `repro perf --scale --render-tables` from the "
        "committed BENCH_scale.json -->",
        "",
        "Per-system knees (EXPERIMENTS.md):",
        "",
        tables.pop("summary"),
        "",
        "Per-system knees, detailed (docs/SCALE.md):",
        "",
        tables.pop("detail"),
    ]
    for name in sorted(tables):
        parts += ["", f"{name} ladder (docs/SCALE.md):", "", tables[name]]
    return "\n".join(parts) + "\n"


#: Alias for :func:`main`, whose ``render_tables`` flag shadows the name.
_render_tables_text = render_tables


def load_report(path: str) -> Dict:
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} != {SCHEMA!r}; "
            "regenerate the report with this tree's `repro perf --scale`"
        )
    return payload


def write_report(payload: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(
    *,
    smoke: bool = False,
    check: bool = False,
    out: str = DEFAULT_REPORT,
    baseline_path: str = DEFAULT_REPORT,
    jobs: int = 1,
    render_tables: bool = False,
    emit=print,
) -> int:
    """Drive a scale run; returns a process exit code.

    ``check=False``: run the matrix (or the ``--smoke`` subset) and
    write ``out``. ``check=True``: run, compare fingerprints exactly
    and RSS against budget versus the committed ``baseline_path``;
    never writes; exit 1 on any failure. ``render_tables=True``: load
    the committed ``baseline_path`` and print its knee tables as
    markdown (the EXPERIMENTS.md / docs/SCALE.md source) without
    running anything.
    """
    if render_tables:
        emit(_render_tables_text(load_report(baseline_path)).rstrip("\n"))
        return 0
    committed = load_report(baseline_path) if check else None
    cases = select_cases(smoke=smoke)
    points = sum(len(case.ladder) for case in cases)
    emit(f"scale: running {len(cases)} case(s), {points} ladder point(s), "
         f"jobs={jobs}" + (" [smoke]" if smoke else ""))
    payload = build_report(
        cases,
        jobs=jobs,
        progress=lambda name, row: emit(
            f"  {name:<28} x{row['multiplier']:<4g} "
            f"offered {row['offered_tps']:>9,.0f}/s  "
            f"goodput {row['goodput_tps']:>9,.0f}/s  "
            f"ratio {row['goodput_ratio'] if row['goodput_ratio'] is not None else '-':>6}  "
            f"wait p99 {row['admission_wait_p99_ms']:>8,.1f} ms  "
            f"rss {row['peak_rss_kb'] // 1024:>4} MB"
        ),
    )
    for name, entry in payload["cases"].items():
        knee = entry["knee"]
        if knee is None:
            emit(f"  {name}: no knee found — every rung past saturation")
        else:
            emit(f"  {name}: knee at x{knee['multiplier']:g} — "
                 f"{knee['offered_tps']:,.0f} offered/s, "
                 f"{knee['goodput_tps']:,.0f} goodput/s "
                 f"(ratio {knee['goodput_ratio']:.2f})")

    if check:
        failures = check_report(payload, committed)
        for failure in failures:
            emit(f"  FAIL {failure}")
        if failures:
            emit(f"scale: {len(failures)} check(s) failed vs {baseline_path}")
            return 1
        emit(f"scale: fingerprints identical and RSS within budget vs "
             f"{baseline_path}")
        return 0

    write_report(payload, out)
    emit(f"wrote {out}")
    return 0
