"""Repeated runs with confidence intervals.

The paper reports averages of at least five runs with 95% confidence
intervals (§VI-A.2). A deterministic simulator gives identical results
for identical seeds, so the analogue here is repeating an experiment
across *different seeds* — which perturbs every stochastic choice
(workload draws, routing tie-breaks, read placement) — and summarizing
the spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.bench.harness import RunResult, run_benchmark
from repro.bench.parallel import RunSpec, WorkloadSpec, execute_specs
from repro.sim.config import ClusterConfig

#: Two-sided 95% critical values of Student's t for df = 1..29.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
]


def t_critical_95(samples: int) -> float:
    """Two-sided 95% t value for ``samples`` observations."""
    if samples < 2:
        raise ValueError("confidence intervals need at least 2 samples")
    df = samples - 1
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96  # normal approximation for large samples


@dataclass(frozen=True)
class Estimate:
    """A mean with its 95% confidence half-width."""

    mean: float
    half_width: float
    samples: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Estimate":
        if not values:
            return cls(0.0, 0.0, 0)
        if len(values) == 1:
            return cls(values[0], 0.0, 1)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        half = t_critical_95(len(values)) * math.sqrt(variance / len(values))
        return cls(mean, half, len(values))

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Estimate") -> bool:
        """True if the two 95% intervals overlap."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:,.1f} ± {self.half_width:,.1f}"


@dataclass
class RepeatedResult:
    """Summaries across seeds for one system x workload."""

    throughput: Estimate
    mean_latency: Estimate
    p99_latency: Estimate
    runs: List[RunResult]


def run_repeated(
    system_name: str,
    workload_factory: Callable,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    jobs: int = 1,
    **kwargs,
) -> RepeatedResult:
    """Run one configuration across several seeds and summarize.

    ``workload_factory`` must build a *fresh* workload per call (the
    generators keep mutable state); it may also be a
    :class:`~repro.bench.parallel.WorkloadSpec`, which is required for
    ``jobs > 1`` where each seed's run executes in a worker process
    and comes back as a portable :class:`~repro.bench.parallel.
    RunSummary`. Seed order is preserved either way, and parallel
    results are bit-identical to serial ones (the simulation is a pure
    function of the spec). Remaining kwargs are passed to
    :func:`repro.bench.harness.run_benchmark`.
    """
    spec = workload_factory if isinstance(workload_factory, WorkloadSpec) else None
    if jobs > 1:
        if spec is None:
            raise ValueError(
                "run_repeated(jobs > 1) needs a WorkloadSpec, not a "
                "workload factory callable — see CONTRIBUTING.md, "
                "'Spawn safety'"
            )
        supported = {"num_clients", "duration_ms", "warmup_ms",
                     "cluster_config", "weights", "load_data",
                     "streaming_metrics", "fault_plan"}
        unsafe = set(kwargs) - supported
        if unsafe:
            raise ValueError(
                f"jobs > 1 cannot transport {sorted(unsafe)} to a worker "
                "process — run with jobs=1"
            )
        base = dict(kwargs)
        cluster = base.pop("cluster_config", None) or ClusterConfig()
        specs = [
            RunSpec(system=system_name, workload=spec, seed=seed,
                    cluster=cluster, **base)
            for seed in seeds
        ]
        runs = execute_specs(specs, jobs=jobs)
    else:
        factory = spec.build if spec is not None else workload_factory
        runs = [
            run_benchmark(system_name, factory(), seed=seed, **kwargs)
            for seed in seeds
        ]
    return RepeatedResult(
        throughput=Estimate.of([run.throughput for run in runs]),
        mean_latency=Estimate.of([run.latency().mean for run in runs]),
        p99_latency=Estimate.of([run.latency().p99 for run in runs]),
        runs=runs,
    )
