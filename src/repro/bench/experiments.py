"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver assembles the workload and cluster configuration for one
experiment, runs the relevant systems, and returns plain data that the
``benchmarks/`` tree formats as paper-vs-measured tables and asserts
shape criteria on. The default scales are reduced relative to the
paper's 5-minute cluster runs (see DESIGN.md §1) but preserve the
contention structure each experiment depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ALL_SYSTEMS, RunResult, run_benchmark
from repro.bench.parallel import RunSpec, WorkloadSpec, execute_specs
from repro.core.strategy import StrategyWeights
from repro.sim.config import ClusterConfig
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

#: Default scales for the YCSB experiments (4 sites as in the paper).
YCSB_CLUSTER = dict(num_sites=4, cores_per_site=4)
YCSB_CLIENTS = 48
#: Default scales for the TPC-C experiments (paper: 8 sites, 350
#: clients; scaled to keep bench runtimes tractable while preserving
#: the per-warehouse contention ratio).
TPCC_CLUSTER = dict(num_sites=4, cores_per_site=6)
TPCC_CLIENTS = 120
DURATION_MS = 1200.0
WARMUP_MS = 400.0


#: ``run_suite``/``run_repeated`` kwargs a :class:`RunSpec` can carry
#: across a process boundary. Anything else (live ``obs`` handles,
#: ``events`` callbacks) forces the serial path.
_SPEC_SAFE_KWARGS = {
    "weights", "placement", "load_data", "streaming_metrics",
    "fault_plan", "fault_scenario", "observed", "mastery",
}


def _suite_spec(system, workload, *, cluster, num_clients, duration_ms,
                warmup_ms, seed, **kwargs) -> RunSpec:
    """Build the RunSpec for one suite cell (parallel path only)."""
    unsafe = set(kwargs) - _SPEC_SAFE_KWARGS
    if unsafe:
        raise ValueError(
            f"jobs > 1 cannot transport {sorted(unsafe)} to a worker "
            "process; these options hold live objects — run with jobs=1"
        )
    placement = kwargs.pop("placement", None)
    if placement is not None:
        placement = tuple(sorted(placement.items()))
    return RunSpec(
        system=system,
        workload=workload,
        num_clients=num_clients,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
        cluster=cluster,
        seed=seed,
        placement=placement,
        **kwargs,
    )


def run_suite(
    workload_factory: Callable,
    systems: Sequence[str] = ALL_SYSTEMS,
    cluster: Optional[dict] = None,
    num_clients: int = YCSB_CLIENTS,
    duration_ms: float = DURATION_MS,
    warmup_ms: float = WARMUP_MS,
    seed: int = 0,
    jobs: int = 1,
    **kwargs,
) -> Dict[str, RunResult]:
    """Run one workload against several systems (fresh workload each).

    ``workload_factory`` is either a zero-argument callable returning a
    fresh workload, or a :class:`~repro.bench.parallel.WorkloadSpec`
    (required for ``jobs > 1``, where the workload must be rebuilt
    inside worker processes from pure data). With ``jobs=1`` (the
    default) runs execute serially in-process on the exact pre-parallel
    code path and return live :class:`RunResult` objects; with
    ``jobs > 1`` the systems fan out across worker processes and the
    returned values are portable :class:`~repro.bench.parallel.
    RunSummary` objects with bit-identical simulated results (pinned by
    ``tests/test_parallel_parity.py``).
    """
    spec = workload_factory if isinstance(workload_factory, WorkloadSpec) else None
    if jobs > 1:
        if spec is None:
            raise ValueError(
                "run_suite(jobs > 1) needs a WorkloadSpec (a picklable "
                "name + params description), not a workload factory "
                "callable — see CONTRIBUTING.md, 'Spawn safety'"
            )
        specs = [
            _suite_spec(
                system, spec,
                cluster=ClusterConfig(**(cluster or YCSB_CLUSTER)),
                num_clients=num_clients, duration_ms=duration_ms,
                warmup_ms=warmup_ms, seed=seed, **kwargs,
            )
            for system in systems
        ]
        return dict(zip(systems, execute_specs(specs, jobs=jobs)))
    factory = spec.build if spec is not None else workload_factory
    kwargs = _resolve_serial_kwargs(kwargs, cluster, duration_ms)
    observed = kwargs.pop("observed", False)
    mastery = kwargs.pop("mastery", False)
    results = {}
    for system in systems:
        config = ClusterConfig(**(cluster or YCSB_CLUSTER))
        if observed:
            # Fresh handle per run, exactly as each worker builds its
            # own in the parallel path.
            from repro.obs import Observability

            kwargs["obs"] = Observability()
        if mastery:
            from repro.obs.mastery import DecisionLedger

            kwargs["ledger"] = DecisionLedger()
        results[system] = run_benchmark(
            system,
            factory(),
            num_clients=num_clients,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            cluster_config=config,
            seed=seed,
            **kwargs,
        )
    return results


def _resolve_serial_kwargs(kwargs: Dict, cluster: Optional[dict],
                           duration_ms: float) -> Dict:
    """Resolve spec-level conveniences for the serial path.

    The parallel path resolves ``fault_scenario`` and ``observed``
    worker-side (the RunSpec carries them as data); the serial path
    performs the same resolution here so the two paths stay
    bit-identical. Plain ``run_benchmark`` kwargs pass through.
    """
    resolved = dict(kwargs)
    scenario = resolved.pop("fault_scenario", None)
    if scenario is not None:
        if resolved.get("fault_plan") is not None:
            raise ValueError("pass either fault_plan or fault_scenario, not both")
        from repro.faults.plan import build_scenario

        config = ClusterConfig(**(cluster or YCSB_CLUSTER))
        resolved["fault_plan"] = build_scenario(
            scenario, num_sites=config.num_sites, duration_ms=duration_ms,
        )
    return resolved


# ---------------------------------------------------------------------------
# E1 / E2 — Figures 4a, 4b: YCSB throughput
# ---------------------------------------------------------------------------


def fig4a_ycsb_uniform(
    client_counts: Sequence[int] = (12, 24, 48),
    systems: Sequence[str] = ALL_SYSTEMS,
) -> Dict[str, Dict[int, RunResult]]:
    """Figure 4a: uniform YCSB, 50/50 RMW/scan, throughput vs clients."""
    results: Dict[str, Dict[int, RunResult]] = {s: {} for s in systems}
    for clients in client_counts:
        suite = run_suite(
            lambda: YCSBWorkload(YCSBConfig(rmw_fraction=0.5)),
            systems=systems,
            num_clients=clients,
        )
        for system, result in suite.items():
            results[system][clients] = result
    return results


def fig4b_ycsb_write_heavy(
    systems: Sequence[str] = ALL_SYSTEMS,
) -> Dict[str, RunResult]:
    """Figure 4b: uniform YCSB, 90/10 RMW/scan."""
    return run_suite(
        lambda: YCSBWorkload(YCSBConfig(rmw_fraction=0.9)), systems=systems
    )


# ---------------------------------------------------------------------------
# E3 / E4 / E15 — Figures 4c, 4d, 8e-8g: TPC-C latency
# ---------------------------------------------------------------------------


def tpcc_default_suite(
    systems: Sequence[str] = ALL_SYSTEMS,
    neworder_remote: float = 0.10,
    payment_remote: float = 0.15,
    num_clients: int = TPCC_CLIENTS,
    duration_ms: float = DURATION_MS,
) -> Dict[str, RunResult]:
    """The default-mix TPC-C run shared by figures 4c, 4d and 8e-8g."""
    return run_suite(
        lambda: TPCCWorkload(
            TPCCConfig(
                neworder_remote_fraction=neworder_remote,
                payment_remote_fraction=payment_remote,
            )
        ),
        systems=systems,
        cluster=TPCC_CLUSTER,
        num_clients=num_clients,
        duration_ms=duration_ms,
    )


# ---------------------------------------------------------------------------
# E5 — Figure 4e: throughput vs % New-Order
# ---------------------------------------------------------------------------


def fig4e_neworder_mix(
    neworder_fractions: Sequence[float] = (0.45, 0.90),
    systems: Sequence[str] = ALL_SYSTEMS,
) -> Dict[str, Dict[float, RunResult]]:
    """Figure 4e: shift the mix toward New-Order transactions."""
    results: Dict[str, Dict[float, RunResult]] = {s: {} for s in systems}
    for fraction in neworder_fractions:
        remainder = 1.0 - fraction
        suite = run_suite(
            lambda f=fraction, r=remainder: TPCCWorkload(
                TPCCConfig(
                    neworder_weight=f,
                    payment_weight=r / 2,
                    stocklevel_weight=r / 2,
                )
            ),
            systems=systems,
            cluster=TPCC_CLUSTER,
            num_clients=TPCC_CLIENTS,
            duration_ms=1000.0,
        )
        for system, result in suite.items():
            results[system][fraction] = result
    return results


# ---------------------------------------------------------------------------
# E6 — §VI-B3: New-Order latency vs % cross-warehouse
# ---------------------------------------------------------------------------


def cross_warehouse_sweep(
    remote_fractions: Sequence[float] = (0.0, 0.10, 0.33),
    systems: Sequence[str] = ("dynamast", "single-master", "multi-master", "partition-store"),
    transaction: str = "new_order",
) -> Dict[str, Dict[float, RunResult]]:
    """New-Order (or Payment, figure 8g) latency as remote rate grows."""
    results: Dict[str, Dict[float, RunResult]] = {s: {} for s in systems}
    for fraction in remote_fractions:
        if transaction == "new_order":
            config = TPCCConfig(neworder_remote_fraction=fraction)
        else:
            config = TPCCConfig(payment_remote_fraction=fraction)
        suite = run_suite(
            lambda c=config: TPCCWorkload(c),
            systems=systems,
            cluster=TPCC_CLUSTER,
            num_clients=TPCC_CLIENTS,
            duration_ms=1000.0,
        )
        for system, result in suite.items():
            results[system][fraction] = result
    return results


# ---------------------------------------------------------------------------
# E7 — §VI-B4: skewed YCSB
# ---------------------------------------------------------------------------


def skew_suite(systems: Sequence[str] = ALL_SYSTEMS) -> Dict[str, RunResult]:
    """Zipfian (theta = 0.75) 90/10 RMW/scan YCSB."""
    return run_suite(
        lambda: YCSBWorkload(YCSBConfig(rmw_fraction=0.9, zipf_theta=0.75)),
        systems=systems,
    )


# ---------------------------------------------------------------------------
# E8 — Figure 5b: adaptivity to workload change
# ---------------------------------------------------------------------------


@dataclass
class AdaptivityResult:
    """Timeline of DynaMast re-learning shuffled correlations."""

    timeline: List[Tuple[float, float]]
    early_throughput: float
    late_throughput: float
    improvement: float
    remaster_timeline: List[Tuple[float, float]]


def fig5b_adaptivity(
    num_clients: int = 30,
    duration_ms: float = 4000.0,
    bucket_ms: float = 500.0,
    seed: int = 7,
) -> AdaptivityResult:
    """Shuffled correlations against a manual range placement.

    The paper deploys 100 clients of 100% skewed RMWs whose partition
    correlations were randomized, with mastership manually
    range-allocated; DynaMast must learn the new correlations. We run
    below saturation so the latency saved by declining remastering is
    visible as throughput.
    """
    import random

    workload = YCSBWorkload(
        YCSBConfig(rmw_fraction=1.0, zipf_theta=0.75, affinity_txns=25)
    )
    workload.shuffle_correlations(random.Random(seed))
    placement = workload.scheme.range_placement(YCSB_CLUSTER["num_sites"])

    samples: List[Tuple[float, int, int]] = []

    def sample(system, _workload):
        selector = system.selector
        samples.append(
            (system.env.now, selector.updates_routed, selector.updates_remastered)
        )

    events = [
        (when, sample) for when in range(int(bucket_ms), int(duration_ms), int(bucket_ms))
    ]
    result = run_benchmark(
        "dynamast",
        workload,
        num_clients=num_clients,
        duration_ms=duration_ms,
        warmup_ms=0.0,
        cluster_config=ClusterConfig(**YCSB_CLUSTER),
        placement=placement,
        events=events,
    )
    timeline = result.metrics.timeline(bucket_ms, 0.0, duration_ms)
    # Drop the final (partial) bucket.
    timeline = timeline[:-1]
    remaster_timeline = []
    previous = (0.0, 0, 0)
    for when, routed, remastered in samples:
        routed_delta = routed - previous[1]
        remaster_delta = remastered - previous[2]
        rate = remaster_delta / max(1, routed_delta)
        remaster_timeline.append((when, rate))
        previous = (when, routed, remastered)
    early = timeline[0][1]
    late = sum(v for _, v in timeline[-2:]) / 2
    return AdaptivityResult(
        timeline=timeline,
        early_throughput=early,
        late_throughput=late,
        improvement=late / max(1.0, early),
        remaster_timeline=remaster_timeline,
    )


# ---------------------------------------------------------------------------
# E9 — Figure 5a + §VI-B6: hyperparameter sensitivity
# ---------------------------------------------------------------------------


@dataclass
class SensitivityResult:
    """Throughput and routing fractions per weight setting."""

    throughput: Dict[str, float]
    route_fractions: Dict[str, List[float]]
    remaster_rate: Dict[str, float]


def fig5a_sensitivity(
    scales: Sequence[float] = (0.0, 0.01, 1.0, 100.0),
    weight_names: Sequence[str] = ("balance", "intra_txn"),
    num_clients: int = 36,
    duration_ms: float = 1500.0,
) -> SensitivityResult:
    """Scale each strategy weight up/down/off on skewed YCSB.

    The paper varies each hyperparameter by two orders of magnitude in
    both directions and to zero, on a skewed workload.
    """
    throughput: Dict[str, float] = {}
    fractions: Dict[str, List[float]] = {}
    remaster: Dict[str, float] = {}
    base = StrategyWeights.for_ycsb()
    for name in weight_names:
        for scale in scales:
            weights = base.scaled(**{name: scale})
            label = f"{name} x{scale:g}"
            result = run_benchmark(
                "dynamast",
                YCSBWorkload(YCSBConfig(rmw_fraction=0.9, zipf_theta=0.75)),
                num_clients=num_clients,
                duration_ms=duration_ms,
                warmup_ms=WARMUP_MS,
                cluster_config=ClusterConfig(**YCSB_CLUSTER),
                weights=weights,
            )
            throughput[label] = result.throughput
            fractions[label] = result.route_fractions
            remaster[label] = result.remaster_rate
    return SensitivityResult(throughput, fractions, remaster)


# ---------------------------------------------------------------------------
# E10 — Figure 7 + §VI-B7 + Appendix D: overhead breakdown
# ---------------------------------------------------------------------------


@dataclass
class BreakdownResult:
    """Latency breakdown, remaster frequency, and traffic shares."""

    breakdown: Dict[str, float]
    remaster_txn_fraction: float
    selector_remaster_rate: float
    traffic_bytes: Dict[str, int]


def fig7_breakdown(
    num_clients: int = YCSB_CLIENTS, duration_ms: float = 2000.0
) -> BreakdownResult:
    """Uniform 50/50 YCSB breakdown of DynaMast transaction time."""
    result = run_benchmark(
        "dynamast",
        YCSBWorkload(YCSBConfig(rmw_fraction=0.5)),
        num_clients=num_clients,
        duration_ms=duration_ms,
        warmup_ms=WARMUP_MS,
        cluster_config=ClusterConfig(**YCSB_CLUSTER),
    )
    return BreakdownResult(
        breakdown=result.metrics.breakdown(),
        remaster_txn_fraction=result.metrics.remaster_fraction(),
        selector_remaster_rate=result.remaster_rate,
        traffic_bytes=result.traffic_bytes,
    )


# ---------------------------------------------------------------------------
# E11 — Figure 6b: database size scaling
# ---------------------------------------------------------------------------


def fig6b_database_size(
    partition_counts: Sequence[int] = (2000, 12000),
    mixes: Sequence[Tuple[str, float, float]] = (
        ("50-50U", 0.5, 0.0),
        ("90-10U", 0.9, 0.0),
        ("90-10S", 0.9, 0.75),
    ),
) -> Dict[str, Dict[int, RunResult]]:
    """DynaMast throughput for small vs large (6x) databases."""
    results: Dict[str, Dict[int, RunResult]] = {}
    for label, rmw, theta in mixes:
        results[label] = {}
        for partitions in partition_counts:
            result = run_benchmark(
                "dynamast",
                YCSBWorkload(
                    YCSBConfig(
                        num_partitions=partitions,
                        rmw_fraction=rmw,
                        zipf_theta=theta,
                    )
                ),
                num_clients=YCSB_CLIENTS,
                duration_ms=DURATION_MS,
                warmup_ms=WARMUP_MS,
                cluster_config=ClusterConfig(**YCSB_CLUSTER),
            )
            results[label][partitions] = result
    return results


# ---------------------------------------------------------------------------
# E12 — Figure 6c: site scalability
# ---------------------------------------------------------------------------


def fig6c_site_scaling(
    site_counts: Sequence[int] = (4, 8, 12, 16),
    clients_per_site: int = 12,
    duration_ms: float = 1000.0,
) -> Dict[int, RunResult]:
    """DynaMast 50/50 uniform YCSB throughput as sites scale 4 -> 16."""
    results = {}
    for sites in site_counts:
        results[sites] = run_benchmark(
            "dynamast",
            YCSBWorkload(YCSBConfig(rmw_fraction=0.5)),
            num_clients=clients_per_site * sites,
            duration_ms=duration_ms,
            warmup_ms=WARMUP_MS,
            cluster_config=ClusterConfig(
                num_sites=sites, cores_per_site=YCSB_CLUSTER["cores_per_site"]
            ),
        )
    return results


# ---------------------------------------------------------------------------
# E13 / E14 — Figures 8a-8d: SmallBank
# ---------------------------------------------------------------------------


def smallbank_suite(
    systems: Sequence[str] = ALL_SYSTEMS,
    hotspot_fraction: float = 0.0,
) -> Dict[str, RunResult]:
    """SmallBank throughput and tail latencies."""
    return run_suite(
        lambda: SmallBankWorkload(
            SmallBankConfig(hotspot_fraction=hotspot_fraction)
        ),
        systems=systems,
        num_clients=YCSB_CLIENTS,
        duration_ms=1500.0,
    )
