"""Transaction descriptions shared by workloads, sites, and systems.

A transaction announces its full write set up front — the paper's
system model assumes write sets are known (via reconnaissance queries
where necessary, §II-B1) so that the site selector can master the whole
write set at a single site before execution begins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Tuple

#: A fully-qualified record key: (table name, primary key).
Key = Tuple[str, Any]

_txn_ids = count(1)


@dataclass(slots=True)
class Transaction:
    """One client request.

    ``write_set`` and ``read_set`` are point accesses; ``scan_set``
    holds keys touched by range scans (cheaper per record). A
    transaction is read-only iff its write set is empty.
    """

    txn_type: str
    client_id: int
    write_set: Tuple[Key, ...] = ()
    read_set: Tuple[Key, ...] = ()
    scan_set: Tuple[Key, ...] = ()
    #: Extra execution CPU beyond per-operation costs (stored-procedure logic).
    extra_cpu_ms: float = 0.0
    txn_id: int = field(default_factory=lambda: next(_txn_ids))
    #: Phase -> accumulated milliseconds, filled in while the txn runs.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def is_read_only(self) -> bool:
        return not self.write_set

    def add_timing(self, phase: str, duration: float) -> None:
        """Accumulate ``duration`` ms into the breakdown bucket ``phase``."""
        try:
            self.timings[phase] += duration
        except KeyError:
            self.timings[phase] = duration

    def all_keys(self) -> Tuple[Key, ...]:
        """Every key the transaction touches (writes, reads, scans)."""
        return self.write_set + self.read_set + self.scan_set


@dataclass(slots=True)
class Outcome:
    """Result of submitting a transaction to a system."""

    committed: bool
    #: True if the site selector had to remaster (DynaMast) or ship data
    #: (LEAP) before this transaction could execute.
    remastered: bool = False
    #: True if the transaction ran as a distributed (multi-site) txn.
    distributed: bool = False
    #: Number of times the transaction was aborted and retried.
    retries: int = 0
    #: Why a non-committed transaction gave up: "conflict" (the legacy
    #: optimistic-routing abort), "timeout", or "site_crash".
    abort_reason: str = ""
