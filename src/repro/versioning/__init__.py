"""Version vectors and consistency rules (paper §III-A).

* :class:`~repro.versioning.vectors.VersionVector` — the m-dimensional
  integer vectors used as site (`svv`), transaction (`tvv`) and client
  session (`cvv`) versions.
* :func:`~repro.versioning.vectors.can_apply_refresh` — the update
  application rule (Equation 1).
* :func:`~repro.versioning.vectors.satisfies_session` — the
  strong-session snapshot-isolation freshness rule.
* :class:`~repro.versioning.watch.VersionWatch` — a condition variable
  that wakes simulated processes when a site's version vector advances
  past a target.
"""

from repro.versioning.vectors import (
    VersionVector,
    can_apply_refresh,
    satisfies_session,
)
from repro.versioning.watch import VersionWatch

__all__ = [
    "VersionVector",
    "VersionWatch",
    "can_apply_refresh",
    "satisfies_session",
]
