"""Condition variable over a site version vector.

Data sites block transactions and refresh applications until their
``svv`` dominates some target vector (a grant's release point, a
client's session vector, a refresh's dependency vector). The
:class:`VersionWatch` keeps the pending targets and wakes waiters each
time the vector advances.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.sim.core import Environment, Event
from repro.versioning.vectors import VersionVector


class VersionWatch:
    """Wakes simulated processes when a version vector reaches a target."""

    def __init__(self, env: Environment, vector: VersionVector):
        self.env = env
        self.vector = vector
        self._waiters: List[Tuple[Callable[[], bool], Event]] = []

    def wait_for(self, target: VersionVector) -> Event:
        """Event that triggers once the watched vector dominates ``target``."""
        return self.wait_until(lambda: self.vector.dominates(target))

    def wait_until(self, predicate: Callable[[], bool]) -> Event:
        """Event that triggers once ``predicate()`` becomes true.

        The predicate is evaluated immediately and then after every
        :meth:`notify` call; it must depend only on state that changes
        with such notifications.
        """
        event = Event(self.env)
        if predicate():
            event.succeed()
        else:
            self._waiters.append((predicate, event))
        return event

    def notify(self) -> None:
        """Re-evaluate all pending waits after the vector advanced."""
        if not self._waiters:
            return
        still_waiting = []
        for predicate, event in self._waiters:
            if predicate():
                event.succeed()
            else:
                still_waiting.append((predicate, event))
        self._waiters = still_waiting

    @property
    def pending(self) -> int:
        """Number of processes currently blocked on this watch."""
        return len(self._waiters)
