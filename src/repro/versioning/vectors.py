"""m-dimensional version vectors (paper §III-A).

In a dynamically mastered system with ``m`` sites:

* each site :math:`S_i` maintains a *site version vector* ``svv_i``
  where ``svv_i[j]`` counts the refresh transactions applied at
  :math:`S_i` for update transactions originating at :math:`S_j`
  (``svv_i[i]`` counts local commits);
* each update transaction ``T`` committing at :math:`S_i` gets a
  *transaction version vector* ``tvv_T`` — its begin vector with
  position ``i`` bumped to the commit sequence number;
* each client session tracks a *client version vector* ``cvv`` used to
  enforce strong-session snapshot isolation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

#: Interned all-zero tuples by dimension. Every session, recovery pass,
#: and 2PC merge starts from a zero vector; the immutable template is
#: built once per dimension and ``list()``-expanded into each fresh
#: vector, and callers that need an immutable zero snapshot (initial
#: cvv exports, log markers) can share the interned tuple directly.
_ZERO_TUPLES: dict = {}


def zero_tuple(size: int) -> Tuple[int, ...]:
    """The interned all-zero tuple of the given dimension."""
    cached = _ZERO_TUPLES.get(size)
    if cached is None:
        if size < 1:
            raise ValueError(f"version vector dimension must be >= 1, got {size}")
        cached = _ZERO_TUPLES[size] = (0,) * size
    return cached


class VersionVector:
    """A mutable vector of non-negative integers with element-wise ops."""

    __slots__ = ("counts",)

    def __init__(self, values: Iterable[int]):
        self.counts: List[int] = list(values)
        if any(value < 0 for value in self.counts):
            raise ValueError(f"version vector entries must be >= 0: {self.counts}")

    @classmethod
    def zeros(cls, size: int) -> "VersionVector":
        """An all-zero vector of the given dimension.

        Skips ``__init__``'s validation scan — zeros need no checking —
        and expands the interned zero template for the dimension.
        """
        vector = cls.__new__(cls)
        vector.counts = list(zero_tuple(size))
        return vector

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.counts)

    def __getitem__(self, index: int) -> int:
        return self.counts[index]

    def __setitem__(self, index: int, value: int) -> None:
        if value < 0:
            raise ValueError(f"version vector entries must be >= 0: {value}")
        self.counts[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self.counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VersionVector):
            return self.counts == other.counts
        return NotImplemented

    def __hash__(self):
        raise TypeError("VersionVector is mutable and unhashable; use to_tuple()")

    def __repr__(self) -> str:
        return f"VersionVector({self.counts})"

    # -- element-wise operations --------------------------------------------

    def copy(self) -> "VersionVector":
        """An independent copy of this vector.

        Skips ``__init__``'s validation scan — the entries were already
        validated when this vector was built (hot path: one copy per
        refresh-delay estimate and per session merge).
        """
        clone = VersionVector.__new__(VersionVector)
        clone.counts = self.counts[:]
        return clone

    def to_tuple(self) -> Tuple[int, ...]:
        """An immutable snapshot of the entries."""
        return tuple(self.counts)

    def dominates(self, other: "VersionVector") -> bool:
        """True if ``self[k] >= other[k]`` for every position ``k``."""
        self._check_dimension(other)
        theirs = other.counts
        index = 0
        for mine in self.counts:
            if mine < theirs[index]:
                return False
            index += 1
        return True

    def strictly_less(self, other: "VersionVector") -> bool:
        """Paper footnote ordering: ``self[k] < other[k]`` everywhere."""
        self._check_dimension(other)
        theirs = other.counts
        index = 0
        for mine in self.counts:
            if mine >= theirs[index]:
                return False
            index += 1
        return True

    def element_max(self, other: "VersionVector") -> "VersionVector":
        """New vector holding the per-position maximum.

        Allocates the result; accumulation loops should prefer in-place
        :meth:`merge` into a reused accumulator, which allocates nothing.
        """
        self._check_dimension(other)
        result = VersionVector.__new__(VersionVector)
        result.counts = list(map(max, self.counts, other.counts))
        return result

    def merge(self, other: "VersionVector") -> None:
        """In-place element-wise maximum (advance a session vector)."""
        self._check_dimension(other)
        for index, theirs in enumerate(other.counts):
            if theirs > self.counts[index]:
                self.counts[index] = theirs

    def increment(self, index: int) -> int:
        """Bump position ``index``; returns the new value."""
        self.counts[index] += 1
        return self.counts[index]

    def lag_behind(self, target: "VersionVector") -> int:
        """L1 distance below ``target``: how many updates are missing.

        This is the :math:`\\|\\cdot\\|_1` term of the refresh-delay
        estimate (Equation 5): entries where ``self`` already exceeds
        the target contribute zero.
        """
        self._check_dimension(target)
        lag = 0
        wanted = target.counts
        index = 0
        for have in self.counts:
            missing = wanted[index] - have
            if missing > 0:
                lag += missing
            index += 1
        return lag

    def total(self) -> int:
        """Sum of all entries (total updates reflected)."""
        return sum(self.counts)

    def _check_dimension(self, other: "VersionVector") -> None:
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"dimension mismatch: {len(self.counts)} vs {len(other.counts)}"
            )


def can_apply_refresh(svv, tvv, origin: int) -> bool:
    """The update application rule (Equation 1).

    A replica with site version vector ``svv`` may apply the refresh
    transaction for an update that committed at site ``origin`` with
    transaction version vector ``tvv`` only when

    * ``svv[k] >= tvv[k]`` for every ``k != origin`` (every transaction
      the update depends on has been applied locally), and
    * ``svv[origin] == tvv[origin] - 1`` (refreshes from the origin are
      applied in exactly their commit order).

    Accepts :class:`VersionVector` or any plain indexable of the same
    dimension (refresh managers pass log records' ``tvv`` tuples
    straight through, avoiding a vector allocation per record).
    """
    have = svv.counts if type(svv) is VersionVector else svv
    want = tvv.counts if type(tvv) is VersionVector else tvv
    if have[origin] != want[origin] - 1:
        return False
    index = 0
    for wanted in want:
        if index != origin and have[index] < wanted:
            return False
        index += 1
    return True


def satisfies_session(svv: VersionVector, cvv: VersionVector) -> bool:
    """Session freshness rule for strong-session SI (paper §III-A).

    A client with session vector ``cvv`` may execute at a site whose
    version vector ``svv`` dominates ``cvv`` — the site reflects every
    update the client has previously observed.
    """
    return svv.dominates(cvv)
