"""Partition mapping and offline partitioning.

* :class:`~repro.partitioning.schemes.PartitionScheme` — maps record
  keys to partition ids and provides the initial partition -> site
  placements used by the fixed-mastership comparators (range, hash,
  warehouse, round-robin).
* :mod:`repro.partitioning.schism` — a Schism-style offline
  partitioner (Curino et al., VLDB 2010): build the co-access graph
  from a workload sample and compute a balanced min-cut placement. The
  paper uses Schism only to confirm that range partitioning (YCSB) and
  warehouse partitioning (TPC-C) minimize distributed transactions; we
  use it the same way.
"""

from repro.partitioning.schemes import PartitionScheme
from repro.partitioning.schism import SchismPartitioner

__all__ = ["PartitionScheme", "SchismPartitioner"]
