"""A Schism-style offline workload-driven partitioner.

Schism (Curino et al., VLDB 2010) models a workload sample as a graph —
nodes are data items (here: partitions), edges connect items co-accessed
by a transaction, weighted by co-access frequency — and computes a
balanced min-cut assignment of nodes to sites so that as few
transactions as possible span sites.

The paper uses Schism offline to pick the placement that favours the
partition-store and multi-master comparators (§VI-A.1). We implement
the same idea: Kernighan–Lin recursive bisection over the co-access
graph (via networkx), followed by a greedy load-balancing repair pass.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List

import networkx as nx

from repro.transactions import Transaction


class SchismPartitioner:
    """Build a co-access graph from sampled transactions and cut it."""

    def __init__(self, num_partitions: int, num_sites: int, seed: int = 0):
        if num_sites < 1:
            raise ValueError(f"num_sites must be >= 1, got {num_sites}")
        self.num_partitions = num_partitions
        self.num_sites = num_sites
        self.seed = seed
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_partitions))
        for node in self.graph.nodes:
            self.graph.nodes[node]["weight"] = 0

    def observe(self, partitions: Iterable[int]) -> None:
        """Account one transaction's accessed partition set."""
        accessed = sorted(set(partitions))
        for partition in accessed:
            self.graph.nodes[partition]["weight"] += 1
        for left, right in combinations(accessed, 2):
            if self.graph.has_edge(left, right):
                self.graph[left][right]["weight"] += 1
            else:
                self.graph.add_edge(left, right, weight=1)

    def observe_workload(
        self,
        transactions: Iterable[Transaction],
        partition_of,
    ) -> None:
        """Account a stream of transactions via a key -> partition map."""
        for txn in transactions:
            partitions = {
                partition
                for partition in (partition_of(key) for key in txn.all_keys())
                if partition is not None
            }
            if partitions:
                self.observe(partitions)

    # -- partitioning -----------------------------------------------------------

    def placement(self) -> Dict[int, int]:
        """Compute the partition -> site assignment."""
        groups = self._split(list(self.graph.nodes), self.num_sites)
        placement: Dict[int, int] = {}
        for site, group in enumerate(groups):
            for partition in group:
                placement[partition] = site
        return self._rebalance(placement)

    def cut_weight(self, placement: Dict[int, int]) -> int:
        """Total co-access weight crossing sites (distributed txn proxy)."""
        return sum(
            data["weight"]
            for left, right, data in self.graph.edges(data=True)
            if placement[left] != placement[right]
        )

    def _split(self, nodes: List[int], parts: int) -> List[List[int]]:
        """Recursive Kernighan–Lin bisection into ``parts`` groups."""
        if parts == 1 or len(nodes) <= 1:
            return [nodes] + [[] for _ in range(parts - 1)]
        left_parts = parts // 2
        right_parts = parts - left_parts
        subgraph = self.graph.subgraph(nodes)
        target = len(nodes) * left_parts // parts
        left, right = self._bisect(subgraph, nodes, target)
        return self._split(left, left_parts) + self._split(right, right_parts)

    def _bisect(self, subgraph, nodes: List[int], target: int):
        """One balanced bisection: target nodes on the left side."""
        ordered = sorted(nodes)
        seed_left = set(ordered[:target])
        seed_right = set(ordered[target:])
        if not seed_left or not seed_right:
            return list(seed_left), list(seed_right)
        left, right = nx.algorithms.community.kernighan_lin_bisection(
            subgraph,
            partition=(seed_left, seed_right),
            weight="weight",
            seed=self.seed,
        )
        return sorted(left), sorted(right)

    def _rebalance(self, placement: Dict[int, int]) -> Dict[int, int]:
        """Greedy repair: move light nodes off overloaded sites.

        Kernighan–Lin balances node *counts*; this pass balances node
        access *weights* so one site does not end up with all the hot
        partitions, at minimal extra cut cost.
        """
        loads = [0.0] * self.num_sites
        for partition, site in placement.items():
            loads[site] += self.graph.nodes[partition]["weight"]
        average = sum(loads) / self.num_sites
        tolerance = 1.25
        for partition in sorted(
            placement, key=lambda p: self.graph.nodes[p]["weight"]
        ):
            site = placement[partition]
            if loads[site] <= average * tolerance:
                continue
            weight = self.graph.nodes[partition]["weight"]
            best = min(range(self.num_sites), key=lambda s: loads[s])
            if loads[best] + weight < loads[site]:
                placement[partition] = best
                loads[site] -= weight
                loads[best] += weight
        return placement
