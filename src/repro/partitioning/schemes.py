"""Partition schemes: key -> partition mapping and initial placements.

The site selector tracks mastership at partition granularity (paper
§V-B); the fixed-mastership comparators additionally need an initial
partition -> site placement. A partition id of ``None`` marks keys of
static read-only tables (e.g. TPC-C ``item``), which are replicated
everywhere even in the partitioned comparators and never mastered.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set

from repro.transactions import Key


class PartitionScheme:
    """Maps record keys to partitions and computes placements."""

    def __init__(
        self,
        partition_of: Callable[[Key], Optional[int]],
        num_partitions: int,
    ):
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self._partition_of = partition_of
        self.num_partitions = num_partitions

    def partition(self, key: Key) -> Optional[int]:
        """Partition id of ``key``; None for static replicated tables."""
        partition = self._partition_of(key)
        if partition is not None and not 0 <= partition < self.num_partitions:
            raise ValueError(
                f"key {key!r} mapped to partition {partition}, "
                f"outside [0, {self.num_partitions})"
            )
        return partition

    def partitions_of(self, keys: Iterable[Key]) -> Set[int]:
        """Distinct non-static partitions touched by ``keys``."""
        return {
            partition
            for partition in (self.partition(key) for key in keys)
            if partition is not None
        }

    # -- placements ------------------------------------------------------------

    def range_placement(self, num_sites: int) -> Dict[int, int]:
        """Contiguous blocks of partitions per site.

        Schism reports range partitioning minimizes distributed
        transactions for the paper's YCSB workload (§VI-B1).
        """
        self._check_sites(num_sites)
        block = -(-self.num_partitions // num_sites)  # ceil division
        return {
            partition: min(partition // block, num_sites - 1)
            for partition in range(self.num_partitions)
        }

    def round_robin_placement(self, num_sites: int) -> Dict[int, int]:
        """Partition ``p`` lives at site ``p mod num_sites``."""
        self._check_sites(num_sites)
        return {
            partition: partition % num_sites
            for partition in range(self.num_partitions)
        }

    def hash_placement(self, num_sites: int) -> Dict[int, int]:
        """Pseudo-random but deterministic placement by partition hash."""
        self._check_sites(num_sites)
        return {
            partition: hash(("placement", partition)) % num_sites
            for partition in range(self.num_partitions)
        }

    def single_site_placement(self, site: int = 0) -> Dict[int, int]:
        """Everything mastered at one site (the single-master system)."""
        return {partition: site for partition in range(self.num_partitions)}

    @staticmethod
    def _check_sites(num_sites: int) -> None:
        if num_sites < 1:
            raise ValueError(f"num_sites must be >= 1, got {num_sites}")

    def owner_lookup(
        self, placement: Dict[int, int], default: int = 0
    ) -> Callable[[Key], int]:
        """A ``key -> owning site`` function for loading partitioned clusters.

        Static-table keys (partition None) are assigned ``default`` for
        loading purposes; at run time they are replicated everywhere.
        """

        def owner_of(key: Key) -> int:
            partition = self.partition(key)
            if partition is None:
                return default
            return placement[partition]

        return owner_of
