"""Cluster assembly and the common system interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim.config import ClusterConfig
from repro.sim.core import Environment
from repro.sim.network import Network
from repro.sim.rand import RandomStreams
from repro.sim.resources import Resource
from repro.sites.activity import PartitionActivity
from repro.sites.data_site import DataSite
from repro.transactions import Key, Transaction
from repro.versioning.vectors import VersionVector


class Cluster:
    """A set of simulated data sites sharing a network and a clock.

    With ``replicated=True`` (default) every site lazily maintains a
    full replica via the durable logs; with ``replicated=False`` the
    sites are partition stores holding only their own master copies
    (used by the partition-store and LEAP comparators).
    """

    def __init__(self, config: Optional[ClusterConfig] = None, replicated: bool = True,
                 obs=None):
        self.config = config or ClusterConfig()
        self.replicated = replicated
        self.env = Environment(obs=obs)
        #: The observability handle (``NULL_OBS`` unless observed).
        self.obs = self.env.obs
        self.streams = RandomStreams(self.config.seed)
        self.network = Network(
            self.env, self.config.network, rng=self.streams.stream("network")
        )
        self.activity = PartitionActivity(self.env)
        #: The installed fault injector, or None. Routers consult this
        #: for suspicion state; None means the legacy (infallible) path.
        self.faults = None
        self.sites: List[DataSite] = [
            DataSite(
                self.env,
                index,
                self.config.num_sites,
                self.config,
                self.network,
                self.activity,
                replicated=replicated,
            )
            for index in range(self.config.num_sites)
        ]
        for site in self.sites:
            site.connect(self.sites)

    @property
    def num_sites(self) -> int:
        return self.config.num_sites

    def place_partitions(self, placement: Dict[int, int]) -> None:
        """Assign initial mastership: partition id -> site index."""
        for site in self.sites:
            site.mastered.clear()
        for partition, site_index in placement.items():
            self.sites[site_index].mastered.add(partition)

    def load(
        self,
        records: Iterable[Tuple[Key, object]],
        owner_of: Optional[Callable[[Key], int]] = None,
    ) -> None:
        """Bulk-load initial data.

        In a replicated cluster every site receives every record; in a
        partitioned cluster each record is loaded only at its owner
        (``owner_of`` maps a key to a site index and is then required).
        """
        if self.replicated:
            for key, value in records:
                for site in self.sites:
                    site.database.load(key, value)
            return
        if owner_of is None:
            raise ValueError("owner_of is required when loading a partitioned cluster")
        for key, value in records:
            self.sites[owner_of(key)].database.load(key, value)

    def run(self, until: float) -> None:
        """Advance the simulation to time ``until`` (milliseconds)."""
        self.env.run(until=until)


@dataclass
class Session:
    """One client's session state for strong-session SI."""

    client_id: int
    cvv: VersionVector

    def observe(self, version: VersionVector) -> None:
        """Fold a transaction's observed/created version into the session."""
        self.cvv.merge(version)


class System(ABC):
    """Common interface of the five evaluated architectures."""

    #: Short name used in reports.
    name: str = "abstract"
    #: Whether this architecture maintains replicas at every site.
    replicated: bool = True

    def __init__(self, cluster: Cluster):
        if cluster.replicated != self.replicated:
            raise ValueError(
                f"{self.name} requires a cluster with replicated={self.replicated}"
            )
        self.cluster = cluster
        self.env = cluster.env
        self.obs = cluster.obs
        self.network = cluster.network
        self.config = cluster.config
        self.sites = cluster.sites
        self.streams = cluster.streams
        #: Router/front-end machine for the comparator systems (DynaMast
        #: uses its site selector's CPU instead).
        self.router_cpu = Resource(self.env, self.config.selector_cores)

    def new_session(self, client_id: int) -> Session:
        return Session(client_id, VersionVector.zeros(self.cluster.num_sites))

    @abstractmethod
    def submit(self, txn: Transaction, session: Session) -> Generator:
        """Process one transaction; a generator returning an :class:`Outcome`."""

    # -- shared helpers ------------------------------------------------------

    def client_hop(self, txn: Transaction, size: int = 128) -> Generator:
        """One client-to-system network traversal, accounted to the txn."""
        env = self.env
        delay = self.network.delay_for(size)
        self.network.account("client", size)
        started = env._now
        yield env.timeout(delay)
        txn.add_timing("network", delay)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.span("network", started, env._now,
                        track="net", txn=txn, category="client")

    def choose_fresh_site(self, session: Session, rng) -> int:
        """Read routing (paper §IV-B): a random session-fresh site.

        Among sites whose version vector dominates the client's session
        vector, pick uniformly at random — minimizing blocking while
        spreading read load. If no site is fresh enough yet, pick the
        site with the smallest lag; the read then blocks briefly at
        that site.

        Under fault injection, crashed and suspected sites are routed
        around (falling back to merely-alive sites if suspicion covers
        everything).
        """
        faults = self.cluster.faults
        if faults is None:
            candidates = self.sites
        else:
            detector = faults.detector
            candidates = [
                site for site in self.sites
                if site.alive and not detector.is_suspected(site.index)
            ]
            if not candidates:
                candidates = [site for site in self.sites if site.alive]
            if not candidates:
                candidates = self.sites
        fresh = [
            site.index for site in candidates if site.svv.dominates(session.cvv)
        ]
        if fresh:
            return fresh[rng.randrange(len(fresh))]
        return min(
            candidates, key=lambda site: site.svv.lag_behind(session.cvv)
        ).index
