"""The DynaMast system (paper §V): dynamic mastering + adaptive routing."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.site_selector import SiteSelector
from repro.core.statistics import StatisticsConfig
from repro.core.strategy import StrategyWeights
from repro.faults.errors import FaultError, RpcTimeout, TransactionAborted
from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import RetryPolicy, guarded_call, remote_call
from repro.systems.base import Cluster, Session, System
from repro.transactions import Outcome, Transaction


class DynaMast(System):
    """Replicated multi-master with dynamic mastership transfer.

    Guarantees one-site execution for every transaction: reads run at
    any session-fresh replica; updates run at the single site that
    masters (after remastering, if necessary) the whole write set.
    """

    name = "dynamast"
    replicated = True

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Optional[Dict[int, int]] = None,
        weights: Optional[StrategyWeights] = None,
        stats_config: Optional[StatisticsConfig] = None,
    ):
        super().__init__(cluster)
        self.scheme = scheme
        # The paper gives DynaMast no curated initial placement — it
        # must learn one. Round-robin scatters partitions neutrally.
        if placement is None:
            placement = scheme.round_robin_placement(cluster.num_sites)
        self.placement = placement
        cluster.place_partitions(placement)
        self.selector = SiteSelector(cluster, scheme, placement, weights, stats_config)

    def submit(self, txn: Transaction, session: Session):
        if self.cluster.faults is not None:
            outcome = yield from self._submit_faulted(txn, session)
            return outcome
        yield from self.client_hop(txn)  # client -> site selector

        if txn.is_read_only:
            site_index = yield from self.selector.route_read(txn, session)
            yield from self.client_hop(txn)  # selector -> client
            begin = yield from remote_call(
                self.network,
                self.sites[site_index].execute_read(txn, min_begin=session.cvv),
                category="client",
                txn=txn,
            )
            session.observe(begin)
            return Outcome(committed=True)

        route = yield from self.selector.route_update(txn, session)
        yield from self.client_hop(txn)  # selector -> client (site + version)
        min_vv = session.cvv if route.min_vv is None else route.min_vv.element_max(session.cvv)
        tvv = yield from remote_call(
            self.network,
            self.sites[route.site].execute_update(
                txn, min_vv, partitions=route.partitions
            ),
            category="client",
            txn=txn,
        )
        session.observe(tvv)
        return Outcome(committed=True, remastered=route.remastered)

    def _submit_faulted(self, txn: Transaction, session: Session):
        """Fault-aware submission: guarded RPCs, bounded retries.

        Each attempt re-routes from scratch, so a retry naturally lands
        on a surviving (or newly restarted) site. A lost-reply timeout
        after dispatch re-executes the transaction — at-least-once
        semantics; every execution is replicated consistently, so
        replicas still converge (see DESIGN.md, Fault model).
        """
        faults = self.cluster.faults
        policy = RetryPolicy(faults.rpc, faults.rng)
        yield from self.client_hop(txn)  # client -> site selector

        if txn.is_read_only:
            hedged = faults.rpc.hedged_reads
            for attempt in range(policy.attempts):
                site_index = yield from self.selector.route_read(txn, session)
                yield from self.client_hop(txn)  # selector -> client
                site = self.sites[site_index]
                try:
                    if hedged:
                        begin = yield from self._hedged_read(txn, session, site)
                    else:
                        begin = yield from guarded_call(
                            self.network,
                            site,
                            site.execute_read(txn, min_begin=session.cvv),
                            category="client",
                            txn=txn,
                        )
                except FaultError as exc:
                    if attempt + 1 >= policy.attempts:
                        return Outcome(
                            committed=False, retries=attempt, abort_reason=exc.reason
                        )
                    yield self.env.timeout(policy.backoff_ms(attempt))
                    continue
                session.observe(begin)
                return Outcome(committed=True, retries=attempt)

        remastered = False
        for attempt in range(policy.attempts):
            try:
                route = yield from self.selector.route_update(txn, session)
            except TransactionAborted as exc:
                return Outcome(
                    committed=False, retries=attempt, abort_reason=exc.reason
                )
            remastered = remastered or route.remastered
            yield from self.client_hop(txn)  # selector -> client (site + version)
            min_vv = (
                session.cvv
                if route.min_vv is None
                else route.min_vv.element_max(session.cvv)
            )
            site = self.sites[route.site]
            try:
                tvv = yield from guarded_call(
                    self.network,
                    site,
                    site.execute_update(
                        txn, min_vv, partitions=route.partitions, token=route.token
                    ),
                    category="client",
                    txn=txn,
                )
            except FaultError as exc:
                if not (isinstance(exc, RpcTimeout) and exc.dispatched):
                    # The handler never started (lost request, refused
                    # at a dead site, or interrupted with its cleanup
                    # run): deregister our routing. With a dispatched
                    # timeout the live handler owns its own finally.
                    self.cluster.activity.finish(
                        route.site, route.partitions, route.token
                    )
                if attempt + 1 >= policy.attempts:
                    return Outcome(
                        committed=False,
                        retries=attempt,
                        remastered=remastered,
                        abort_reason=exc.reason,
                    )
                yield self.env.timeout(policy.backoff_ms(attempt))
                continue
            session.observe(tvv)
            return Outcome(committed=True, remastered=remastered, retries=attempt)
        raise AssertionError("unreachable: retry loop always returns")

    # -- hedged reads (gray-failure defense) -------------------------------

    def _absorbed_read(self, site, txn: Transaction, session: Session, box):
        """Drive one guarded read, parking its outcome in ``box``.

        The wrapping process always succeeds, so a racer nobody awaits
        anymore (the other replica answered first) cannot surface an
        unhandled simulation error.
        """
        try:
            box.result = yield from guarded_call(
                self.network,
                site,
                site.execute_read(txn, min_begin=session.cvv),
                category="client",
                txn=txn,
            )
        except FaultError as exc:
            box.exc = exc

    def _backup_replica(self, primary_index: int, session: Session):
        """The replica a hedged read falls back to: healthiest first.

        Live, unsuspected, not the primary; among those, the most
        session-fresh (lowest lag behind the client's vector), lowest
        site id on ties. Deterministic — no RNG draw — so enabling
        hedging perturbs nothing else.
        """
        detector = self.cluster.faults.detector
        candidates = [
            site for site in self.sites
            if site.index != primary_index
            and site.alive
            and not detector.is_suspected(site.index)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda site: (site.svv.lag_behind(session.cvv), site.index),
        )

    def _hedged_read(self, txn: Transaction, session: Session, primary):
        """First-response-wins read with an adaptively delayed backup.

        The primary read runs as its own process; if it has not
        resolved within the hedge delay (the primary's hedge-quantile
        RTT), a backup read is launched at another replica and the two
        race. The *first successful* response wins — a racer that
        fails defers to the survivor — and the caller applies exactly
        one session observation, so effects are never double-applied
        (reads are side-effect-free at the sites; the loser merely
        finishes consuming its replica's CPU). Raises the primary's
        fault when both racers fail.
        """
        env = self.env
        faults = self.cluster.faults
        primary_box = _HedgeBox()
        primary_proc = env.process(
            self._absorbed_read(primary, txn, session, primary_box)
        )
        yield env.any_of([
            primary_proc, env.timeout(faults.hedge_delay_ms(primary.index)),
        ])
        if not primary_proc.triggered:
            backup = self._backup_replica(primary.index, session)
            if backup is not None:
                faults.hedges_launched += 1
                backup_box = _HedgeBox()
                backup_proc = env.process(
                    self._absorbed_read(backup, txn, session, backup_box)
                )
                while True:
                    if primary_proc.triggered and primary_box.exc is None:
                        return primary_box.result
                    if backup_proc.triggered and backup_box.exc is None:
                        faults.hedge_wins += 1
                        if not primary_proc.triggered:
                            # The backup answered while the primary was
                            # still silent past its hedge delay: latency
                            # evidence against the primary, fed to the
                            # detector so a fail-slow site accrues
                            # suspicion even though its RPCs eventually
                            # succeed within the hard deadline.
                            faults.detector.report_timeout(primary.index)
                        return backup_box.result
                    if primary_proc.triggered and backup_proc.triggered:
                        raise primary_box.exc
                    yield env.any_of([
                        proc for proc in (primary_proc, backup_proc)
                        if not proc.triggered
                    ])
        yield primary_proc
        if primary_box.exc is not None:
            raise primary_box.exc
        return primary_box.result


class _HedgeBox:
    """Out-of-band result slot for one hedged-read racer."""

    __slots__ = ("result", "exc")

    def __init__(self):
        self.result = None
        self.exc = None
