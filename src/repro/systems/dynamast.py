"""The DynaMast system (paper §V): dynamic mastering + adaptive routing."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.site_selector import SiteSelector
from repro.core.statistics import StatisticsConfig
from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import remote_call
from repro.systems.base import Cluster, Session, System
from repro.transactions import Outcome, Transaction


class DynaMast(System):
    """Replicated multi-master with dynamic mastership transfer.

    Guarantees one-site execution for every transaction: reads run at
    any session-fresh replica; updates run at the single site that
    masters (after remastering, if necessary) the whole write set.
    """

    name = "dynamast"
    replicated = True

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Optional[Dict[int, int]] = None,
        weights: Optional[StrategyWeights] = None,
        stats_config: Optional[StatisticsConfig] = None,
    ):
        super().__init__(cluster)
        self.scheme = scheme
        # The paper gives DynaMast no curated initial placement — it
        # must learn one. Round-robin scatters partitions neutrally.
        if placement is None:
            placement = scheme.round_robin_placement(cluster.num_sites)
        self.placement = placement
        cluster.place_partitions(placement)
        self.selector = SiteSelector(cluster, scheme, placement, weights, stats_config)

    def submit(self, txn: Transaction, session: Session):
        yield from self.client_hop(txn)  # client -> site selector

        if txn.is_read_only:
            site_index = yield from self.selector.route_read(txn, session)
            yield from self.client_hop(txn)  # selector -> client
            begin = yield from remote_call(
                self.network,
                self.sites[site_index].execute_read(txn, min_begin=session.cvv),
                category="client",
                txn=txn,
            )
            session.observe(begin)
            return Outcome(committed=True)

        route = yield from self.selector.route_update(txn, session)
        yield from self.client_hop(txn)  # selector -> client (site + version)
        min_vv = session.cvv if route.min_vv is None else route.min_vv.element_max(session.cvv)
        tvv = yield from remote_call(
            self.network,
            self.sites[route.site].execute_update(
                txn, min_vv, partitions=route.partitions
            ),
            category="client",
            txn=txn,
        )
        session.observe(tvv)
        return Outcome(committed=True, remastered=route.remastered)
