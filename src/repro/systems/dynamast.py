"""The DynaMast system (paper §V): dynamic mastering + adaptive routing."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.site_selector import SiteSelector
from repro.core.statistics import StatisticsConfig
from repro.core.strategy import StrategyWeights
from repro.faults.errors import FaultError, RpcTimeout, TransactionAborted
from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import RetryPolicy, guarded_call, remote_call
from repro.systems.base import Cluster, Session, System
from repro.transactions import Outcome, Transaction


class DynaMast(System):
    """Replicated multi-master with dynamic mastership transfer.

    Guarantees one-site execution for every transaction: reads run at
    any session-fresh replica; updates run at the single site that
    masters (after remastering, if necessary) the whole write set.
    """

    name = "dynamast"
    replicated = True

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Optional[Dict[int, int]] = None,
        weights: Optional[StrategyWeights] = None,
        stats_config: Optional[StatisticsConfig] = None,
    ):
        super().__init__(cluster)
        self.scheme = scheme
        # The paper gives DynaMast no curated initial placement — it
        # must learn one. Round-robin scatters partitions neutrally.
        if placement is None:
            placement = scheme.round_robin_placement(cluster.num_sites)
        self.placement = placement
        cluster.place_partitions(placement)
        self.selector = SiteSelector(cluster, scheme, placement, weights, stats_config)

    def submit(self, txn: Transaction, session: Session):
        if self.cluster.faults is not None:
            outcome = yield from self._submit_faulted(txn, session)
            return outcome
        yield from self.client_hop(txn)  # client -> site selector

        if txn.is_read_only:
            site_index = yield from self.selector.route_read(txn, session)
            yield from self.client_hop(txn)  # selector -> client
            begin = yield from remote_call(
                self.network,
                self.sites[site_index].execute_read(txn, min_begin=session.cvv),
                category="client",
                txn=txn,
            )
            session.observe(begin)
            return Outcome(committed=True)

        route = yield from self.selector.route_update(txn, session)
        yield from self.client_hop(txn)  # selector -> client (site + version)
        min_vv = session.cvv if route.min_vv is None else route.min_vv.element_max(session.cvv)
        tvv = yield from remote_call(
            self.network,
            self.sites[route.site].execute_update(
                txn, min_vv, partitions=route.partitions
            ),
            category="client",
            txn=txn,
        )
        session.observe(tvv)
        return Outcome(committed=True, remastered=route.remastered)

    def _submit_faulted(self, txn: Transaction, session: Session):
        """Fault-aware submission: guarded RPCs, bounded retries.

        Each attempt re-routes from scratch, so a retry naturally lands
        on a surviving (or newly restarted) site. A lost-reply timeout
        after dispatch re-executes the transaction — at-least-once
        semantics; every execution is replicated consistently, so
        replicas still converge (see DESIGN.md, Fault model).
        """
        faults = self.cluster.faults
        policy = RetryPolicy(faults.rpc, faults.rng)
        yield from self.client_hop(txn)  # client -> site selector

        if txn.is_read_only:
            for attempt in range(policy.attempts):
                site_index = yield from self.selector.route_read(txn, session)
                yield from self.client_hop(txn)  # selector -> client
                site = self.sites[site_index]
                try:
                    begin = yield from guarded_call(
                        self.network,
                        site,
                        site.execute_read(txn, min_begin=session.cvv),
                        category="client",
                        txn=txn,
                    )
                except FaultError as exc:
                    if attempt + 1 >= policy.attempts:
                        return Outcome(
                            committed=False, retries=attempt, abort_reason=exc.reason
                        )
                    yield self.env.timeout(policy.backoff_ms(attempt))
                    continue
                session.observe(begin)
                return Outcome(committed=True, retries=attempt)

        remastered = False
        for attempt in range(policy.attempts):
            try:
                route = yield from self.selector.route_update(txn, session)
            except TransactionAborted as exc:
                return Outcome(
                    committed=False, retries=attempt, abort_reason=exc.reason
                )
            remastered = remastered or route.remastered
            yield from self.client_hop(txn)  # selector -> client (site + version)
            min_vv = (
                session.cvv
                if route.min_vv is None
                else route.min_vv.element_max(session.cvv)
            )
            site = self.sites[route.site]
            try:
                tvv = yield from guarded_call(
                    self.network,
                    site,
                    site.execute_update(
                        txn, min_vv, partitions=route.partitions, token=route.token
                    ),
                    category="client",
                    txn=txn,
                )
            except FaultError as exc:
                if not (isinstance(exc, RpcTimeout) and exc.dispatched):
                    # The handler never started (lost request, refused
                    # at a dead site, or interrupted with its cleanup
                    # run): deregister our routing. With a dispatched
                    # timeout the live handler owns its own finally.
                    self.cluster.activity.finish(
                        route.site, route.partitions, route.token
                    )
                if attempt + 1 >= policy.attempts:
                    return Outcome(
                        committed=False,
                        retries=attempt,
                        remastered=remastered,
                        abort_reason=exc.reason,
                    )
                yield self.env.timeout(policy.backoff_ms(attempt))
                continue
            session.observe(tvv)
            return Outcome(committed=True, remastered=remastered, retries=attempt)
        raise AssertionError("unreachable: retry loop always returns")
