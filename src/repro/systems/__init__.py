"""The five evaluated system architectures (paper §VI-A.1).

Exports are populated as the system modules are imported lazily via
:func:`build_system`; see :mod:`repro.systems.base` for the shared
cluster/session machinery.
"""

from repro.systems.base import Cluster, Session, System

__all__ = ["Cluster", "Session", "System", "build_system"]


def build_system(name: str, cluster: Cluster, **kwargs) -> System:
    """Instantiate an evaluated system by its short name."""
    from repro.systems.dynamast import DynaMast
    from repro.systems.leap import LEAP
    from repro.systems.multi_master import MultiMaster
    from repro.systems.partition_store import PartitionStore
    from repro.systems.single_master import SingleMaster

    systems = {
        "dynamast": DynaMast,
        "single-master": SingleMaster,
        "multi-master": MultiMaster,
        "partition-store": PartitionStore,
        "leap": LEAP,
    }
    try:
        factory = systems[name]
    except KeyError:
        raise ValueError(f"unknown system {name!r}; expected one of {sorted(systems)}")
    return factory(cluster, **kwargs)
