"""The replicated multi-master comparator (paper §VI-A.1).

Each partition has a fixed master site (an offline placement, e.g.
range or warehouse partitioning confirmed by Schism); updates execute
on master copies and propagate lazily to every replica, so read-only
transactions may run at any session-fresh site. Write sets spanning
master sites require two-phase commit, with all its round trips and
uncertainty-window blocking.
"""

from __future__ import annotations

from typing import Dict

from repro.faults.errors import FaultError
from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import RetryPolicy, guarded_call, remote_call
from repro.systems.base import Cluster, Session, System
from repro.systems.two_phase_commit import submit_partitioned_write
from repro.transactions import Outcome, Transaction


class MultiMaster(System):
    """Statically partitioned mastership over full replicas."""

    name = "multi-master"
    replicated = True

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Dict[int, int],
        unit_of=None,
    ):
        super().__init__(cluster)
        self.scheme = scheme
        self.placement = placement
        #: Coordination granule (see Workload.placement_unit_of).
        self.unit_of = unit_of or scheme.partition
        #: Memoized key -> unit lookups (see PartitionStore._unit_cache).
        self._unit_cache: Dict = {}
        cluster.place_partitions(placement)
        self._read_rng = cluster.streams.stream("read-routing")

    def submit(self, txn: Transaction, session: Session):
        yield from self.client_hop(txn)  # client -> router
        yield from self.router_cpu.use(self.config.costs.route_lookup_ms,
                                       txn=txn, track="router")

        if txn.is_read_only:
            faults = self.cluster.faults
            if faults is None:
                site_index = self.choose_fresh_site(session, self._read_rng)
                yield from self.client_hop(txn)  # router -> client
                begin = yield from remote_call(
                    self.network,
                    self.sites[site_index].execute_read(txn, min_begin=session.cvv),
                    category="client",
                    txn=txn,
                )
                session.observe(begin)
                return Outcome(committed=True)
            # Re-choose a (healthy) replica on every retry.
            policy = RetryPolicy(faults.rpc, faults.rng)
            for attempt in range(policy.attempts):
                site_index = self.choose_fresh_site(session, self._read_rng)
                yield from self.client_hop(txn)  # router -> client
                site = self.sites[site_index]
                try:
                    begin = yield from guarded_call(
                        self.network,
                        site,
                        site.execute_read(txn, min_begin=session.cvv),
                        category="client",
                        txn=txn,
                    )
                except FaultError as exc:
                    if attempt + 1 >= policy.attempts:
                        return Outcome(
                            committed=False, retries=attempt, abort_reason=exc.reason
                        )
                    yield self.env.timeout(policy.backoff_ms(attempt))
                    continue
                session.observe(begin)
                return Outcome(committed=True, retries=attempt)

        outcome = yield from submit_partitioned_write(
            self, txn, session, min_begin=session.cvv
        )
        return outcome
