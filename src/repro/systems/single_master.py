"""The single-master comparator (paper §VI-A.1).

Built exactly as the paper builds it: DynaMast with every partition
mastered at one site. All update transactions route to the master
site; read-only transactions run at lazily maintained replicas. No
write set ever spans masters, so remastering never triggers — the
architecture degenerates to classic primary-copy lazy replication,
bottlenecked on the master's CPU as the update load grows.
"""

from __future__ import annotations

from typing import Optional

from repro.core.statistics import StatisticsConfig
from repro.core.strategy import StrategyWeights
from repro.partitioning.schemes import PartitionScheme
from repro.systems.base import Cluster
from repro.systems.dynamast import DynaMast


class SingleMaster(DynaMast):
    """All master copies pinned to one site; replicas serve reads."""

    name = "single-master"

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        master_site: int = 0,
        weights: Optional[StrategyWeights] = None,
        stats_config: Optional[StatisticsConfig] = None,
    ):
        placement = scheme.single_site_placement(master_site)
        super().__init__(
            cluster,
            scheme,
            placement=placement,
            weights=weights,
            stats_config=stats_config,
        )
        self.master_site = master_site
