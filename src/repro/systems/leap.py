"""The LEAP comparator (Lin et al., SIGMOD 2016; paper §VI-A.1).

LEAP guarantees single-site execution like DynaMast but on a
partitioned multi-master store *without* replication: before a
transaction runs, every record in its read and write sets is
*localized* — physically shipped from its current owner to the
execution site, which becomes the new owner. There are no replicas to
absorb reads and no adaptive routing, so hot records ping-pong between
sites and read-only transactions (scans especially) pay large
data-transfer costs — the behaviours the paper measures (§VI-B1/B2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.faults.errors import FaultError
from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import RetryPolicy, guarded_call, remote_call
from repro.storage.locks import LockTable
from repro.systems.base import Cluster, Session, System
from repro.transactions import Key, Outcome, Transaction


class LEAP(System):
    """Single-site execution via record shipping, no replicas."""

    name = "leap"
    replicated = False

    def __init__(self, cluster: Cluster, scheme: PartitionScheme, placement: Dict[int, int]):
        super().__init__(cluster)
        self.scheme = scheme
        self.placement = placement
        cluster.place_partitions(placement)
        #: Memoized key -> partition lookups (pure per run; scan sets
        #: revisit the same key blocks on every transaction).
        self._partitions: Dict[Key, object] = {}
        #: Record-granularity ownership; keys start at their partition's site.
        self._owners: Dict[Key, int] = {}
        #: Router-level locks serializing conflicting localizations.
        self._migration_locks = LockTable(self.env)
        self.localizations = 0
        self.records_shipped = 0

    def owner_of(self, key: Key) -> int:
        """Current owner of ``key`` (static tables read locally anywhere)."""
        owner = self._owners.get(key)
        if owner is not None:
            return owner
        partition = self.scheme.partition(key)
        if partition is None:
            return -1  # static, replicated everywhere
        return self.placement[partition]

    def submit(self, txn: Transaction, session: Session):
        if self.cluster.faults is not None:
            outcome = yield from self._submit_faulted(txn, session)
            return outcome
        yield from self.client_hop(txn)  # client -> router
        yield from self.router_cpu.use(self.config.costs.route_lookup_ms,
                                       txn=txn, track="router")

        cache = self._partitions
        partition_of = self.scheme.partition
        keys = []
        for key in txn.all_keys():
            try:
                partition = cache[key]
            except KeyError:
                partition = cache[key] = partition_of(key)
            if partition is not None:
                keys.append(key)
        # LEAP has no routing strategies (§VI-B2): a transaction runs at
        # the site its client is connected to, and every record it
        # touches is localized there first. This is what makes LEAP
        # "continually transfer data between sites" when clients at
        # different sites share data.
        execution_site = txn.client_id % self.cluster.num_sites

        shipped = False
        # Inlined owner_of: every key here is non-static, so the owner
        # is the migrated owner if any, else its partition's home site.
        owners = self._owners
        placement = self.placement
        remote_keys = []
        for key in keys:
            owner = owners.get(key)
            if owner is None:
                owner = placement[cache[key]]
            if owner != execution_site:
                remote_keys.append(key)
        if remote_keys:
            # Serialize conflicting migrations of the same records.
            yield from self._migration_locks.acquire_all(remote_keys)
            try:
                # Re-resolve under the locks: a concurrent transaction
                # may have localized some of these keys meanwhile.
                transfers: Dict[int, List[Key]] = {}
                for key in remote_keys:
                    owner = self.owner_of(key)
                    if owner != execution_site:
                        transfers.setdefault(owner, []).append(key)
                if transfers:
                    shipped = True
                    self.localizations += 1
                    processes = [
                        self.env.process(
                            self._localize(source, tuple(group), execution_site, txn)
                        )
                        for source, group in sorted(transfers.items())
                    ]
                    yield self.env.all_of(processes)
                    for group in transfers.values():
                        for key in group:
                            self._owners[key] = execution_site
                            self.records_shipped += 1
            finally:
                self._migration_locks.release_all(remote_keys)

        yield from self.client_hop(txn)  # router -> client
        site = self.sites[execution_site]
        if txn.is_read_only:
            yield from remote_call(
                self.network, site.execute_read(txn), category="client", txn=txn
            )
        else:
            yield from remote_call(
                self.network, site.execute_update(txn), category="client", txn=txn
            )
        return Outcome(committed=True, remastered=shipped)

    def _localize(self, source: int, group: Tuple[Key, ...], destination: int, txn: Transaction):
        """Ship ``group`` from ``source`` to ``destination``."""
        payload = yield from remote_call(
            self.network,
            self.sites[source].ship_out(group),
            category="ship",
            txn=txn,
        )
        # The data transfer to the execution site, then installation.
        delay = self.network.delay_for(payload)
        self.network.traffic.record("ship", payload)
        yield self.env.timeout(delay)
        txn.add_timing("network", delay)
        yield from self.sites[destination].install_shipment(group)

    # -- fault-aware path ------------------------------------------------------

    def _submit_faulted(self, txn: Transaction, session: Session):
        """LEAP under faults: no routing freedom, so no failover.

        The execution site is fixed by the client and every record must
        ship from its single owner; a crash of either aborts the
        transaction after bounded retries (LEAP's lack of replicas is
        precisely what the paper's availability comparison punishes).
        Localizations run sequentially and ownership updates per group
        as it lands, so an abort mid-localization leaves no half-moved
        group: shipped groups are owned by the execution site, unshipped
        groups stay put.
        """
        faults = self.cluster.faults
        policy = RetryPolicy(faults.rpc, faults.rng)
        yield from self.client_hop(txn)  # client -> router
        yield from self.router_cpu.use(self.config.costs.route_lookup_ms,
                                       txn=txn, track="router")

        keys = [key for key in txn.all_keys() if self.scheme.partition(key) is not None]
        execution_site = txn.client_id % self.cluster.num_sites

        shipped = False
        retries = 0
        remote_keys = [key for key in keys if self.owner_of(key) != execution_site]
        if remote_keys:
            yield from self._migration_locks.acquire_all(remote_keys)
            try:
                transfers: Dict[int, List[Key]] = {}
                for key in remote_keys:
                    owner = self.owner_of(key)
                    if owner != execution_site:
                        transfers.setdefault(owner, []).append(key)
                if transfers:
                    shipped = True
                    self.localizations += 1
                    for source, group in sorted(transfers.items()):
                        group = tuple(group)
                        for attempt in range(policy.attempts):
                            try:
                                yield from self._localize_faulted(
                                    source, group, execution_site, txn
                                )
                                break
                            except FaultError as exc:
                                retries += 1
                                if attempt + 1 >= policy.attempts:
                                    return Outcome(
                                        committed=False,
                                        remastered=shipped,
                                        retries=retries,
                                        abort_reason=exc.reason,
                                    )
                                yield self.env.timeout(policy.backoff_ms(attempt))
                        for key in group:
                            self._owners[key] = execution_site
                            self.records_shipped += 1
            finally:
                self._migration_locks.release_all(remote_keys)

        yield from self.client_hop(txn)  # router -> client
        site = self.sites[execution_site]
        handler = (
            site.execute_read(txn) if txn.is_read_only else site.execute_update(txn)
        )
        for attempt in range(policy.attempts):
            try:
                yield from guarded_call(
                    self.network, site, handler, category="client", txn=txn
                )
                break
            except FaultError as exc:
                retries += 1
                if attempt + 1 >= policy.attempts:
                    return Outcome(
                        committed=False,
                        remastered=shipped,
                        retries=retries,
                        abort_reason=exc.reason,
                    )
                handler = (
                    site.execute_read(txn)
                    if txn.is_read_only
                    else site.execute_update(txn)
                )
                yield self.env.timeout(policy.backoff_ms(attempt))
        return Outcome(committed=True, remastered=shipped, retries=retries)

    def _localize_faulted(self, source: int, group: Tuple[Key, ...], destination: int, txn: Transaction):
        """One guarded ship-out + transfer + install chain."""
        payload = yield from guarded_call(
            self.network,
            self.sites[source],
            self.sites[source].ship_out(group),
            category="ship",
            txn=txn,
        )
        delay = self.network.delay_for(payload)
        self.network.traffic.record("ship", payload)
        yield self.env.timeout(delay)
        txn.add_timing("network", delay)
        yield from guarded_call(
            self.network,
            self.sites[destination],
            self.sites[destination].install_shipment(group),
            category="ship",
            txn=txn,
        )
