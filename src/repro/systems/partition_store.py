"""The partition-store comparator (paper §VI-A.1).

A partitioned multi-master database *without* replication: each site
holds only the partitions it masters (plus static read-only tables,
which are replicated). Distributed writes use 2PC. Multi-partition
read-only transactions must scatter-gather across owner sites and are
subject to the straggler effect — the slowest site's response time
determines their latency (§VI-B2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.faults.errors import FaultError
from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import RetryPolicy, guarded_call, remote_call
from repro.systems.base import Cluster, Session, System
from repro.systems.two_phase_commit import submit_partitioned_write
from repro.transactions import Key, Outcome, Transaction


class PartitionStore(System):
    """Partitioned, unreplicated, 2PC writes, scatter-gather reads."""

    name = "partition-store"
    replicated = False

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Dict[int, int],
        unit_of=None,
    ):
        super().__init__(cluster)
        self.scheme = scheme
        self.placement = placement
        #: Coordination granule (see Workload.placement_unit_of).
        self.unit_of = unit_of or scheme.partition
        #: Memoized key -> unit lookups. ``unit_of`` is a pure function
        #: of the key for the lifetime of a run, and scan sets revisit
        #: the same key blocks constantly, so the read fan-out grouping
        #: resolves units with one dict probe instead of three frames.
        self._unit_cache: Dict[Key, object] = {}
        cluster.place_partitions(placement)
        #: Multi-unit read-only transactions executed (straggler stat).
        self.scatter_gather_reads = 0

    def submit(self, txn: Transaction, session: Session):
        yield from self.client_hop(txn)  # client -> router
        yield from self.router_cpu.use(self.config.costs.route_lookup_ms,
                                       txn=txn, track="router")

        if txn.is_read_only:
            outcome = yield from self._submit_read(txn)
            return outcome
        outcome = yield from submit_partitioned_write(
            self, txn, session, min_begin=None
        )
        return outcome

    def _submit_read(self, txn: Transaction):
        """Route reads to owning units; fan out if they span units."""
        # Group point reads and scanned keys by placement unit. Static-
        # table keys join the first dynamic unit's sub-read.
        reads: Dict[int, List[Key]] = {}
        scans: Dict[int, List[Key]] = {}
        static: List[Key] = []
        cache = self._unit_cache
        unit_of = self.unit_of
        for source, bucket in ((txn.read_set, reads), (txn.scan_set, scans)):
            for key in source:
                try:
                    unit = cache[key]
                except KeyError:
                    unit = cache[key] = unit_of(key)
                if unit is None:
                    static.append(key)
                else:
                    keys = bucket.get(unit)
                    if keys is None:
                        keys = bucket[unit] = []
                    keys.append(key)
        units = sorted(set(reads) | set(scans))
        if units:
            reads.setdefault(units[0], []).extend(static)
        elif static:
            reads[0] = static
            units = [0]

        yield from self.client_hop(txn)  # router -> client
        faults = self.cluster.faults
        if len(units) <= 1:
            unit = units[0] if units else 0
            site_index = self.placement.get(unit, 0)
            if faults is None:
                yield from remote_call(
                    self.network,
                    self.sites[site_index].execute_read(txn),
                    category="client",
                    txn=txn,
                )
                return Outcome(committed=True)
            outcome = yield from self._guarded_read(
                txn, [(site_index, None, None)], distributed=False
            )
            return outcome

        # Scatter-gather: one sub-read per unit, wait for the slowest
        # (the straggler effect of §VI-B2).
        self.scatter_gather_reads += 1
        targets = [
            (
                self.placement[unit],
                tuple(reads.get(unit, ())),
                tuple(scans.get(unit, ())),
            )
            for unit in units
        ]
        if faults is None:
            processes = [
                self.env.process(
                    remote_call(
                        self.network,
                        self.sites[site_index].execute_read(txn, keys=keys, scans=scan),
                        category="client",
                        txn=txn,
                    )
                )
                for site_index, keys, scan in targets
            ]
            yield self.env.all_of(processes)
            return Outcome(committed=True, distributed=True)
        outcome = yield from self._guarded_read(txn, targets, distributed=True)
        return outcome

    def _guarded_read(self, txn: Transaction, targets, distributed: bool):
        """Fault-aware sub-reads, sequential with bounded retries.

        There is no owner to fail over to — each sub-read must succeed
        at its unit's only copy. Sequential dispatch (instead of the
        legacy parallel fan-out) keeps per-sub-read failure handling
        exact; only faulted runs pay the latency.
        """
        faults = self.cluster.faults
        policy = RetryPolicy(faults.rpc, faults.rng)
        retries = 0
        for site_index, keys, scans in targets:
            site = self.sites[site_index]
            for attempt in range(policy.attempts):
                try:
                    if keys is None:
                        yield from guarded_call(
                            self.network, site, site.execute_read(txn),
                            category="client", txn=txn,
                        )
                    else:
                        yield from guarded_call(
                            self.network, site,
                            site.execute_read(txn, keys=keys, scans=scans),
                            category="client", txn=txn,
                        )
                    break
                except FaultError as exc:
                    retries += 1
                    if attempt + 1 >= policy.attempts:
                        return Outcome(
                            committed=False,
                            distributed=distributed,
                            retries=retries,
                            abort_reason=exc.reason,
                        )
                    yield self.env.timeout(policy.backoff_ms(attempt))
        return Outcome(committed=True, distributed=distributed, retries=retries)
