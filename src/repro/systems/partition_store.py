"""The partition-store comparator (paper §VI-A.1).

A partitioned multi-master database *without* replication: each site
holds only the partitions it masters (plus static read-only tables,
which are replicated). Distributed writes use 2PC. Multi-partition
read-only transactions must scatter-gather across owner sites and are
subject to the straggler effect — the slowest site's response time
determines their latency (§VI-B2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.partitioning.schemes import PartitionScheme
from repro.sites.messages import remote_call
from repro.systems.base import Cluster, Session, System
from repro.systems.two_phase_commit import submit_partitioned_write
from repro.transactions import Key, Outcome, Transaction


class PartitionStore(System):
    """Partitioned, unreplicated, 2PC writes, scatter-gather reads."""

    name = "partition-store"
    replicated = False

    def __init__(
        self,
        cluster: Cluster,
        scheme: PartitionScheme,
        placement: Dict[int, int],
        unit_of=None,
    ):
        super().__init__(cluster)
        self.scheme = scheme
        self.placement = placement
        #: Coordination granule (see Workload.placement_unit_of).
        self.unit_of = unit_of or scheme.partition
        cluster.place_partitions(placement)
        #: Multi-unit read-only transactions executed (straggler stat).
        self.scatter_gather_reads = 0

    def submit(self, txn: Transaction, session: Session):
        yield from self.client_hop(txn)  # client -> router
        yield from self.router_cpu.use(self.config.costs.route_lookup_ms)

        if txn.is_read_only:
            outcome = yield from self._submit_read(txn)
            return outcome
        outcome = yield from submit_partitioned_write(
            self, txn, session, min_begin=None
        )
        return outcome

    def _submit_read(self, txn: Transaction):
        """Route reads to owning units; fan out if they span units."""
        # Group point reads and scanned keys by placement unit. Static-
        # table keys join the first dynamic unit's sub-read.
        reads: Dict[int, List[Key]] = {}
        scans: Dict[int, List[Key]] = {}
        static: List[Key] = []
        for source, bucket in ((txn.read_set, reads), (txn.scan_set, scans)):
            for key in source:
                unit = self.unit_of(key)
                if unit is None:
                    static.append(key)
                else:
                    bucket.setdefault(unit, []).append(key)
        units = sorted(set(reads) | set(scans))
        if units:
            reads.setdefault(units[0], []).extend(static)
        elif static:
            reads[0] = static
            units = [0]

        yield from self.client_hop(txn)  # router -> client
        if len(units) <= 1:
            unit = units[0] if units else 0
            site_index = self.placement.get(unit, 0)
            yield from remote_call(
                self.network,
                self.sites[site_index].execute_read(txn),
                category="client",
                txn=txn,
            )
            return Outcome(committed=True)

        # Scatter-gather: one sub-read per unit, wait for the slowest
        # (the straggler effect of §VI-B2).
        self.scatter_gather_reads += 1
        processes = [
            self.env.process(
                remote_call(
                    self.network,
                    self.sites[self.placement[unit]].execute_read(
                        txn,
                        keys=tuple(reads.get(unit, ())),
                        scans=tuple(scans.get(unit, ())),
                    ),
                    category="client",
                    txn=txn,
                )
            )
            for unit in units
        ]
        yield self.env.all_of(processes)
        return Outcome(committed=True, distributed=True)
