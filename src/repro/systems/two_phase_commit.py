"""Two-phase commit coordination for the partitioned comparators.

The multi-master and partition-store systems coordinate transaction
branches at the granularity of their *placement units* — the
application-level partitions their offline partitioner assigns to
sites (YCSB's 100-key partitions, TPC-C's warehouses). A write set
spanning units runs as a distributed transaction (paper §I, §II-A,
§VI-A.2): one branch per unit, combined branch-work + prepare in the
first round, the global decision in the second. Branches at remote
sites pay network round trips; every branch pays per-branch dispatch
and prepare CPU, and holds its write locks across the uncertainty
window — blocking conflicting transactions, the effect Figure 1b
illustrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.errors import (
    FaultError,
    RpcTimeout,
    SiteDown,
    TransactionAborted,
)
from repro.sites.messages import RetryPolicy, guarded_call, remote_call, site_process
from repro.transactions import Key, Outcome, Transaction
from repro.versioning.vectors import VersionVector


def group_writes_by_unit(system, txn: Transaction) -> Dict[int, Tuple[Key, ...]]:
    """Split the write set into placement-unit branches."""
    groups: Dict[int, List[Key]] = {}
    cache = system._unit_cache
    unit_of = system.unit_of
    for key in txn.write_set:
        try:
            unit = cache[key]
        except KeyError:
            unit = cache[key] = unit_of(key)
        if unit is None:
            raise ValueError(f"write to static replicated table: {key!r}")
        groups.setdefault(unit, []).append(key)
    return {unit: tuple(keys) for unit, keys in groups.items()}


def two_phase_commit(
    system,
    txn: Transaction,
    branches: Dict[int, Tuple[Key, ...]],
    min_begin: Optional[VersionVector] = None,
):
    """Run ``txn`` as a distributed write across unit ``branches``.

    Generator returning the element-wise max of the branch commit
    vectors (the version a session must observe).
    """
    if system.cluster.faults is not None:
        merged = yield from _two_phase_commit_faulted(system, txn, branches, min_begin)
        return merged
    env = system.env
    obs = env.obs
    tracer = obs.tracer
    traced = tracer.enabled
    sites = system.sites
    items = sorted(branches.items(), key=lambda item: (-len(item[1]), item[0]))
    placement = system.placement
    coordinator = placement[items[0][0]]
    coordinator_track = f"site{coordinator}"
    if obs.enabled:
        obs.registry.gauge("2pc_inflight").inc()
        obs.registry.counter("2pc_started").inc()

    # Router -> coordinator dispatch.
    yield from system.client_hop(txn)

    def fan_out(make_branch, payload=None):
        """One protocol round: coordinator work + parallel branches."""
        processes = []
        for index, (unit, keys) in enumerate(items):
            site_index = placement[unit]
            args = (payload[index],) if payload is not None else ()
            branch = make_branch(sites[site_index], keys, *args)
            if site_index != coordinator:
                branch = remote_call(system.network, branch, category="2pc", txn=txn)
            processes.append(env.process(branch))
        return env.all_of(processes)

    # The coordinator pays per-branch marshalling / vote-collection /
    # decision-logging work on every round.
    coordinate = system.config.costs.coordinate_ms * len(items)

    # Round 1: dispatch branch work (locks acquired, operations run).
    # Branches are dispatched in global unit order, each waiting for
    # the previous branch's locks: ordered resource acquisition, the
    # classic discipline that makes distributed deadlock impossible
    # when two multi-unit transactions overlap in opposite directions.
    round_started = env.now
    yield from sites[coordinator].cpu.use(coordinate, txn=txn,
                                          track=coordinator_track)
    begin_vvs = []
    for unit, keys in sorted(items):
        site_index = placement[unit]
        branch = sites[site_index].execute_branch(txn, keys, min_begin)
        if site_index != coordinator:
            branch = remote_call(system.network, branch, category="2pc", txn=txn)
        begin_vv = yield from branch
        begin_vvs.append(begin_vv)
    # Re-align begin vectors with the (size-sorted) items order used by
    # the later rounds.
    by_unit = {unit: vv for (unit, _), vv in zip(sorted(items), begin_vvs)}
    begin_vvs = [by_unit[unit] for unit, _ in items]
    if traced:
        tracer.span("2pc_execute", round_started, env.now,
                    track=coordinator_track, txn=txn, branches=len(items))
        tracer.edge("2pc_round", round_started, txn=txn,
                    track=coordinator_track, round="execute",
                    branches=len(items))

    # Round 2: prepare — participants force-log and vote. Locks held.
    round_started = env.now
    yield from sites[coordinator].cpu.use(coordinate, txn=txn,
                                          track=coordinator_track)
    yield fan_out(lambda site, keys: site.prepare_branch(txn, keys))
    if traced:
        tracer.span("2pc_prepare", round_started, env.now,
                    track=coordinator_track, txn=txn, branches=len(items))
        tracer.edge("2pc_round", round_started, txn=txn,
                    track=coordinator_track, round="prepare",
                    branches=len(items))

    # Round 3: all voted yes -> commit decision fan-out. The window
    # between the prepare votes and this decision reaching a branch is
    # the 2PC uncertainty window the paper's Figure 1b illustrates.
    round_started = env.now
    yield from sites[coordinator].cpu.use(coordinate, txn=txn,
                                          track=coordinator_track)
    commit_vvs = yield fan_out(
        lambda site, keys, begin_vv: site.commit_branch(txn, keys, begin_vv),
        payload=begin_vvs,
    )
    if traced:
        tracer.span("2pc_decide", round_started, env.now,
                    track=coordinator_track, txn=txn, branches=len(items))
        tracer.edge("2pc_round", round_started, txn=txn,
                    track=coordinator_track, round="decide",
                    branches=len(items))

    merged = VersionVector.zeros(len(sites[0].svv))
    for commit_vv in commit_vvs:
        merged.merge(commit_vv)

    # Coordinator -> client reply.
    yield from system.client_hop(txn)
    if obs.enabled:
        obs.registry.gauge("2pc_inflight").dec()
    return merged


def _two_phase_commit_faulted(
    system,
    txn: Transaction,
    branches: Dict[int, Tuple[Key, ...]],
    min_begin: Optional[VersionVector],
):
    """Presumed-abort 2PC: the termination protocol under faults.

    The coordinator's own work runs as a crash-raced process on the
    coordinator machine; remote branches go over guarded RPCs sourced
    at the coordinator. Any failure before the commit decision is
    durably taken (end of round 2) terminates by *presumed abort*:
    every branch that may hold locks is aborted, persistently until
    the abort lands or the branch's site is dead (whose lock table died
    with it). After the decision, commits are delivered persistently;
    a branch whose participant crashed in the uncertainty window is
    lost — never redone — which is the documented price of presumed
    abort without a coordinator redo log (DESIGN.md, Fault model).

    Rounds run sequentially per branch (no parallel fan-out): a failed
    branch must stop dispatching later rounds, and sequential guarded
    calls keep the failure handling exact. Faulted runs trade a little
    latency for that; unfaulted runs never come through here.
    """
    env = system.env
    obs = env.obs
    tracer = obs.tracer
    traced = tracer.enabled
    faults = system.cluster.faults
    sites = system.sites
    items = sorted(branches.items(), key=lambda item: (-len(item[1]), item[0]))
    placement = system.placement
    coordinator = placement[items[0][0]]
    coordinator_track = f"site{coordinator}" if traced else ""
    coord_site = sites[coordinator]
    policy = RetryPolicy(faults.rpc, faults.rng)

    def _round(name, started):
        # Traced runs only: the round span + ordering edge, mirroring
        # the unfaulted path so chaos attribution sees commit_protocol.
        tracer.span(f"2pc_{name}", started, env.now,
                    track=coordinator_track, txn=txn, branches=len(items))
        tracer.edge("2pc_round", started, txn=txn,
                    track=coordinator_track, round=name, branches=len(items))

    if obs.enabled:
        obs.registry.gauge("2pc_inflight").inc()
        obs.registry.counter("2pc_started").inc()

    yield from system.client_hop(txn)
    coordinate = system.config.costs.coordinate_ms * len(items)
    #: Branches that may hold locks and need aborting on failure.
    touched: List[Tuple[int, Tuple[Key, ...]]] = []

    def _call(site_index, handler):
        """One guarded branch call (local branches are crash-raced only)."""
        if site_index == coordinator:
            return site_process(sites[site_index], handler)
        return guarded_call(
            system.network,
            sites[site_index],
            handler,
            src=coordinator,
            category="2pc",
            txn=txn,
        )

    try:
        # Round 1: branch execution, global unit order (deadlock-free).
        round_started = env.now
        yield from site_process(
            coord_site,
            coord_site.cpu.use(coordinate, txn=txn, track=coordinator_track),
        )
        by_unit: Dict[int, VersionVector] = {}
        for unit, keys in sorted(items):
            site_index = placement[unit]
            try:
                begin_vv = yield from _call(
                    site_index, sites[site_index].execute_branch(txn, keys, min_begin)
                )
            except RpcTimeout as exc:
                if exc.dispatched:
                    # The branch may still acquire locks at the live
                    # site; it must be aborted like an executed one.
                    touched.append((site_index, keys))
                raise
            touched.append((site_index, keys))
            by_unit[unit] = begin_vv
        begin_vvs = [by_unit[unit] for unit, _ in items]
        if traced:
            _round("execute", round_started)

        # Round 2: prepare votes, bounded retries (prepare is idempotent).
        round_started = env.now
        yield from site_process(
            coord_site,
            coord_site.cpu.use(coordinate, txn=txn, track=coordinator_track),
        )
        for unit, keys in items:
            site_index = placement[unit]
            failures = 0
            while True:
                try:
                    yield from _call(
                        site_index, sites[site_index].prepare_branch(txn, keys)
                    )
                    break
                except RpcTimeout:
                    failures += 1
                    if failures >= policy.attempts:
                        raise
                    yield env.timeout(policy.backoff_ms(failures - 1))
        if traced:
            _round("prepare", round_started)
    except FaultError as exc:
        yield from _abort_branches(system, txn, touched, coordinator)
        yield from system.client_hop(txn)
        if obs.enabled:
            obs.registry.gauge("2pc_inflight").dec()
        raise TransactionAborted(exc.reason, f"2pc presumed abort: {exc}")

    # Commit point: every vote is in and the decision is (modeled as)
    # force-logged. From here the decision is delivered persistently.
    merged = VersionVector.zeros(len(sites[0].svv))
    round_started = env.now
    try:
        yield from site_process(
            coord_site,
            coord_site.cpu.use(coordinate, txn=txn, track=coordinator_track),
        )
    except SiteDown:
        # Coordinator crashed after logging the decision; delivery
        # continues below (participants would learn it from the
        # recovered coordinator's log).
        pass
    for index, (unit, keys) in enumerate(items):
        site_index = placement[unit]
        failures = 0
        while True:
            try:
                commit_vv = yield from _call(
                    site_index,
                    sites[site_index].commit_branch(txn, keys, begin_vvs[index]),
                )
                break
            except SiteDown:
                # Participant died in the uncertainty window: its
                # branch (volatile locks, undecided writes) is lost.
                commit_vv = None
                break
            except RpcTimeout:
                failures += 1
                yield env.timeout(policy.backoff_ms(min(failures - 1, 8)))
        if commit_vv is not None:
            merged.merge(commit_vv)
    if traced:
        _round("decide", round_started)

    yield from system.client_hop(txn)
    if obs.enabled:
        obs.registry.gauge("2pc_inflight").dec()
    return merged


def _abort_branches(system, txn, touched, coordinator):
    """Deliver the presumed-abort decision to every touched branch.

    Persistent per branch: an undelivered abort would leak that
    branch's locks forever and stall every conflicting transaction.
    Terminates because link faults are finite, loss is < 1, and a dead
    site's locks died with it (abort skipped).
    """
    env = system.env
    faults = system.cluster.faults
    policy = RetryPolicy(faults.rpc, faults.rng)
    for site_index, keys in touched:
        failures = 0
        while True:
            site = system.sites[site_index]
            if not site.alive:
                break
            try:
                if site_index == coordinator:
                    yield from site_process(site, site.abort_branch(txn, keys))
                else:
                    yield from guarded_call(
                        system.network,
                        site,
                        site.abort_branch(txn, keys),
                        src=coordinator,
                        category="2pc",
                        txn=txn,
                    )
                break
            except SiteDown:
                break
            except RpcTimeout:
                failures += 1
                yield env.timeout(policy.backoff_ms(min(failures - 1, 8)))


def submit_partitioned_write(system, txn: Transaction, session, min_begin):
    """Shared write path of the fixed-mastership systems.

    A write set within one placement unit executes locally at the
    unit's master; anything spanning units goes through 2PC. Generator
    returning an :class:`Outcome`.
    """
    branches = group_writes_by_unit(system, txn)
    faults = system.cluster.faults

    if len(branches) == 1:
        unit = next(iter(branches))
        site_index = system.placement[unit]
        yield from system.client_hop(txn)  # router -> client (site choice)
        if faults is None:
            tvv = yield from remote_call(
                system.network,
                system.sites[site_index].execute_update(txn, min_begin),
                category="client",
                txn=txn,
            )
            session.observe(tvv)
            return Outcome(committed=True)
        # Fixed mastership has no failover: retry the unit's master a
        # bounded number of times, then abort.
        policy = RetryPolicy(faults.rpc, faults.rng)
        site = system.sites[site_index]
        for attempt in range(policy.attempts):
            try:
                tvv = yield from guarded_call(
                    system.network,
                    site,
                    site.execute_update(txn, min_begin),
                    category="client",
                    txn=txn,
                )
            except FaultError as exc:
                if attempt + 1 >= policy.attempts:
                    return Outcome(
                        committed=False, retries=attempt, abort_reason=exc.reason
                    )
                yield system.env.timeout(policy.backoff_ms(attempt))
                continue
            session.observe(tvv)
            return Outcome(committed=True, retries=attempt)

    try:
        tvv = yield from two_phase_commit(system, txn, branches, min_begin)
    except TransactionAborted as exc:
        return Outcome(committed=False, distributed=True, abort_reason=exc.reason)
    session.observe(tvv)
    return Outcome(committed=True, distributed=True)
