"""Two-phase commit coordination for the partitioned comparators.

The multi-master and partition-store systems coordinate transaction
branches at the granularity of their *placement units* — the
application-level partitions their offline partitioner assigns to
sites (YCSB's 100-key partitions, TPC-C's warehouses). A write set
spanning units runs as a distributed transaction (paper §I, §II-A,
§VI-A.2): one branch per unit, combined branch-work + prepare in the
first round, the global decision in the second. Branches at remote
sites pay network round trips; every branch pays per-branch dispatch
and prepare CPU, and holds its write locks across the uncertainty
window — blocking conflicting transactions, the effect Figure 1b
illustrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sites.messages import remote_call
from repro.transactions import Key, Outcome, Transaction
from repro.versioning.vectors import VersionVector


def group_writes_by_unit(system, txn: Transaction) -> Dict[int, Tuple[Key, ...]]:
    """Split the write set into placement-unit branches."""
    groups: Dict[int, List[Key]] = {}
    for key in txn.write_set:
        unit = system.unit_of(key)
        if unit is None:
            raise ValueError(f"write to static replicated table: {key!r}")
        groups.setdefault(unit, []).append(key)
    return {unit: tuple(keys) for unit, keys in groups.items()}


def two_phase_commit(
    system,
    txn: Transaction,
    branches: Dict[int, Tuple[Key, ...]],
    min_begin: Optional[VersionVector] = None,
):
    """Run ``txn`` as a distributed write across unit ``branches``.

    Generator returning the element-wise max of the branch commit
    vectors (the version a session must observe).
    """
    env = system.env
    obs = env.obs
    tracer = obs.tracer
    sites = system.sites
    items = sorted(branches.items(), key=lambda item: (-len(item[1]), item[0]))
    placement = system.placement
    coordinator = placement[items[0][0]]
    coordinator_track = f"site{coordinator}"
    if obs.enabled:
        obs.registry.gauge("2pc_inflight").inc()
        obs.registry.counter("2pc_started").inc()

    # Router -> coordinator dispatch.
    yield from system.client_hop(txn)

    def fan_out(make_branch, payload=None):
        """One protocol round: coordinator work + parallel branches."""
        processes = []
        for index, (unit, keys) in enumerate(items):
            site_index = placement[unit]
            args = (payload[index],) if payload is not None else ()
            branch = make_branch(sites[site_index], keys, *args)
            if site_index != coordinator:
                branch = remote_call(system.network, branch, category="2pc", txn=txn)
            processes.append(env.process(branch))
        return env.all_of(processes)

    # The coordinator pays per-branch marshalling / vote-collection /
    # decision-logging work on every round.
    coordinate = system.config.costs.coordinate_ms * len(items)

    # Round 1: dispatch branch work (locks acquired, operations run).
    # Branches are dispatched in global unit order, each waiting for
    # the previous branch's locks: ordered resource acquisition, the
    # classic discipline that makes distributed deadlock impossible
    # when two multi-unit transactions overlap in opposite directions.
    round_started = env.now
    yield from sites[coordinator].cpu.use(coordinate)
    begin_vvs = []
    for unit, keys in sorted(items):
        site_index = placement[unit]
        branch = sites[site_index].execute_branch(txn, keys, min_begin)
        if site_index != coordinator:
            branch = remote_call(system.network, branch, category="2pc", txn=txn)
        begin_vv = yield from branch
        begin_vvs.append(begin_vv)
    # Re-align begin vectors with the (size-sorted) items order used by
    # the later rounds.
    by_unit = {unit: vv for (unit, _), vv in zip(sorted(items), begin_vvs)}
    begin_vvs = [by_unit[unit] for unit, _ in items]
    tracer.span("2pc_execute", round_started, env.now,
                track=coordinator_track, txn=txn, branches=len(items))

    # Round 2: prepare — participants force-log and vote. Locks held.
    round_started = env.now
    yield from sites[coordinator].cpu.use(coordinate)
    yield fan_out(lambda site, keys: site.prepare_branch(txn, keys))
    tracer.span("2pc_prepare", round_started, env.now,
                track=coordinator_track, txn=txn, branches=len(items))

    # Round 3: all voted yes -> commit decision fan-out. The window
    # between the prepare votes and this decision reaching a branch is
    # the 2PC uncertainty window the paper's Figure 1b illustrates.
    round_started = env.now
    yield from sites[coordinator].cpu.use(coordinate)
    commit_vvs = yield fan_out(
        lambda site, keys, begin_vv: site.commit_branch(txn, keys, begin_vv),
        payload=begin_vvs,
    )
    tracer.span("2pc_decide", round_started, env.now,
                track=coordinator_track, txn=txn, branches=len(items))

    merged = VersionVector.zeros(len(sites[0].svv))
    for commit_vv in commit_vvs:
        merged = merged.element_max(commit_vv)

    # Coordinator -> client reply.
    yield from system.client_hop(txn)
    if obs.enabled:
        obs.registry.gauge("2pc_inflight").dec()
    return merged


def submit_partitioned_write(system, txn: Transaction, session, min_begin):
    """Shared write path of the fixed-mastership systems.

    A write set within one placement unit executes locally at the
    unit's master; anything spanning units goes through 2PC. Generator
    returning an :class:`Outcome`.
    """
    branches = group_writes_by_unit(system, txn)

    if len(branches) == 1:
        unit = next(iter(branches))
        site_index = system.placement[unit]
        yield from system.client_hop(txn)  # router -> client (site choice)
        tvv = yield from remote_call(
            system.network,
            system.sites[site_index].execute_update(txn, min_begin),
            category="client",
            txn=txn,
        )
        session.observe(tvv)
        return Outcome(committed=True)

    tvv = yield from two_phase_commit(system, txn, branches, min_begin)
    session.observe(tvv)
    return Outcome(committed=True, distributed=True)
