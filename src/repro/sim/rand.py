"""Seeded random streams and distributions.

Determinism rule for the whole project: no component touches the global
:mod:`random` state. Every stochastic choice draws from a named stream
obtained from :class:`RandomStreams`, so that a run is exactly
reproducible from its seed and adding a new consumer of randomness does
not perturb existing streams.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_right
from typing import Dict, Sequence

#: Well-known stream names. Streams are derived independently from the
#: seed (SHA-256 of ``seed:name``), so adding or removing a *consumer*
#: of one stream never perturbs draws from any other. Fault injection
#: relies on this: :data:`FAULTS_STREAM` feeds message-loss draws and
#: retry-backoff jitter exclusively, so attaching a fault plan cannot
#: shift the workload, routing, or network streams — and a run without
#: faults never draws from it at all.
WORKLOAD_STREAM = "workload"
NETWORK_STREAM = "network"
FAULTS_STREAM = "faults"
#: Open-loop arrival process (repro.sim.arrivals / repro.workloads
#: .openloop). Isolated for the same reason as faults: attaching an
#: open-loop engine must not shift the draws a closed-loop run makes
#: from the workload or network streams.
ARRIVALS_STREAM = "arrivals"


class RandomStreams:
    """A family of independent, named PRNG streams derived from one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def faults(self) -> random.Random:
        """The dedicated fault-injection stream (loss draws, backoff)."""
        return self.stream(FAULTS_STREAM)


class ZipfGenerator:
    """Zipfian integer generator over ``[0, n)`` with exponent ``theta``.

    Uses the standard inverse-CDF method over precomputed cumulative
    weights; ``theta = 0`` degenerates to uniform. The YCSB experiments
    in the paper use a skew of 0.75 (Appendix C).
    """

    def __init__(self, n: int, theta: float, rng: random.Random):
        if n <= 0:
            raise ValueError(f"ZipfGenerator needs n >= 1, got {n}")
        if theta < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = 0.0
        self._cumulative = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> int:
        """Draw one value; 0 is the most popular rank."""
        point = self._rng.random() * self._total
        return bisect_right(self._cumulative, point)


def weighted_choice(rng: random.Random, choices: Sequence, weights: Sequence[float]):
    """Pick one element of ``choices`` with the given relative weights."""
    if len(choices) != len(weights):
        raise ValueError("choices and weights must have the same length")
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for choice, weight in zip(choices, weights):
        acc += weight
        if point < acc:
            return choice
    return choices[-1]
