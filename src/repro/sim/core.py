"""Discrete-event simulation kernel.

A minimal, deterministic, SimPy-style engine. Simulated time is a float
(interpreted throughout this project as milliseconds). Processes are
Python generators that yield :class:`Event` objects; the environment
resumes a process when the event it waits on triggers.

The kernel is intentionally small: events, timeouts, processes, and the
two condition events (:class:`AllOf`, :class:`AnyOf`) are everything the
database layers above need. Resources and message stores are built on
top of these primitives in :mod:`repro.sim.resources`.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Generator, Iterable, Optional

from repro.obs import NULL_OBS

#: Upper bound on recycled Timeout shells kept per environment.
_FREE_MAX = 1024

#: Sentinel for "this event has not triggered yet".
_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*; it becomes *triggered* when
    :meth:`succeed` or :meth:`fail` is called, and *processed* once the
    environment has run its callbacks. Processes wait on events by
    yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked (with this event) when the event is processed.
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Hot path (one succeed per RPC reply, lock grant, and store
        hand-off): the zero-delay scheduling is ``_schedule`` inlined —
        same eid consumption, same batching condition.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        queue = env._queue
        if not queue or queue[0][0] > env._now:
            env._nowq.append(self)
        else:
            heappush(queue, (env._now, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not re-raise it."""
        self._defused = True

    def __repr__(self) -> str:
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        # Hot path: one Timeout per message hop, CPU slice, and client
        # think-time. Assign attributes directly and push onto the heap
        # inline instead of chaining through Event.__init__ +
        # Environment._schedule; the end state (and the eid sequence) is
        # exactly what the chained version produced.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        eid = env._eid
        env._eid = eid + 1
        if delay == 0.0:
            # Zero-delay batch fast path: if nothing on the heap is due
            # at or before `now`, this event can only be dispatched next
            # (in eid order) — append it to the current-timestamp run
            # queue and skip the heap round-trip entirely. See
            # Environment._schedule for the ordering argument.
            queue = env._queue
            if not queue or queue[0][0] > env._now:
                env._nowq.append(self)
                return
        heappush(env._queue, (env._now + delay, eid, self))


class Initialize(Event):
    """Internal event used to start a process on the next kernel step."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running simulated process wrapping a generator.

    The process is itself an event: it triggers with the generator's
    return value when the generator finishes (or with the exception if
    the generator raises).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, exception: BaseException) -> None:
        """Throw ``exception`` into the process *synchronously*.

        Used by fault injection to model a machine crash: the victim's
        generator unwinds immediately (its ``finally`` blocks run
        against the pre-crash structures — releasing locks and CPU
        slots of the machine state that is about to be discarded),
        before the caller replaces any of those structures. The process
        then triggers as failed; anything racing it via ``AnyOf`` sees
        the failure defused, and nobody else is expected to wait on an
        interrupted process.

        Interrupting an already-finished process is a no-op.
        """
        if self._value is not _PENDING:
            return
        if not isinstance(exception, BaseException):
            raise SimulationError("interrupt() requires an exception instance")
        target = self._target
        if target is not None and target.callbacks is not None:
            # Stop the stale wakeup: the event we were waiting on must
            # not resume this process when it eventually triggers.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        # Synthesize a pre-defused failed event and consume it now, so
        # the generator unwinds within this very call.
        cause = Event(self.env)
        cause._ok = False
        cause._value = exception
        cause._defused = True
        self._resume(cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator, chaining through already-processed events."""
        if self._value is not _PENDING:
            # Already finished (e.g. interrupted before its Initialize
            # event fired); ignore stale wakeups.
            return
        # Hot path: every process wakeup lands here. Bind the generator
        # methods once and test `callbacks is None` directly instead of
        # going through the `processed` property descriptor.
        send = self._generator.send
        throw = self._generator.throw
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    # The waited-on event failed; propagate into the process.
                    event._defused = True
                    target = throw(event._value)
            except StopIteration as stop:
                self._target = None
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                return
            except BaseException as exc:
                self._target = None
                self._ok = False
                self._value = exc
                self.env._schedule(self)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                throw(exc)
                return
            if target.callbacks is None:
                # Already happened: continue synchronously with its value.
                event = target
                continue
            self._target = target
            target.callbacks.append(self._resume)
            return


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self):
        return [event._value for event in self.events if event.triggered]

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once every child event has triggered.

    Its value is the list of child values, in the order the events were
    given. If any child fails, the condition fails with that exception.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(_Condition):
    """Triggers as soon as one child event triggers.

    Its value is the value of the first event to trigger; the triggering
    event itself is available as :attr:`first`.
    """

    __slots__ = ("first",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self.first: Optional[Event] = None
        super().__init__(env, events)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        self.first = event
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0, obs=None):
        self._now = float(initial_time)
        self._queue: list = []
        #: The current-timestamp run: events scheduled at `now` while no
        #: heap entry is due at or before `now`. Dispatched FIFO before
        #: the heap is consulted again — see :meth:`_schedule` for why
        #: this preserves the exact (time, eid) dispatch order.
        self._nowq: deque = deque()
        #: Recycled Timeout shells (see :meth:`timeout` / :meth:`run`).
        self._tfree: list = []
        #: Monotonic event id; breaks same-time ties in creation order.
        #: A plain int incremented inline (here and in the Timeout fast
        #: path) produces the same 0, 1, 2, ... sequence that
        #: ``itertools.count`` did, without a call per schedule.
        self._eid = 0
        #: Number of events processed so far. Pure host-side bookkeeping
        #: for the perf harness — never read by simulation code, so it
        #: cannot influence simulated behavior.
        self.events_processed = 0
        #: Observability handle shared by every component on this clock
        #: (:data:`repro.obs.NULL_OBS` unless the run is being observed).
        #: Components reach their tracer as ``env.obs.tracer``, so no
        #: constructor threading is needed anywhere above the kernel.
        self.obs = obs if obs is not None else NULL_OBS

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event`` to be dispatched after ``delay``.

        Zero-delay schedules (``succeed``/``fail``, process completion,
        refresh wakeups — roughly half of all events in the benchmark
        workloads) take the *batched dispatch* fast path: when no heap
        entry is due at or before ``now``, the event is appended to the
        ``_nowq`` run deque instead of round-tripping through the heap.

        Ordering argument: the eid sequence is still consumed exactly as
        before, and an event enters ``_nowq`` only while every heap
        entry is strictly later than ``now``. Any entry pushed onto the
        heap *afterwards* carries a larger eid, so draining ``_nowq``
        FIFO before looking at the heap reproduces the exact
        ``(time, eid)`` heap order the unbatched kernel dispatched.
        """
        eid = self._eid
        self._eid = eid + 1
        if delay == 0.0:
            queue = self._queue
            if not queue or queue[0][0] > self._now:
                self._nowq.append(event)
                return
        heappush(self._queue, (self._now + delay, eid, event))

    # -- factory helpers -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units.

        Timeouts are the dominant allocation (one per message hop, CPU
        slice, and client think-time), so processed shells that nobody
        references anymore are recycled by the run loops; re-arming one
        here reproduces exactly the state — and consumes exactly the
        eid — that a fresh ``Timeout.__init__`` would.
        """
        free = self._tfree
        if free and delay >= 0:
            event = free.pop()
            event.callbacks = []
            event._value = value
            event._ok = True
            event._defused = False
            event.delay = delay
            eid = self._eid
            self._eid = eid + 1
            if delay == 0.0:
                queue = self._queue
                if not queue or queue[0][0] > self._now:
                    self._nowq.append(event)
                    return event
            heappush(self._queue, (self._now + delay, eid, event))
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event that waits for all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event that waits for the first of ``events``."""
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event.

        Dispatches from the current-timestamp run first, then the heap —
        the same order the batched ``run`` loops use, so stepping a
        simulation manually is event-for-event identical to running it.
        """
        nowq = self._nowq
        if nowq:
            event = nowq.popleft()
        elif self._queue:
            when, _, event = heappop(self._queue)
            self._now = when
        else:
            raise SimulationError("step() on an empty event queue")
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure (e.g. a crashed process nobody waits
            # on) must surface instead of passing silently.
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._nowq:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        The loop body is :meth:`step` inlined, with the queue, the heap
        pop, and the event counter held in locals: this is where the
        entire simulation spends its wall-clock, and the per-event
        method call + attribute traffic was the single largest kernel
        cost in profiles. The observable semantics are identical.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        queue = self._queue
        nowq = self._nowq
        popleft = nowq.popleft
        pop = heappop
        tfree = self._tfree
        refs = getrefcount
        events = 0
        try:
            while True:
                if nowq:
                    # Current-timestamp run: no heap contact, no `until`
                    # check needed (these events are due at now <= until).
                    event = popleft()
                elif queue:
                    if until is not None and queue[0][0] > until:
                        break
                    when, _, event = pop(queue)
                    self._now = when
                else:
                    break
                events += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # An unhandled failure (e.g. a crashed process
                    # nobody waits on) must surface, not pass silently.
                    raise event._value
                # Recycle the Timeout shell iff nothing outside this
                # frame still references it (refcount == 2: the local +
                # getrefcount's argument). Reuse is then unobservable.
                if type(event) is Timeout and refs(event) == 2 and len(tfree) < _FREE_MAX:
                    tfree.append(event)
        finally:
            self.events_processed += events
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes and return its value."""
        queue = self._queue
        nowq = self._nowq
        popleft = nowq.popleft
        pop = heappop
        tfree = self._tfree
        refs = getrefcount
        events = 0
        try:
            while process._value is _PENDING:
                if nowq:
                    event = popleft()
                elif queue:
                    when, _, event = pop(queue)
                    self._now = when
                else:
                    raise SimulationError("deadlock: event queue drained before process finished")
                events += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if type(event) is Timeout and refs(event) == 2 and len(tfree) < _FREE_MAX:
                    tfree.append(event)
        finally:
            self.events_processed += events
        if not process._ok:
            process.defuse()
            raise process._value
        return process._value
