"""Cluster-wide simulation configuration and CPU cost model.

The absolute values are a scaled-down stand-in for the paper's 12-core
machines (we default to 4 simulated cores and proportionally larger
per-operation costs so runs stay small); what matters for reproducing
the paper's *shapes* is the cost structure:

* transactions consume CPU at their execution site (queueing for cores
  is what saturates the single-master site);
* every replicated write later consumes (cheaper) refresh CPU at every
  replica (the multi-master replication overhead);
* 2PC adds whole network round trips and holds locks across them;
* data shipping (LEAP) pays per-record marshalling CPU and bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.network import NetworkConfig


@dataclass
class CostModel:
    """Per-operation CPU costs in simulated milliseconds."""

    #: Fixed cost to begin one transaction branch at a site: request
    #: dispatch/unmarshalling, snapshot setup, lock bookkeeping. Charged
    #: per participating site, so scatter-gather reads and multi-branch
    #: 2PC writes pay it once per shard.
    txn_begin_ms: float = 0.15
    #: Fixed cost to commit (log record construction, version stamping).
    txn_commit_ms: float = 0.05
    #: Point read of one record.
    read_op_ms: float = 0.02
    #: Write of one record (new version creation).
    write_op_ms: float = 0.05
    #: Per-record cost inside a range scan (in-memory sequential read).
    scan_op_ms: float = 0.001
    #: Per-record cost to apply a refresh transaction at a replica
    #: (version installation only - no transaction logic, locks, or
    #: index lookups, so far cheaper than an original write).
    refresh_op_ms: float = 0.004
    #: Fixed cost to apply a refresh transaction (dequeue, rule check).
    refresh_base_ms: float = 0.01
    #: 2PC prepare work at a participant (force-log the prepare record).
    prepare_ms: float = 0.4
    #: 2PC commit/abort record processing at a participant.
    decide_ms: float = 0.1
    #: Coordinator-side work per branch and per round of 2PC (request
    #: marshalling, vote collection, decision logging).
    coordinate_ms: float = 0.1
    #: Site-selector work to look up and lock partition metadata.
    route_lookup_ms: float = 0.005
    #: Site-selector work to score candidate sites for remastering.
    remaster_decision_ms: float = 0.02
    #: Site-manager work to release mastership of one partition.
    release_ms: float = 0.01
    #: Site-manager work to take mastership of one partition.
    grant_ms: float = 0.01
    #: Per-record cost to migrate a record between owners (LEAP data
    #: shipping): index removal + packing at the source, unpacking +
    #: index insertion at the destination.
    marshal_op_ms: float = 0.025

    def execution_ms(self, reads: int, writes: int, scanned: int) -> float:
        """CPU time for the execution phase of a transaction."""
        return (
            reads * self.read_op_ms
            + writes * self.write_op_ms
            + scanned * self.scan_op_ms
        )

    def refresh_ms(self, writes: int) -> float:
        """CPU time to apply a refresh transaction with ``writes`` records."""
        return self.refresh_base_ms + writes * self.refresh_op_ms


@dataclass
class SizeModel:
    """Wire sizes in bytes for the traffic accounting."""

    #: Payload bytes per record shipped or replicated.
    record_bytes: int = 100
    #: Bytes per key in a request (write-set announcements etc.).
    key_bytes: int = 16
    #: Fixed bytes per RPC request/response.
    rpc_overhead_bytes: int = 64
    #: Bytes of a version vector entry.
    vector_entry_bytes: int = 8

    def update_record_bytes(self, writes: int, sites: int) -> int:
        """Size of one replicated update record."""
        return self.rpc_overhead_bytes + writes * self.record_bytes + sites * self.vector_entry_bytes


@dataclass
class RpcConfig:
    """Timeout/retry/suspicion knobs for the hardened RPC layer.

    Only consulted when a fault plan is active; unfaulted runs never
    arm a timeout or take a retry branch, so these values cannot
    perturb them. The timeout is deliberately generous relative to
    typical transaction latencies (a few ms) so that a loaded-but-live
    site is not mistaken for a dead one; a crashed site is detected
    fast anyway via connection-refused (:class:`~repro.faults.errors.
    SiteDown`), so timeouts mostly fire for lost/partitioned messages.
    """

    #: How long a caller waits for an RPC response before giving up.
    timeout_ms: float = 50.0
    #: Remastering RPCs (release/grant) legitimately block on quiesce
    #: and replication catch-up; they get a longer leash.
    remaster_timeout_ms: float = 400.0
    #: Retries after the first attempt of a protocol-level operation.
    max_retries: int = 3
    #: Exponential backoff: min(cap, base * 2**attempt), jittered
    #: +-50% from the faults RNG stream.
    backoff_base_ms: float = 1.0
    backoff_cap_ms: float = 16.0
    #: Consecutive timeouts before a site is suspected dead.
    suspicion_threshold: int = 2
    #: Failure-detector policy: "adaptive" (phi-accrual over per-site
    #: inter-success intervals; see repro.faults.detector) or
    #: "threshold" (the classic fixed-strike detector, kept as a
    #: selectable baseline — chaos --defenses fixed uses it).
    detector_policy: str = "adaptive"
    #: Phi level at which the adaptive detector suspects a site.
    phi_threshold: float = 8.0
    #: Suspicion hysteresis of the adaptive detector: once tripped,
    #: suspicion latches for this long (extended by fresh timeout
    #: evidence) so a fail-slow site that keeps slowly succeeding is
    #: actually drained rather than flickering in and out of routing.
    suspicion_quarantine_ms: float = 250.0
    #: When True, guarded RPCs use per-destination deadlines derived
    #: from observed RTT quantiles (clamped to [deadline_floor_ms,
    #: timeout_ms]) instead of the fixed timeout — a fail-slow site is
    #: then noticed in milliseconds rather than at the full timeout.
    adaptive_deadlines: bool = False
    #: RTT quantile and headroom multiplier for the adaptive deadline.
    deadline_quantile: float = 0.99
    deadline_multiplier: float = 3.0
    #: RTT samples per destination before adapting (cold-start guard).
    deadline_min_samples: int = 20
    #: Never tighten a deadline below this.
    deadline_floor_ms: float = 5.0
    #: When True, reads launch a backup request to another replica
    #: after the hedge-quantile RTT has elapsed without a response;
    #: first response wins, the loser is absorbed.
    hedged_reads: bool = False
    #: RTT quantile after which a read hedges.
    hedge_quantile: float = 0.95


@dataclass
class ClusterConfig:
    """Everything needed to instantiate a simulated cluster."""

    num_sites: int = 4
    #: Simulated cores per data site (paper: 12; scaled down by default).
    cores_per_site: int = 4
    #: Simulated cores for the site-selector machine.
    selector_cores: int = 8
    #: Delay between a commit and its update record reaching subscribers
    #: (the Kafka hop, paper §V-A2). Kept below a client's reply+request
    #: round trip so replicas are usually session-fresh by the time the
    #: writing client's next transaction arrives (§VI-B2).
    log_delivery_ms: float = 0.3
    #: Maximum record versions retained by MVCC (paper: 4, §V-A1).
    max_versions: int = 4
    costs: CostModel = field(default_factory=CostModel)
    sizes: SizeModel = field(default_factory=SizeModel)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    rpc: RpcConfig = field(default_factory=RpcConfig)
    seed: int = 0

    def scaled(self, **changes) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
