"""Deterministic discrete-event simulation substrate.

Everything in this reproduction — clients, data sites, RPCs, the
replication stream, 2PC rounds, lock waits — runs as simulated processes
against a virtual clock provided by this package. The engine is a small,
self-contained SimPy-style kernel: generator-based processes yield
:class:`~repro.sim.core.Event` objects and are resumed when those events
trigger. Runs are fully deterministic for a given seed.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.network import Network, NetworkConfig
from repro.sim.rand import RandomStreams, ZipfGenerator
from repro.sim.resources import Resource, RWLock, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Network",
    "NetworkConfig",
    "Process",
    "RandomStreams",
    "Resource",
    "RWLock",
    "SimulationError",
    "Store",
    "Timeout",
    "ZipfGenerator",
]
