"""Arrival-rate curves and open-loop arrival streams.

Closed-loop clients (``repro.bench.harness._client_loop``) issue a new
transaction only after the previous one completes, so the offered load
self-throttles as the system slows down — the *coordinated omission*
problem: exactly when the system is saturated, a closed-loop driver
stops measuring the pain. Open-loop traffic decouples offered load from
completion: arrivals follow a rate curve :math:`\\lambda(t)` regardless
of how the system is doing, which is what exposes saturation knees,
admission-queue growth, and goodput collapse (DESIGN.md §9,
docs/SCALE.md).

This module provides the *rate curves* and the *arrival stream*:

* four registered curve shapes — :class:`ConstantCurve`,
  :class:`RampCurve`, :class:`DiurnalCurve` (sinusoidal
  day/night cycle), :class:`BurstyCurve` (square-wave bursts) — all
  frozen picklable dataclasses, buildable by name from
  :data:`CURVE_REGISTRY` so a :class:`~repro.workloads.openloop.
  OpenLoopSpec` can describe one as pure data;
* :func:`arrival_times` — a nonhomogeneous Poisson process sampled by
  *thinning*: candidate arrivals are drawn from a homogeneous Poisson
  process at the curve's peak rate and accepted with probability
  ``rate(t) / peak``. The stream is a pure function of the RNG handed
  in, so the same seed always produces the same arrival instants
  (pinned by ``tests/test_arrivals.py``).

Determinism contract: no module-global randomness, no host clock; every
draw comes from the caller's seeded stream (the dedicated
:data:`repro.sim.rand.ARRIVALS_STREAM`, so attaching an open-loop
engine never perturbs the workload, network, or fault streams).
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple, Type


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class ConstantCurve:
    """A flat offered rate: ``rate_tps`` transactions per second."""

    rate_tps: float = 1000.0

    def __post_init__(self):
        _require_positive("rate_tps", self.rate_tps)

    def rate(self, t_ms: float) -> float:
        return self.rate_tps

    def peak(self) -> float:
        return self.rate_tps


@dataclass(frozen=True)
class RampCurve:
    """A linear ramp from ``start_tps`` to ``end_tps`` over ``ramp_ms``.

    After ``ramp_ms`` the rate holds at ``end_tps``; a decreasing ramp
    (``end_tps < start_tps``) models load draining away. Useful for
    walking a system *through* its saturation knee within one run.
    """

    start_tps: float = 100.0
    end_tps: float = 2000.0
    ramp_ms: float = 1000.0

    def __post_init__(self):
        _require_non_negative("start_tps", self.start_tps)
        _require_non_negative("end_tps", self.end_tps)
        _require_positive("ramp_ms", self.ramp_ms)
        if self.start_tps == 0 and self.end_tps == 0:
            raise ValueError("ramp needs a nonzero endpoint")

    def rate(self, t_ms: float) -> float:
        progress = min(1.0, max(0.0, t_ms / self.ramp_ms))
        return self.start_tps + (self.end_tps - self.start_tps) * progress

    def peak(self) -> float:
        return max(self.start_tps, self.end_tps)


@dataclass(frozen=True)
class DiurnalCurve:
    """A sinusoidal day/night cycle between ``base_tps`` and ``peak_tps``.

    ``rate(t) = base + (peak - base) * (1 + sin(2π(t/period + phase)))/2``

    With the default ``phase = 0`` the run starts at the mid rate on
    the rising edge, crests at a quarter period, and bottoms out at
    three quarters — one full simulated "day" per ``period_ms``.
    """

    base_tps: float = 200.0
    peak_tps: float = 2000.0
    period_ms: float = 1000.0
    phase: float = 0.0

    def __post_init__(self):
        _require_non_negative("base_tps", self.base_tps)
        _require_positive("peak_tps", self.peak_tps)
        _require_positive("period_ms", self.period_ms)
        if self.peak_tps < self.base_tps:
            raise ValueError(
                f"peak_tps ({self.peak_tps}) must be >= base_tps ({self.base_tps})"
            )

    def rate(self, t_ms: float) -> float:
        swing = (1.0 + math.sin(2.0 * math.pi * (t_ms / self.period_ms + self.phase))) / 2.0
        return self.base_tps + (self.peak_tps - self.base_tps) * swing

    def peak(self) -> float:
        return self.peak_tps


@dataclass(frozen=True)
class BurstyCurve:
    """Square-wave bursts: ``burst_tps`` for the first ``burst_ms`` of
    every ``period_ms``, ``base_tps`` otherwise.

    The arrivals inside and outside bursts are still Poisson (thinned
    from the peak rate), so this models a flash crowd riding on steady
    background traffic rather than a deterministic batch.
    """

    base_tps: float = 200.0
    burst_tps: float = 2000.0
    period_ms: float = 500.0
    burst_ms: float = 100.0

    def __post_init__(self):
        _require_non_negative("base_tps", self.base_tps)
        _require_positive("burst_tps", self.burst_tps)
        _require_positive("period_ms", self.period_ms)
        _require_positive("burst_ms", self.burst_ms)
        if self.burst_ms > self.period_ms:
            raise ValueError(
                f"burst_ms ({self.burst_ms}) must be <= period_ms ({self.period_ms})"
            )

    def rate(self, t_ms: float) -> float:
        if (t_ms % self.period_ms) < self.burst_ms:
            return self.burst_tps
        return self.base_tps

    def peak(self) -> float:
        return max(self.base_tps, self.burst_tps)


#: Registry of buildable arrival curves: name -> curve class. Like
#: :data:`repro.workloads.WORKLOAD_REGISTRY`, this is what lets a spec
#: describe a curve as pure data (name + params) and have a worker
#: process rebuild it — the spawn-safety contract (CONTRIBUTING.md).
CURVE_REGISTRY: Dict[str, Type] = {
    "constant": ConstantCurve,
    "ramp": RampCurve,
    "diurnal": DiurnalCurve,
    "bursty": BurstyCurve,
}


def build_curve(name: str, **params):
    """Instantiate a registered curve from plain parameters.

    Raises ``ValueError`` naming the unknown curve (and the known ones)
    so multi-process drivers surface a clean, attributable error.
    """
    try:
        curve_cls = CURVE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CURVE_REGISTRY))
        raise ValueError(
            f"unknown arrival curve {name!r}; registered curves: {known}"
        ) from None
    return curve_cls(**params)


def scale_curve_params(
    params: Tuple[Tuple[str, object], ...], multiplier: float
) -> Tuple[Tuple[str, object], ...]:
    """Multiply every rate parameter (``*_tps``) by ``multiplier``.

    The scale harness walks a *rate ladder* over one curve shape; by
    convention every registered curve expresses rates in parameters
    suffixed ``_tps``, so scaling them scales the whole curve without
    changing its shape or timing.
    """
    _require_positive("multiplier", multiplier)
    return tuple(
        (key, value * multiplier if key.endswith("_tps") else value)
        for key, value in params
    )


def arrival_times(curve, duration_ms: float, rng) -> Iterator[float]:
    """Arrival instants (ms) of a nonhomogeneous Poisson process.

    Standard thinning: candidates are drawn from a homogeneous Poisson
    process at the curve's peak rate (exponential gaps), and each
    candidate at time ``t`` is kept with probability
    ``curve.rate(t) / curve.peak()``. Every draw comes from ``rng``, so
    the stream is exactly reproducible from the seed; candidates are
    drawn lazily, so interleaving other draws from *different* streams
    cannot perturb it.
    """
    peak = curve.peak()
    if peak <= 0:
        return
    per_ms = peak / 1000.0
    t = 0.0
    while True:
        t += rng.expovariate(per_ms)
        if t >= duration_ms:
            return
        if rng.random() * peak <= curve.rate(t):
            yield t


def mean_rate(curve, duration_ms: float, steps: int = 512) -> float:
    """Trapezoidal mean of ``curve.rate`` over ``[0, duration_ms]``.

    The *expected* offered rate of a run — what the realized arrival
    count converges to. Used for reporting, never for simulation.
    """
    _require_positive("duration_ms", duration_ms)
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    width = duration_ms / steps
    total = 0.0
    for index in range(steps):
        left = curve.rate(index * width)
        right = curve.rate((index + 1) * width)
        total += (left + right) / 2.0
    return total / steps
