"""Shared resources for simulated processes.

* :class:`Resource` — a capacity-limited server (e.g. the CPU cores of a
  data site). Requests queue FIFO when the resource is saturated.
* :class:`Store` — an unbounded FIFO message queue used for inboxes.
* :class:`AdmissionQueue` — a bounded FIFO with offered/admitted/shed
  accounting, fronting each site under open-loop traffic (DESIGN.md §9).
* :class:`RWLock` — a fair readers-writer lock used by the site selector
  for partition metadata (paper §V-B).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.core import Environment, Event, SimulationError, _PENDING


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A server with ``capacity`` identical slots and a FIFO queue.

    Usage from a process::

        request = resource.request()
        yield request
        yield env.timeout(service_time)
        resource.release(request)

    or, more conveniently, ``yield from resource.use(service_time)``.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Request] = deque()
        #: Total busy time accumulated across all slots (for utilization).
        self.busy_time = 0.0
        self._last_change = env.now
        #: Fail-slow hook: when set (by the fault injector), a callable
        #: returning the current service-time multiplier; applied at
        #: grant time in :meth:`use`. ``None`` — the unfaulted case —
        #: costs one attribute check and keeps runs bit-identical.
        self.slow = None

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def _account(self) -> None:
        now = self.env._now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted.

        Hot path (one request per CPU slice): the Request is built and
        the busy-time accounting applied inline instead of chaining
        through ``Event.__init__`` / :meth:`_account`; the end state is
        identical to the chained version.
        """
        request = Request.__new__(Request)
        request.env = self.env
        request.callbacks = []
        request._value = _PENDING
        request._ok = True
        request._defused = False
        request.resource = self
        if self._in_use < self.capacity:
            now = self.env._now
            self.busy_time += self._in_use * (now - self._last_change)
            self._last_change = now
            self._in_use += 1
            request.succeed()
        else:
            self._queue.append(request)
        return request

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``."""
        if request.resource is not self:
            raise SimulationError("request released to the wrong resource")
        if request._value is _PENDING:
            # The request never got a slot; drop it from the queue.
            self._queue.remove(request)
            request.defuse()
            request.succeed()
            return
        now = self.env._now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now
        self._in_use -= 1
        if self._queue:
            nxt = self._queue.popleft()
            self._in_use += 1
            nxt.succeed()

    def use(self, duration: float, *, txn=None, track: str = "") -> Generator:
        """Hold one slot for ``duration`` time units (helper generator).

        When a ``txn`` is passed and tracing is on, time spent queued
        behind a saturated resource is recorded as a ``cpu_queue`` span
        (plus a causal edge carrying the queue depth). The bookkeeping
        is pure recording — no extra events — so untraced runs are
        bit-identical.

        A fail-slow fault (:attr:`slow`) stretches the service time by
        the multiplier active when the slot is requested — modeling a
        sick machine where every operation takes longer, not one where
        new work is refused.
        """
        if self.slow is not None:
            duration = duration * self.slow()
        request = self.request()
        if txn is not None and not request.triggered:
            tracer = self.env.obs.tracer
            if tracer.enabled:
                queued_at = self.env.now
                depth = len(self._queue)
                yield request
                granted_at = self.env.now
                tracer.span("cpu_queue", queued_at, granted_at,
                            track=track, txn=txn, depth=depth)
                tracer.edge("cpu_queue", queued_at, txn=txn, track=track,
                            depth=depth, waited=granted_at - queued_at)
                try:
                    yield self.env.timeout(duration)
                finally:
                    self.release(request)
                return
        yield request
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(request)

    def busy_time_now(self) -> float:
        """Busy slot-time accumulated up to the current instant.

        Observability probe hook: sampling this at a fixed cadence and
        differencing yields windowed utilization timelines.
        """
        self._account()
        return self.busy_time

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of total slot-time used since creation."""
        self._account()
        window = elapsed if elapsed is not None else self.env.now
        if window <= 0:
            return 0.0
        return self.busy_time / (window * self.capacity)


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the longest-waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class AdmissionQueue:
    """A bounded FIFO admission queue with load-shedding accounting.

    Under open-loop traffic the arrival process offers work at a rate
    the system does not control, so each site needs a queue between
    arrivals and its dispatcher slots — and that queue needs *honest*
    accounting, because queue depth and admission wait are exactly the
    signals that distinguish a saturated system from a healthy one
    (docs/SCALE.md).

    ``capacity = 0`` means unbounded (pure queue-growth observation);
    a positive capacity sheds arrivals that find the queue full — the
    queue-based load-leveling pattern, where ``shed`` becomes the
    overload signal instead of unbounded latency.

    Conservation invariants (pinned by ``tests/test_openloop.py``)::

        offered  == admitted + shed
        admitted == taken + len(queue)

    ``taken`` counts items the moment they leave the queue (including
    the fast path where an offer lands directly on a waiting getter),
    so the second identity holds structurally at every instant.
    """

    def __init__(self, env: Environment, capacity: int = 0):
        if capacity < 0:
            raise SimulationError(f"queue capacity must be >= 0, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        #: Arrivals presented to the queue (admitted + shed).
        self.offered = 0
        #: Arrivals accepted (queued or handed straight to a getter).
        self.admitted = 0
        #: Arrivals dropped because the queue was at capacity.
        self.shed = 0
        #: Items that have left the queue toward a dispatcher.
        self.taken = 0
        #: Deepest the backlog has ever been.
        self.peak_depth = 0
        # Time-weighted depth integral for mean_depth().
        self._depth_area = 0.0
        self._last_change = env.now

    def __len__(self) -> int:
        return len(self._items)

    def _account(self) -> None:
        now = self.env._now
        self._depth_area += len(self._items) * (now - self._last_change)
        self._last_change = now

    def offer(self, item: Any) -> bool:
        """Present an arrival; returns ``False`` if it was shed."""
        self.offered += 1
        if self._getters:
            # Fast path: a dispatcher is already waiting, so the item
            # never occupies the backlog — admitted and taken at once.
            self.admitted += 1
            self.taken += 1
            self._getters.popleft().succeed(item)
            return True
        if self.capacity and len(self._items) >= self.capacity:
            self.shed += 1
            return False
        self._account()
        self.admitted += 1
        self._items.append(item)
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        return True

    def take(self) -> Event:
        """Event that triggers with the next admitted item (FIFO)."""
        event = Event(self.env)
        if self._items:
            self._account()
            self.taken += 1
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def mean_depth(self, now: Optional[float] = None) -> float:
        """Time-weighted mean backlog depth since creation."""
        self._account()
        window = now if now is not None else self.env.now
        if window <= 0:
            return 0.0
        return self._depth_area / window


class RWLock:
    """A fair (FIFO) readers-writer lock.

    Multiple readers may hold the lock simultaneously; writers are
    exclusive. Fairness: a waiting writer blocks later readers, which
    prevents writer starvation — the site selector relies on this when
    upgrading partition metadata locks for remastering.
    """

    _READ = "read"
    _WRITE = "write"

    def __init__(self, env: Environment):
        self.env = env
        self._readers = 0
        self._writer = False
        self._waiters: Deque[tuple] = deque()

    @property
    def read_locked(self) -> bool:
        return self._readers > 0

    @property
    def write_locked(self) -> bool:
        return self._writer

    def acquire_read(self) -> Event:
        """Event that triggers when a shared (read) hold is granted."""
        event = Event(self.env)
        if not self._writer and not self._waiters:
            self._readers += 1
            event.succeed()
        else:
            self._waiters.append((self._READ, event))
        return event

    def acquire_write(self) -> Event:
        """Event that triggers when an exclusive (write) hold is granted."""
        event = Event(self.env)
        if not self._writer and self._readers == 0 and not self._waiters:
            self._writer = True
            event.succeed()
        else:
            self._waiters.append((self._WRITE, event))
        return event

    def release_read(self) -> None:
        if self._readers <= 0:
            raise SimulationError("release_read() without a read hold")
        self._readers -= 1
        self._dispatch()

    def release_write(self) -> None:
        if not self._writer:
            raise SimulationError("release_write() without a write hold")
        self._writer = False
        self._dispatch()

    def downgrade(self) -> None:
        """Atomically convert an exclusive hold into a shared hold.

        Unlike release-then-acquire, no writer can slip in between; the
        site selector uses this to keep routing permission on
        partitions it is *not* moving while a remastering runs.
        """
        if not self._writer:
            raise SimulationError("downgrade() without a write hold")
        self._writer = False
        self._readers += 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters:
            mode, event = self._waiters[0]
            if mode == self._WRITE:
                if self._readers == 0 and not self._writer:
                    self._waiters.popleft()
                    self._writer = True
                    event.succeed()
                return
            if self._writer:
                return
            self._waiters.popleft()
            self._readers += 1
            event.succeed()
