"""Network cost model.

The paper's testbed is a 10 Gbit/s LAN with Apache Thrift RPC. We model
a message as a fixed per-message latency (propagation plus RPC
marshalling) plus a size-dependent serialization term, and account every
byte against a named traffic category so the bench harness can reproduce
the paper's traffic breakdown (Appendix D: ~43 MB/s of stored-procedure
arguments, ~155 MB/s of refresh propagation, ~3 MB/s of remastering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.core import Environment, Timeout


@dataclass
class NetworkConfig:
    """Knobs for the message cost model (times in ms, sizes in bytes)."""

    #: One-way per-message latency: propagation + RPC framing overhead.
    one_way_latency_ms: float = 0.25
    #: Usable bandwidth for the size-dependent term, bytes per ms.
    #: 1e6 bytes/ms = 1 GB/s, roughly the goodput of a 10 Gbit link.
    bandwidth_bytes_per_ms: float = 1.0e6
    #: Uniform jitter amplitude as a fraction of the base latency.
    jitter: float = 0.0


@dataclass
class TrafficCounters:
    """Bytes and message counts per traffic category."""

    bytes_by_category: Dict[str, int] = field(default_factory=dict)
    messages_by_category: Dict[str, int] = field(default_factory=dict)

    def record(self, category: str, size: int) -> None:
        self.bytes_by_category[category] = self.bytes_by_category.get(category, 0) + size
        self.messages_by_category[category] = self.messages_by_category.get(category, 0) + 1

    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())


class Network:
    """Creates delay events for messages and accounts traffic."""

    def __init__(self, env: Environment, config: NetworkConfig | None = None, rng=None):
        self.env = env
        self.config = config or NetworkConfig()
        self._rng = rng
        self.traffic = TrafficCounters()

    def delay_for(self, size: int = 0) -> float:
        """Return the one-way delay for a message of ``size`` bytes."""
        cfg = self.config
        delay = cfg.one_way_latency_ms + size / cfg.bandwidth_bytes_per_ms
        if cfg.jitter and self._rng is not None:
            delay *= 1.0 + cfg.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def account(self, category: str, size: int) -> None:
        """Record one message against ``category``.

        Besides the run-total traffic counters, an observed run also
        streams per-category byte/message counters into the metrics
        registry so traffic breakdowns (Appendix D) can be read over
        time, not just at the end.
        """
        self.traffic.record(category, size)
        obs = self.env.obs
        if obs.enabled:
            obs.registry.counter(f"net.{category}.bytes").inc(size)
            obs.registry.counter(f"net.{category}.messages").inc()

    def transfer(self, size: int = 0, category: str = "rpc") -> Timeout:
        """Event that triggers after the message has traversed the wire."""
        self.account(category, size)
        return self.env.timeout(self.delay_for(size))
