"""Network cost model.

The paper's testbed is a 10 Gbit/s LAN with Apache Thrift RPC. We model
a message as a fixed per-message latency (propagation plus RPC
marshalling) plus a size-dependent serialization term, and account every
byte against a named traffic category so the bench harness can reproduce
the paper's traffic breakdown (Appendix D: ~43 MB/s of stored-procedure
arguments, ~155 MB/s of refresh propagation, ~3 MB/s of remastering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.core import Environment, Timeout


@dataclass
class NetworkConfig:
    """Knobs for the message cost model (times in ms, sizes in bytes)."""

    #: One-way per-message latency: propagation + RPC framing overhead.
    one_way_latency_ms: float = 0.25
    #: Usable bandwidth for the size-dependent term, bytes per ms.
    #: 1e6 bytes/ms = 1 GB/s, roughly the goodput of a 10 Gbit link.
    bandwidth_bytes_per_ms: float = 1.0e6
    #: Uniform jitter amplitude as a fraction of the base latency.
    jitter: float = 0.0


@dataclass
class TrafficCounters:
    """Bytes and message counts per traffic category."""

    bytes_by_category: Dict[str, int] = field(default_factory=dict)
    messages_by_category: Dict[str, int] = field(default_factory=dict)

    def record(self, category: str, size: int) -> None:
        # One message per call on the RPC hot path; the categories are
        # a handful of fixed names, so the KeyError branch runs once per
        # category per run.
        try:
            self.bytes_by_category[category] += size
        except KeyError:
            self.bytes_by_category[category] = size
        try:
            self.messages_by_category[category] += 1
        except KeyError:
            self.messages_by_category[category] = 1

    def record_many(self, category: str, size: int, count: int) -> None:
        """Record ``count`` same-sized messages with one counter bump.

        Totals are exactly what ``count`` calls to :meth:`record` would
        produce (sizes are integral bytes, so ``size * count`` has no
        rounding concerns).
        """
        self.bytes_by_category[category] = (
            self.bytes_by_category.get(category, 0) + size * count
        )
        self.messages_by_category[category] = (
            self.messages_by_category.get(category, 0) + count
        )

    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())


class Network:
    """Creates delay events for messages and accounts traffic.

    By default every message succeeds after a uniform (size-dependent)
    delay. When a fault injector is installed (``self.faults``), the
    network exposes a per-link view — :meth:`leg_lost` and
    :meth:`leg_delay` consult the injector's link-state matrix for
    partitions, probabilistic loss, and extra per-link delay. The
    legacy single-delay path (:meth:`transfer`, :meth:`delay_for`) is
    untouched, so runs without a fault plan are bit-identical.
    """

    def __init__(self, env: Environment, config: NetworkConfig | None = None, rng=None):
        self.env = env
        self.config = config or NetworkConfig()
        self._rng = rng
        self.traffic = TrafficCounters()
        #: The installed :class:`~repro.faults.injector.FaultInjector`,
        #: or None (the default — no fault can occur).
        self.faults = None

    def delay_for(self, size: int = 0) -> float:
        """Return the one-way delay for a message of ``size`` bytes."""
        cfg = self.config
        delay = cfg.one_way_latency_ms + size / cfg.bandwidth_bytes_per_ms
        if cfg.jitter and self._rng is not None:
            delay *= 1.0 + cfg.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    # -- per-link view (fault injection only) -----------------------------

    def leg_lost(self, src: int, dst: int) -> bool:
        """Whether a message on the directed link ``src -> dst`` is lost.

        Always False without an injector. With one, a blackholed link
        loses everything and a lossy link loses each message with its
        configured probability (drawn from the faults RNG stream).
        """
        if self.faults is None:
            return False
        return self.faults.message_lost(src, dst)

    def leg_delay(self, src: int, dst: int, size: int = 0) -> float:
        """One-way delay on a specific link, including injected delay."""
        delay = self.delay_for(size)
        if self.faults is not None:
            delay += self.faults.link_extra_delay(src, dst)
        return delay

    def account(self, category: str, size: int) -> None:
        """Record one message against ``category``.

        Besides the run-total traffic counters, an observed run also
        streams per-category byte/message counters into the metrics
        registry so traffic breakdowns (Appendix D) can be read over
        time, not just at the end.
        """
        self.traffic.record(category, size)
        obs = self.env.obs
        if obs.enabled:
            obs.registry.counter(f"net.{category}.bytes").inc(size)
            obs.registry.counter(f"net.{category}.messages").inc()

    def account_many(self, category: str, size: int, count: int) -> None:
        """Record ``count`` same-sized messages against ``category``.

        Used by fan-out paths (log replication) to replace a loop of
        :meth:`account` calls; the totals are identical.
        """
        if count <= 0:
            return
        self.traffic.record_many(category, size, count)
        obs = self.env.obs
        if obs.enabled:
            obs.registry.counter(f"net.{category}.bytes").inc(size * count)
            obs.registry.counter(f"net.{category}.messages").inc(count)

    def transfer(self, size: int = 0, category: str = "rpc") -> Timeout:
        """Event that triggers after the message has traversed the wire."""
        self.account(category, size)
        return self.env.timeout(self.delay_for(size))
