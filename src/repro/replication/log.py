"""Durable, ordered, per-site update logs (Kafka substitute).

The paper stores each site's updates in a distinct Kafka log, which
provides exactly two guarantees the correctness proof leans on
(Appendix A, condition 3): records are delivered to every subscriber
*reliably* and *in append order*. :class:`DurableLog` provides both: a
record appended at simulated time ``t`` reaches every subscriber's
queue at ``t + delivery_delay``, and the full record sequence is
retained for replay (the redo log of §V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.sim.core import Environment
from repro.sim.network import Network
from repro.sim.resources import Store

#: Log record kinds.
UPDATE = "update"
RELEASE = "release"
GRANT = "grant"


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One durable log entry.

    ``tvv`` is the committing transaction's version vector as a tuple;
    ``tvv[origin]`` is the record's position in the origin site's
    commit order. ``writes`` holds ``(key, value)`` pairs for update
    records and is empty for release/grant markers. ``partitions``
    names the remastered partitions for release/grant records, and
    ``target`` the receiving site for grants (used in recovery).
    """

    kind: str
    origin: int
    tvv: Tuple[int, ...]
    writes: Tuple[Tuple[Any, Any], ...] = ()
    partitions: Tuple[int, ...] = ()
    target: Optional[int] = None

    @property
    def seq(self) -> int:
        """This record's commit sequence number at its origin."""
        return self.tvv[self.origin]


class DurableLog:
    """An append-only, subscriber-fanout log for one site."""

    def __init__(
        self,
        env: Environment,
        origin: int,
        delivery_delay_ms: float = 0.0,
        network: Optional[Network] = None,
        record_size=None,
    ):
        self.env = env
        self.origin = origin
        self.delivery_delay_ms = delivery_delay_ms
        self.network = network
        #: Callable mapping a LogRecord to its wire size in bytes.
        self.record_size = record_size
        self.records: List[LogRecord] = []
        self._subscribers: List[Store] = []

    def __len__(self) -> int:
        return len(self.records)

    def subscribe(self, from_seq: Optional[int] = None) -> Store:
        """Register a new subscriber; returns its delivery queue.

        By default only records appended after subscription are
        delivered (a recovering site first replays :attr:`records`,
        then subscribes). Passing ``from_seq`` resumes a stream from a
        known position instead: every retained record with
        ``seq > from_seq`` is pre-loaded into the queue immediately —
        the log is durable, so a restarted subscriber can always
        continue from its version vector without a full replay.
        """
        queue = Store(self.env)
        if from_seq is not None:
            for record in self.records:
                if record.seq > from_seq:
                    queue.put(record)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: Store) -> None:
        """Stop delivering to ``queue`` (its owner crashed or rewired)."""
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    def append(self, record: LogRecord) -> None:
        """Durably append ``record`` and schedule fan-out delivery."""
        if record.origin != self.origin:
            raise ValueError(
                f"record from site {record.origin} appended to site {self.origin}'s log"
            )
        self.records.append(record)
        if self.network is not None and self.record_size is not None:
            size = self.record_size(record)
            category = "replication" if record.kind == UPDATE else "remaster"
            # Producer write plus one delivery per subscriber.
            self.network.account_many(category, size, 1 + len(self._subscribers))
        tracer = self.env.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "log_append", self.env.now, track=f"site{self.origin}",
                kind=record.kind, seq=record.seq,
            )
        if not self._subscribers:
            return
        if self.delivery_delay_ms <= 0:
            for queue in self._subscribers:
                queue.put(record)
                if tracer.enabled:
                    tracer.instant(
                        "log_deliver", self.env.now, track=f"site{self.origin}",
                        seq=record.seq,
                    )
            return
        # Batched fan-out: one shared delay event delivers to every
        # subscriber registered at append time (snapshotted, matching
        # the old per-subscriber capture). Ordering is unchanged: the
        # per-subscriber timeouts this replaces carried consecutive
        # event ids at one deadline, so nothing could interleave with
        # them — their puts ran back to back exactly as this loop runs
        # them, and every put-triggered wakeup still lands afterwards
        # in the same relative order.
        targets = tuple(self._subscribers)
        timeout = self.env.timeout(self.delivery_delay_ms)

        def deliver(_event, targets=targets, r=record):
            tracer = self.env.obs.tracer
            for queue in targets:
                queue.put(r)
                if tracer.enabled:
                    tracer.instant(
                        "log_deliver", self.env.now,
                        track=f"site{self.origin}", seq=r.seq,
                    )

        timeout.callbacks.append(deliver)

    def replay(self) -> Tuple[LogRecord, ...]:
        """All records appended so far, in order (for recovery)."""
        return tuple(self.records)
