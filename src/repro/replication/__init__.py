"""Lazy update propagation (paper §III-A, §V-A2, §V-C).

Each site owns a :class:`~repro.replication.log.DurableLog` — the
stand-in for the paper's per-site Apache Kafka topic. Commits append
update records; every other site's
:class:`~repro.replication.manager.ReplicationManager` subscribes,
applies the updates as refresh transactions under the update
application rule (Equation 1), and advances its site version vector.
The same log doubles as a redo log: :mod:`repro.replication.recovery`
rebuilds a site's database and the mastership map by replay.
"""

from repro.replication.log import DurableLog, LogRecord
from repro.replication.manager import ReplicationManager
from repro.replication.recovery import (
    recover_database,
    recover_mastership,
    recover_site,
)

__all__ = [
    "DurableLog",
    "LogRecord",
    "ReplicationManager",
    "recover_database",
    "recover_mastership",
    "recover_site",
]
