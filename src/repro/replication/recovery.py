"""Recovery by redo-log replay (paper §V-C).

Any data site recovers independently: it rebuilds record state by
replaying the update records of every site's log in a dependency-
respecting order, and it (or a recovering site selector) reconstructs
the data-item mastership map from the sequence of release and grant
markers in the same logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.replication.log import GRANT, RELEASE, UPDATE, DurableLog
from repro.sim.core import Environment
from repro.storage.database import Database
from repro.versioning.vectors import VersionVector, can_apply_refresh


def merge_logs(logs: Sequence[DurableLog]) -> list:
    """Order all records across logs consistently with Equation 1.

    Repeatedly applies any record admissible under the update
    application rule, starting from the zero vector — exactly what a
    recovering replica does. Raises if the logs are inconsistent (some
    record's dependencies can never be satisfied).
    """
    cursors = [0] * len(logs)
    svv = VersionVector.zeros(len(logs))
    ordered = []
    total = sum(len(log) for log in logs)
    while len(ordered) < total:
        progressed = False
        for index, log in enumerate(logs):
            while cursors[index] < len(log.records):
                record = log.records[cursors[index]]
                if not can_apply_refresh(svv, VersionVector(record.tvv), record.origin):
                    break
                ordered.append(record)
                svv[record.origin] = record.seq
                cursors[index] += 1
                progressed = True
        if not progressed:
            raise ValueError("logs are inconsistent: no admissible record found")
    return ordered


def recover_database(
    env: Environment,
    logs: Sequence[DurableLog],
    initial_data: Optional[Iterable] = None,
    max_versions: int = 4,
    from_vector: Optional[VersionVector] = None,
) -> tuple:
    """Rebuild a database and site version vector from the redo logs.

    ``initial_data`` is the bulk-loaded state (``(key, value)`` pairs)
    that predates the logs — in the paper this comes from an existing
    replica's checkpoint. ``from_vector`` skips records the checkpoint
    already reflects (the site version vector stored with it).

    Returns ``(database, svv)``.
    """
    database = Database(env, max_versions=max_versions)
    if initial_data:
        for key, value in initial_data:
            database.load(key, value)
    svv = VersionVector.zeros(len(logs))
    skip = from_vector or VersionVector.zeros(len(logs))
    for record in merge_logs(logs):
        svv[record.origin] = record.seq
        if record.seq <= skip[record.origin]:
            continue
        if record.kind == UPDATE and record.writes:
            database.install_many(record.writes, record.origin, record.seq)
    return database, svv


def recover_site(cluster, index: int, initial_mastership: Dict[int, int]):
    """Rebuild data site ``index`` in place after a crash (paper §V-C).

    The replacement site reconstructs its database and site version
    vector by replaying every durable log (including its own — the logs
    live on the Kafka substitute, not on the failed machine), restores
    its mastership set from the grant/release markers, reuses its
    existing durable log (appends continue from the old position), and
    re-subscribes to its peers' logs so new updates flow again.

    Returns the new :class:`~repro.sites.data_site.DataSite`, already
    installed in ``cluster.sites``.
    """
    from repro.sites.data_site import DataSite

    old = cluster.sites[index]
    logs = [site.log for site in cluster.sites]
    database, svv = recover_database(
        cluster.env, logs, max_versions=cluster.config.max_versions
    )
    mastership = recover_mastership(logs, initial_mastership)

    replacement = DataSite(
        cluster.env,
        index,
        cluster.config.num_sites,
        cluster.config,
        cluster.network,
        cluster.activity,
        replicated=old.replicated,
    )
    replacement.database = database
    replacement.svv = svv
    replacement.watch.vector = svv
    replacement.log = old.log  # durable: survives the site
    replacement.mastered = {
        partition for partition, site in mastership.items() if site == index
    }
    replacement.commits = sum(
        1 for record in old.log.records if record.kind == UPDATE
    )
    cluster.sites[index] = replacement
    replacement.connect(cluster.sites)
    return replacement


def recover_mastership(
    logs: Sequence[DurableLog],
    initial_mastership: Dict[int, int],
) -> Dict[int, int]:
    """Reconstruct the partition -> master-site map from grant/release.

    ``initial_mastership`` is the placement at load time. A release
    marker leaves the partition unowned until the matching grant names
    the new master; replay applies them in the Equation-1 order, so the
    final map equals the live site selector's map at the time of the
    crash.
    """
    mastership = dict(initial_mastership)
    for record in merge_logs(list(logs)):
        if record.kind == RELEASE:
            for partition in record.partitions:
                mastership.pop(partition, None)
        elif record.kind == GRANT:
            if record.target is None:
                raise ValueError("grant record without a target site")
            for partition in record.partitions:
                mastership[partition] = record.target
    return mastership
