"""Recovery by redo-log replay (paper §V-C).

Any data site recovers independently: it rebuilds record state by
replaying the update records of every site's log in a dependency-
respecting order, and it (or a recovering site selector) reconstructs
the data-item mastership map from the sequence of release and grant
markers in the same logs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterable, Optional, Sequence

from repro.replication.log import GRANT, RELEASE, UPDATE, DurableLog
from repro.sim.core import Environment
from repro.storage.database import Database
from repro.versioning.vectors import VersionVector


def merge_logs(logs: Sequence[DurableLog]) -> list:
    """Order all records across logs consistently with Equation 1.

    Produces the order a recovering replica applies: a record from
    ``origin`` is admissible once ``svv[origin] == seq - 1`` (per-log
    FIFO, automatic for well-formed logs) and ``svv[k] >= tvv[k]`` for
    every other component (its dependencies were applied). Raises if
    the logs are inconsistent (some record's dependencies can never be
    satisfied).

    Runs in O(total records x vector width): each log head is examined
    once per park/wake, and a head parks on exactly one blocking
    component — the first one short of its dependency — and is woken
    only when that component reaches the required sequence number. The
    naive formulation (rescan every log after every applied record) is
    quadratic in the total record count, which made restart replay the
    dominant cost of a long chaos run.
    """
    num = len(logs)
    svv = [0] * num
    cursors = [0] * num
    ordered = []
    ready: deque = deque()
    #: Per-component min-heaps of (needed seq, blocked log index).
    waiters = [[] for _ in range(num)]

    def examine(index: int) -> None:
        """Queue log ``index``'s head as ready, or park it on a blocker."""
        if cursors[index] >= len(logs[index].records):
            return
        record = logs[index].records[cursors[index]]
        tvv = record.tvv
        for component in range(num):
            if component != index and tvv[component] > svv[component]:
                heapq.heappush(waiters[component], (tvv[component], index))
                return
        ready.append(record)
        cursors[index] += 1

    for index in range(num):
        examine(index)
    while ready:
        record = ready.popleft()
        origin = record.origin
        if record.seq != svv[origin] + 1:
            raise ValueError("logs are inconsistent: no admissible record found")
        ordered.append(record)
        svv[origin] = record.seq
        examine(origin)
        heap = waiters[origin]
        while heap and heap[0][0] <= svv[origin]:
            _, blocked = heapq.heappop(heap)
            examine(blocked)
    if len(ordered) < sum(len(log) for log in logs):
        raise ValueError("logs are inconsistent: no admissible record found")
    return ordered


def recover_database(
    env: Environment,
    logs: Sequence[DurableLog],
    initial_data: Optional[Iterable] = None,
    max_versions: int = 4,
    from_vector: Optional[VersionVector] = None,
) -> tuple:
    """Rebuild a database and site version vector from the redo logs.

    ``initial_data`` is the bulk-loaded state (``(key, value)`` pairs)
    that predates the logs — in the paper this comes from an existing
    replica's checkpoint. ``from_vector`` skips records the checkpoint
    already reflects (the site version vector stored with it).

    Returns ``(database, svv)``.
    """
    database = Database(env, max_versions=max_versions)
    if initial_data:
        for key, value in initial_data:
            database.load(key, value)
    svv = VersionVector.zeros(len(logs))
    skip = from_vector or VersionVector.zeros(len(logs))
    for record in merge_logs(logs):
        svv[record.origin] = record.seq
        if record.seq <= skip[record.origin]:
            continue
        if record.kind == UPDATE and record.writes:
            database.install_many(record.writes, record.origin, record.seq)
    return database, svv


def recover_site(cluster, index: int, initial_mastership: Dict[int, int]):
    """Rebuild data site ``index`` in place after a crash (paper §V-C).

    The replacement site reconstructs its database and site version
    vector by replaying every durable log (including its own — the logs
    live on the Kafka substitute, not on the failed machine), restores
    its mastership set from the grant/release markers, reuses its
    existing durable log (appends continue from the old position), and
    re-subscribes to its peers' logs so new updates flow again.

    Returns the new :class:`~repro.sites.data_site.DataSite`, already
    installed in ``cluster.sites``.
    """
    from repro.sites.data_site import DataSite

    old = cluster.sites[index]
    logs = [site.log for site in cluster.sites]
    database, svv = recover_database(
        cluster.env, logs, max_versions=cluster.config.max_versions
    )
    mastership = recover_mastership(logs, initial_mastership)

    replacement = DataSite(
        cluster.env,
        index,
        cluster.config.num_sites,
        cluster.config,
        cluster.network,
        cluster.activity,
        replicated=old.replicated,
    )
    replacement.database = database
    replacement.svv = svv
    replacement.watch.vector = svv
    replacement.log = old.log  # durable: survives the site
    replacement.mastered = {
        partition for partition, site in mastership.items() if site == index
    }
    replacement.commits = sum(
        1 for record in old.log.records if record.kind == UPDATE
    )
    cluster.sites[index] = replacement
    replacement.connect(cluster.sites)
    return replacement


def rejoin_site(cluster, index: int, initial_mastership: Dict[int, int]):
    """Bring a crashed site back online *during* a run (live restart).

    A generator meant to run inside a simulated process (the fault
    injector's). Unlike :func:`recover_site`, which rebuilds a site
    offline between runs, this restarts the existing
    :class:`~repro.sites.data_site.DataSite` object in place — every
    reference held by probes, selectors, and peers stays valid.

    Replicated sites replay all durable logs (charged as refresh CPU
    on the recovering machine — the paper's ~0.4s/site replay, §V-C),
    reconstruct database, site version vector, and mastership, then
    resume each peer's replication stream from the replayed vector, so
    catch-up refreshes flow without re-delivering applied records.
    Non-replicated sites (partition-store, LEAP) model a locally
    durable store: they replay their own log onto surviving state and
    come back with the database they crashed with.
    """
    site = cluster.sites[index]
    costs = cluster.config.costs
    if site.replicated:
        logs = [peer.log for peer in cluster.sites]
        replay_ms = sum(
            costs.refresh_ms(len(record.writes)) for record in merge_logs(logs)
        )
        yield from site.cpu.use(replay_ms)
        database, svv = recover_database(
            cluster.env, logs, max_versions=cluster.config.max_versions
        )
        mastership = recover_mastership(logs, initial_mastership)
        mastered = {
            partition for partition, owner in mastership.items() if owner == index
        }
        # No yields between recovery and resubscription: the replayed
        # vector and the subscription positions describe the same
        # instant, so the streams resume gap- and overlap-free.
        site.complete_restart(database, svv, mastered)
        site.replication.resubscribe(cluster.sites, svv)
    else:
        replay_ms = sum(
            costs.refresh_ms(len(record.writes)) for record in site.log.records
        )
        yield from site.cpu.use(replay_ms)
        site.complete_restart(site.database, site.svv, site.mastered)
    return site


def recover_mastership(
    logs: Sequence[DurableLog],
    initial_mastership: Dict[int, int],
) -> Dict[int, int]:
    """Reconstruct the partition -> master-site map from grant/release.

    ``initial_mastership`` is the placement at load time. A release
    marker leaves the partition unowned until the matching grant names
    the new master; replay applies them in the Equation-1 order, so the
    final map equals the live site selector's map at the time of the
    crash.
    """
    mastership = dict(initial_mastership)
    for record in merge_logs(list(logs)):
        if record.kind == RELEASE:
            for partition in record.partitions:
                mastership.pop(partition, None)
        elif record.kind == GRANT:
            if record.target is None:
                raise ValueError("grant record without a target site")
            for partition in record.partitions:
                mastership[partition] = record.target
    return mastership
