"""Refresh-transaction application (paper §V-A2).

A site's replication manager subscribes to every *other* site's durable
log and applies each incoming record as a refresh transaction:

1. block until the update application rule (Equation 1) admits the
   record — every transaction it depends on has been applied locally
   and records from its origin are applied in commit order;
2. create the new record versions (consuming refresh CPU);
3. make the updates visible by advancing ``svv[origin]`` and waking any
   transaction or grant blocked on the site's version.

Release/grant markers flow through the same path as empty refreshes, so
a remastering operation's increment of the releasing site's version
vector propagates to every replica — the property the SI proof's Case 2
relies on.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List

from repro.faults.errors import FaultError, SiteDown
from repro.replication.log import DurableLog, LogRecord
from repro.versioning.vectors import can_apply_refresh

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sites.data_site import DataSite


class ReplicationManager:
    """Applies refresh transactions at one data site."""

    def __init__(self, site: "DataSite"):
        self.site = site
        #: Refresh transactions applied, by origin site.
        self.applied_by_origin: Dict[int, int] = {}
        #: Total records applied (updates + markers).
        self.applied = 0
        self._drainers: List = []
        #: Delivery queues, one per subscribed origin (depth probe).
        self.queues: List = []
        #: The logs backing ``queues``, index-aligned (for unsubscribe).
        self._logs: List[DurableLog] = []

    def subscribe_to(self, log: DurableLog, from_seq=None) -> None:
        """Start draining ``log`` (must belong to a different site)."""
        if log.origin == self.site.index:
            raise ValueError("a site does not subscribe to its own log")
        queue = log.subscribe(from_seq=from_seq)
        self.queues.append(queue)
        self._logs.append(log)
        self._drainers.append(self.site.env.process(self._drain(queue)))

    def shutdown(self) -> None:
        """Tear down all streams (the site crashed).

        Interrupts the drainer processes (their ``finally`` blocks
        release any CPU core they hold) and detaches the delivery
        queues from the durable logs so no further records pile up in
        dead queues.
        """
        for drainer in self._drainers:
            if drainer.is_alive:
                drainer.interrupt(SiteDown(self.site.index))
        for log, queue in zip(self._logs, self.queues):
            log.unsubscribe(queue)
        self._drainers.clear()
        self.queues.clear()
        self._logs.clear()

    def resubscribe(self, sites, from_vector) -> None:
        """Re-attach to every peer log after a restart.

        ``from_vector`` is the site version vector the recovery replay
        established; each stream resumes from its origin's component,
        so records already reflected in the replayed state are not
        re-delivered and no record is skipped.
        """
        for other in sites:
            if other is not self.site and self.site.replicated and other.replicated:
                self.subscribe_to(other.log, from_seq=from_vector[other.log.origin])

    def queue_depth(self) -> int:
        """Records delivered but not yet picked up by the drainers.

        Batches already pulled into a drainer's working set are not
        counted; the probe tracks backlog at the inbox.
        """
        return sum(len(queue) for queue in self.queues)

    def _drain(self, queue):
        """One long-lived process applying records from a single origin.

        Application is batched: once a CPU core is acquired, every
        consecutively-admissible queued record is applied under the
        same hold. Without batching, a busy site would pay a full CPU
        queueing delay per record and replicas would fall behind
        exactly when the system is loaded.
        """
        site = self.site
        pending = deque()
        try:
            yield from self._drain_loop(site, queue, pending)
        except FaultError:
            # The site crashed under us (shutdown() interrupt). The
            # inner finally already released any held core; just stop.
            return

    def _drain_loop(self, site, queue, pending):
        while True:
            if not pending:
                pending.append((yield queue.get()))
            while len(queue):
                pending.append(queue.get().value)
            # Records carry their tvv as a plain tuple; can_apply_refresh
            # consumes it directly, so no VersionVector is allocated per
            # delivered record.
            head = pending[0].tvv
            head_origin = pending[0].origin
            yield site.watch.wait_until(
                lambda: can_apply_refresh(site.svv, head, head_origin)
            )
            request = site.cpu.request()
            yield request
            env = site.env
            apply_started = env._now
            applied_before = self.applied
            # Locals for the batch body: one refresh per committed
            # update flows through here at every replica. The generator
            # is interrupted on a crash and re-created on resubscribe,
            # so these can never go stale across a restart. Writing the
            # svv slot through .counts skips __setitem__'s >= 0 check
            # (commit sequences are always >= 1).
            svv = site.svv
            svv_counts = svv.counts
            refresh_ms = site.config.costs.refresh_ms
            install_many = site.database.install_many
            notify = site.watch.notify
            timeout = env.timeout
            applied_by_origin = self.applied_by_origin
            try:
                while pending:
                    record: LogRecord = pending[0]
                    origin = record.origin
                    if not can_apply_refresh(svv, record.tvv, origin):
                        break
                    writes = record.writes
                    yield timeout(refresh_ms(len(writes)))
                    if writes:
                        install_many(writes, origin, record.seq)
                    svv_counts[origin] = record.seq
                    self.applied += 1
                    try:
                        applied_by_origin[origin] += 1
                    except KeyError:
                        applied_by_origin[origin] = 1
                    notify()
                    pending.popleft()
                    while len(queue):
                        pending.append(queue.get().value)
            finally:
                site.cpu.release(request)
                tracer = site.env.obs.tracer
                if tracer.enabled and self.applied > applied_before:
                    tracer.span(
                        "refresh_apply", apply_started, site.env.now,
                        track=f"site{site.index}",
                        origin=head_origin,
                        records=self.applied - applied_before,
                    )
