"""Refresh-transaction application (paper §V-A2).

A site's replication manager subscribes to every *other* site's durable
log and applies each incoming record as a refresh transaction:

1. block until the update application rule (Equation 1) admits the
   record — every transaction it depends on has been applied locally
   and records from its origin are applied in commit order;
2. create the new record versions (consuming refresh CPU);
3. make the updates visible by advancing ``svv[origin]`` and waking any
   transaction or grant blocked on the site's version.

Release/grant markers flow through the same path as empty refreshes, so
a remastering operation's increment of the releasing site's version
vector propagates to every replica — the property the SI proof's Case 2
relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.replication.log import DurableLog, LogRecord
from repro.versioning.vectors import VersionVector, can_apply_refresh

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sites.data_site import DataSite


class ReplicationManager:
    """Applies refresh transactions at one data site."""

    def __init__(self, site: "DataSite"):
        self.site = site
        #: Refresh transactions applied, by origin site.
        self.applied_by_origin: Dict[int, int] = {}
        #: Total records applied (updates + markers).
        self.applied = 0
        self._drainers: List = []
        #: Delivery queues, one per subscribed origin (depth probe).
        self.queues: List = []

    def subscribe_to(self, log: DurableLog) -> None:
        """Start draining ``log`` (must belong to a different site)."""
        if log.origin == self.site.index:
            raise ValueError("a site does not subscribe to its own log")
        queue = log.subscribe()
        self.queues.append(queue)
        self._drainers.append(self.site.env.process(self._drain(queue)))

    def queue_depth(self) -> int:
        """Records delivered but not yet picked up by the drainers.

        Batches already pulled into a drainer's working set are not
        counted; the probe tracks backlog at the inbox.
        """
        return sum(len(queue) for queue in self.queues)

    def _drain(self, queue):
        """One long-lived process applying records from a single origin.

        Application is batched: once a CPU core is acquired, every
        consecutively-admissible queued record is applied under the
        same hold. Without batching, a busy site would pay a full CPU
        queueing delay per record and replicas would fall behind
        exactly when the system is loaded.
        """
        site = self.site
        pending = []
        while True:
            if not pending:
                pending.append((yield queue.get()))
            while len(queue):
                pending.append(queue.get().value)
            head = VersionVector(pending[0].tvv)
            head_origin = pending[0].origin
            yield site.watch.wait_until(
                lambda: can_apply_refresh(site.svv, head, head_origin)
            )
            request = site.cpu.request()
            yield request
            apply_started = site.env.now
            applied_before = self.applied
            try:
                while pending:
                    record: LogRecord = pending[0]
                    tvv = VersionVector(record.tvv)
                    if not can_apply_refresh(site.svv, tvv, record.origin):
                        break
                    yield site.env.timeout(
                        site.config.costs.refresh_ms(len(record.writes))
                    )
                    if record.writes:
                        site.database.install_many(
                            record.writes, record.origin, record.seq
                        )
                    site.svv[record.origin] = record.seq
                    self.applied += 1
                    self.applied_by_origin[record.origin] = (
                        self.applied_by_origin.get(record.origin, 0) + 1
                    )
                    site.watch.notify()
                    pending.pop(0)
                    while len(queue):
                        pending.append(queue.get().value)
            finally:
                site.cpu.release(request)
                tracer = site.env.obs.tracer
                if tracer.enabled and self.applied > applied_before:
                    tracer.span(
                        "refresh_apply", apply_started, site.env.now,
                        track=f"site{site.index}",
                        origin=head_origin,
                        records=self.applied - applied_before,
                    )
