"""DynaMast: Adaptive Dynamic Mastering for Replicated Systems.

A complete reproduction of the ICDE 2020 paper by Abebe, Glasbergen and
Daudjee, built on a deterministic discrete-event simulation substrate.

Public API tour:

* :func:`repro.systems.build_system` / :class:`repro.systems.Cluster` —
  assemble any of the five evaluated architectures;
* :class:`repro.core.SiteSelector` — the dynamic-mastering site
  selector (Algorithm 1 + the Eq. 2-8 strategies);
* :mod:`repro.workloads` — modified YCSB, TPC-C, SmallBank;
* :func:`repro.bench.run_benchmark` — closed-loop measurement harness;
* :mod:`repro.bench.experiments` — drivers for every evaluation figure.
"""

from repro.bench import run_benchmark
from repro.systems import Cluster, Session, System, build_system
from repro.transactions import Key, Outcome, Transaction

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Key",
    "Outcome",
    "Session",
    "System",
    "Transaction",
    "build_system",
    "run_benchmark",
    "__version__",
]
