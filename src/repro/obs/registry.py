"""Counters, gauges, and streaming log-bucketed histograms.

The registry is the numeric half of the observability layer: protocol
code bumps counters and gauges; latency samples stream into
:class:`StreamingHistogram`, which keeps O(buckets) state instead of
every sample — a long simulated run no longer accumulates unbounded
Python lists. Buckets grow geometrically, so any quantile estimate is
within one bucket's relative width of the exact sample quantile.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
]

_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Sanitize a metric name for the text exposition format.

    Valid characters are ``[a-zA-Z_:][a-zA-Z0-9_:]*``; anything else
    becomes an underscore, and a leading digit gets one prepended.
    """
    sanitized = _NAME_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double-quote, and newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    parts = [
        f'{_prometheus_name(key)}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def _merge_labels(base: Optional[Mapping[str, str]],
                  extra: Dict[str, str]) -> Dict[str, str]:
    merged = dict(base) if base else {}
    merged.update(extra)
    return merged


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """An instantaneous level (e.g. 2PC transactions in flight)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class StreamingHistogram:
    """A log-bucketed histogram of non-negative samples.

    Bucket ``i`` covers ``[base * growth**i, base * growth**(i + 1))``;
    samples below ``base`` land in a dedicated underflow bucket. With
    the default ``growth`` of 1.05, any quantile estimate is within
    ~2.5% (half a bucket's relative width) of the exact value, while a
    million samples cost a few hundred integers of memory.
    """

    __slots__ = ("name", "base", "growth", "_log_growth", "_buckets",
                 "_underflow", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, base: float = 1e-3, growth: float = 1.05):
        if base <= 0 or growth <= 1.0:
            raise ValueError("need base > 0 and growth > 1")
        self.name = name
        self.base = base
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def record(self, value: float) -> None:
        """Stream one sample into the histogram."""
        if value < 0:
            raise ValueError(f"negative sample {value} in histogram {self.name}")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value < self.base:
            self._underflow += 1
            return
        index = int(math.log(value / self.base) / self._log_growth)
        # Guard against float edge cases at bucket boundaries.
        if value < self.base * self.growth ** index:
            index -= 1
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (midpoint of the holding bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction out of range: {q}")
        if self.count == 0:
            return 0.0
        # Nearest-rank position, mirroring bench.metrics._percentile.
        rank = min(self.count - 1, max(0, round(q * (self.count - 1))))
        seen = self._underflow
        if rank < seen:
            return min(self.minimum, self.base)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                low = self.base * self.growth ** index
                high = low * self.growth
                return min(self.maximum, max(self.minimum, (low + high) / 2.0))
        return self.maximum

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same geometry)."""
        if other.base != self.base or other.growth != self.growth:
            raise ValueError("cannot merge histograms with different buckets")
        self.count += other.count
        self.total += other.total
        self._underflow += other._underflow
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    def percentiles(self, fractions=(0.50, 0.90, 0.95, 0.99)) -> Dict[float, float]:
        return {fraction: self.quantile(fraction) for fraction in fractions}

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(bucket lower bound, count) pairs, for export."""
        pairs = []
        if self._underflow:
            pairs.append((0.0, self._underflow))
        for index in sorted(self._buckets):
            pairs.append((self.base * self.growth ** index, self._buckets[index]))
        return pairs


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, StreamingHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, base: float = 1e-3,
                  growth: float = 1.05) -> StreamingHistogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = StreamingHistogram(
                name, base=base, growth=growth
            )
        return histogram

    def to_prometheus(self, labels: Optional[Mapping[str, str]] = None) -> str:
        """Render every instrument in Prometheus text exposition format.

        Counters become ``counter`` samples, gauges ``gauge`` samples,
        and each streaming histogram a Prometheus histogram: cumulative
        ``_bucket{le="..."}`` samples over the log-bucket upper bounds
        (underflow under ``le="<base>"``), a ``+Inf`` bucket, and
        ``_sum`` / ``_count``. ``labels`` (e.g. ``{"system":
        "dynamast", "seed": "3"}``) are attached to every sample, with
        values escaped per the format (backslash, quote, newline).
        """
        lines: List[str] = []
        for name, counter in sorted(self.counters.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(
                f"{metric}{_format_labels(labels)} {_format_value(counter.value)}"
            )
        for name, gauge in sorted(self.gauges.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f"{metric}{_format_labels(labels)} {_format_value(gauge.value)}"
            )
        for name, histogram in sorted(self.histograms.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            if histogram._underflow:
                cumulative += histogram._underflow
                bucket_labels = _merge_labels(
                    labels, {"le": _format_value(histogram.base)}
                )
                lines.append(
                    f"{metric}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            for index in sorted(histogram._buckets):
                cumulative += histogram._buckets[index]
                upper = histogram.base * histogram.growth ** (index + 1)
                bucket_labels = _merge_labels(labels, {"le": _format_value(upper)})
                lines.append(
                    f"{metric}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = _merge_labels(labels, {"le": "+Inf"})
            lines.append(
                f"{metric}_bucket{_format_labels(inf_labels)} {histogram.count}"
            )
            lines.append(
                f"{metric}_sum{_format_labels(labels)} "
                f"{_format_value(histogram.total)}"
            )
            lines.append(f"{metric}_count{_format_labels(labels)} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, object]:
        """Plain-data dump of every instrument (for JSON export)."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean,
                    "min": 0.0 if h.count == 0 else h.minimum,
                    "max": h.maximum,
                    "p50": h.quantile(0.50),
                    "p99": h.quantile(0.99),
                }
                for name, h in sorted(self.histograms.items())
            },
        }
