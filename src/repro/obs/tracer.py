"""Span-tree tracing over the simulated clock.

A :class:`Tracer` records what happened *inside* every transaction —
routing, release/grant waits, lock waits, execution, 2PC rounds — as
flat span records stamped with simulated time, plus instant events
(remasters, aborts, log deliveries) and per-transaction envelopes.
Span *trees* are reconstructed on demand by interval containment:
spans of one transaction nest strictly (a child runs entirely inside
its parent's interval), so no parent ids need to be threaded through
the protocol code.

The default tracer everywhere is :data:`NULL_TRACER`, whose methods are
all no-ops and which never touches the simulation environment, so an
untraced run is bit-identical to a run before this module existed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "EdgeRecord",
    "InstantRecord",
    "NullTracer",
    "SpanNode",
    "SpanRecord",
    "Tracer",
    "TxnRecord",
]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span: a named interval on a track."""

    name: str
    start: float
    end: float
    #: Which component the span ran on (e.g. ``site0``, ``selector``).
    track: str
    #: Owning transaction id, or None for site-level work (refreshes).
    txn_id: Optional[int]
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class InstantRecord:
    """A point event (remaster, abort, log delivery, ...)."""

    name: str
    ts: float
    track: str
    txn_id: Optional[int]
    args: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True, slots=True)
class EdgeRecord:
    """One causal edge: *why* a transaction waited at instant ``ts``.

    Edges complement spans: a span says a wait happened, an edge names
    the other party — the holder of the lock we queued on, the lagging
    replication origin a snapshot read waited to apply, the paired RPC,
    the remaster chain, the 2PC round. Kinds in use (DESIGN.md §6.5):
    ``lock_wait``, ``refresh_wait``, ``rpc``, ``remaster``,
    ``2pc_round``, ``cpu_queue``.
    """

    kind: str
    ts: float
    #: The waiting/affected transaction.
    txn_id: Optional[int]
    #: The transaction blamed for the wait (lock holder), or None.
    src_txn_id: Optional[int]
    track: str
    args: Tuple[Tuple[str, Any], ...] = ()


@dataclass(slots=True)
class TxnRecord:
    """The envelope of one traced transaction."""

    txn_id: int
    txn_type: str
    client_id: int
    begin: float
    end: Optional[float] = None
    committed: Optional[bool] = None
    remastered: bool = False
    distributed: bool = False
    #: Whether the benchmark harness counted this txn in its Metrics
    #: (committed after warmup) — reconciliation sums only these.
    recorded: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.begin


@dataclass(slots=True)
class SpanNode:
    """One node of a reconstructed span tree."""

    span: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)
    #: True for crash-severed spans that outlived (or never fit) the
    #: transaction envelope; such spans are surfaced as flagged roots
    #: and never adopt in-envelope children.
    orphan: bool = False

    @property
    def name(self) -> str:
        return self.span.name

    @property
    def self_time(self) -> float:
        """Span duration not covered by child spans."""
        return self.span.duration - sum(c.span.duration for c in self.children)

    def walk(self, path: str = ""):
        """Yield ``(path, node)`` pairs depth-first."""
        here = f"{path}/{self.span.name}" if path else self.span.name
        yield here, self
        for child in self.children:
            yield from child.walk(here)


class NullTracer:
    """The do-nothing tracer; the default everywhere.

    Every hook is a no-op so the instrumented protocol code costs a
    single attribute lookup and call per hook and the simulation's
    event stream is untouched.
    """

    enabled: bool = False

    def txn_begin(self, txn, now: float) -> None:
        pass

    def txn_end(self, txn, outcome, now: float, recorded: bool = True) -> None:
        pass

    def span(self, name: str, start: float, end: float, *,
             track: str = "", txn=None, **args) -> None:
        pass

    def instant(self, name: str, ts: float, *,
                track: str = "", txn=None, **args) -> None:
        pass

    def edge(self, kind: str, ts: float, *,
             txn=None, src_txn=None, track: str = "", **args) -> None:
        pass


#: Shared no-op tracer instance (stateless, safe to share globally).
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records spans, instants and transaction envelopes."""

    enabled = True

    def __init__(self):
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.edges: List[EdgeRecord] = []
        self.txns: Dict[int, TxnRecord] = {}

    # -- hooks (called from instrumented protocol code) ---------------------

    def txn_begin(self, txn, now: float) -> None:
        self.txns[txn.txn_id] = TxnRecord(
            txn_id=txn.txn_id,
            txn_type=txn.txn_type,
            client_id=txn.client_id,
            begin=now,
        )

    def txn_end(self, txn, outcome, now: float, recorded: bool = True) -> None:
        record = self.txns.get(txn.txn_id)
        if record is None:  # submitted outside the harness's begin hook
            record = TxnRecord(txn.txn_id, txn.txn_type, txn.client_id, now)
            self.txns[txn.txn_id] = record
        record.end = now
        record.committed = outcome.committed
        record.remastered = outcome.remastered
        record.distributed = outcome.distributed
        record.recorded = recorded and outcome.committed
        if not outcome.committed:
            self.instant("abort", now, track="client", txn=txn,
                         txn_type=txn.txn_type)

    def span(self, name: str, start: float, end: float, *,
             track: str = "", txn=None, **args) -> None:
        self.spans.append(SpanRecord(
            name, start, end, track,
            txn.txn_id if txn is not None else None,
            tuple(sorted(args.items())),
        ))

    def instant(self, name: str, ts: float, *,
                track: str = "", txn=None, **args) -> None:
        self.instants.append(InstantRecord(
            name, ts, track,
            txn.txn_id if txn is not None else None,
            tuple(sorted(args.items())),
        ))

    def edge(self, kind: str, ts: float, *,
             txn=None, src_txn=None, track: str = "", **args) -> None:
        self.edges.append(EdgeRecord(
            kind, ts,
            txn.txn_id if txn is not None else None,
            src_txn.txn_id if src_txn is not None else None,
            track,
            tuple(sorted(args.items())),
        ))

    def edges_of(self, txn_id: int) -> List[EdgeRecord]:
        """All causal edges of one transaction, in timestamp order."""
        mine = [e for e in self.edges if e.txn_id == txn_id]
        mine.sort(key=lambda e: (e.ts, e.kind))
        return mine

    # -- reconstruction ------------------------------------------------------

    def spans_of(self, txn_id: int) -> List[SpanRecord]:
        """All spans of one transaction, in start order."""
        mine = [s for s in self.spans if s.txn_id == txn_id]
        mine.sort(key=lambda s: (s.start, -s.end))
        return mine

    def span_tree(self, txn_id: int) -> List[SpanNode]:
        """Reconstruct the span tree of one transaction by containment.

        Spans are sorted by (start asc, end desc); a span is a child of
        the innermost open span that fully contains it. Returns the
        forest of root nodes (usually one: the txn envelope span).

        Crash handling: a mid-transaction site crash (or an abandoned
        at-least-once RPC attempt) can leave spans that outlive the
        transaction envelope — a severed lock wait whose release only
        ran when the crash interrupted it, a handler that finished
        after the client's timeout fired and the retry committed
        elsewhere. By raw containment such a span could *adopt* the
        retry's genuine spans as children (mis-parenting) or interleave
        with them as an unmarked sibling (dangling). Spans outside the
        ``[begin, end]`` envelope are therefore excluded from the
        containment stack and returned as trailing roots flagged
        ``orphan=True`` instead.
        """
        record = self.txns.get(txn_id)
        nested: List[SpanRecord] = []
        orphans: List[SpanRecord] = []
        if record is not None and record.end is not None:
            eps = 1e-9
            for span in self.spans_of(txn_id):
                if span.start >= record.begin - eps and span.end <= record.end + eps:
                    nested.append(span)
                else:
                    orphans.append(span)
        else:
            nested = self.spans_of(txn_id)
        roots: List[SpanNode] = []
        stack: List[SpanNode] = []
        for span in nested:
            node = SpanNode(span)
            while stack and not _contains(stack[-1].span, span):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        roots.extend(SpanNode(span, orphan=True) for span in orphans)
        return roots

    # -- aggregation ---------------------------------------------------------

    def phase_totals(self, recorded_only: bool = True) -> Dict[str, float]:
        """Total span milliseconds by span name.

        With ``recorded_only`` (the default), only spans of transactions
        the benchmark harness recorded in its Metrics are summed — the
        population whose ``Metrics.breakdown()`` these totals reconcile
        against.
        """
        totals: Dict[str, float] = {}
        for span in self.spans:
            if recorded_only:
                if span.txn_id is None:
                    continue
                record = self.txns.get(span.txn_id)
                if record is None or not record.recorded:
                    continue
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def recorded_latency_total(self) -> float:
        """Sum of end-to-end latencies over recorded transactions."""
        return sum(
            record.latency or 0.0
            for record in self.txns.values()
            if record.recorded
        )

    def abort_count(self) -> int:
        return sum(
            1 for record in self.txns.values() if record.committed is False
        )


def _contains(outer: SpanRecord, inner: SpanRecord) -> bool:
    """True if ``outer``'s interval contains ``inner``'s (with slack)."""
    eps = 1e-9
    return outer.start <= inner.start + eps and inner.end <= outer.end + eps
