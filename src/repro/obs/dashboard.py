"""Self-contained HTML dashboard for one SLO-monitored run.

:func:`render_dashboard` turns a finished run (a
:class:`~repro.bench.harness.RunResult` carrying a live
:class:`~repro.obs.slo.SloEngine`) into a single HTML file with inline
SVG — no JavaScript, no external assets, openable from a CI artifact
tab. It shows, top to bottom:

* the scalar SLO verdict and the fault-correlation table (MTTD/MTTR
  per injected fault window, misses called out);
* one timeline per SLO objective — the windowed metric value against
  its armed threshold, incident spans shaded red, injector
  ground-truth fault windows shaded gray;
* the committed-throughput timeline, bucketed on the engine's window;
* admission-queue depth per site, when the run sampled the open-loop
  probes (``repro bench --open-loop`` with observability on);
* the incident and invariant ledgers in full.

Determinism: the document is a pure function of the run — it embeds no
wall-clock timestamps, so re-rendering the same run yields an
identical file (the determinism guard in
``tests/test_determinism_guard.py`` covers this module too).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard", "write_dashboard"]

#: Chart geometry (pixels). Left gutter holds the y-axis labels.
WIDTH = 860
HEIGHT = 120
PAD_LEFT = 62
PAD_RIGHT = 10
PAD_TOP = 8
PAD_BOTTOM = 18

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 24px auto;
       max-width: 920px; color: #1a1a2e; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin-top: 28px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { border: 1px solid #ccd; padding: 3px 9px; text-align: left;
         font-variant-numeric: tabular-nums; }
th { background: #eef; }
td.num { text-align: right; }
.miss { color: #b00020; font-weight: 600; }
.ok { color: #1b7a2f; }
svg { display: block; margin: 4px 0 14px; background: #fbfbfe;
      border: 1px solid #dde; }
.meta { color: #667; }
"""


def _fmt(value, digits: int = 2) -> str:
    """Render a cell: floats compactly, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return str(value)


def _scale(value: float, lo: float, hi: float, out_lo: float,
           out_hi: float) -> float:
    if hi <= lo:
        return out_lo
    return out_lo + (value - lo) / (hi - lo) * (out_hi - out_lo)


def _series_svg(
    points: Sequence[Tuple[float, Optional[float]]],
    *,
    x_range: Tuple[float, float],
    threshold: Optional[float] = None,
    incident_spans: Sequence[Tuple[float, float]] = (),
    fault_spans: Sequence[Tuple[float, float]] = (),
    unit: str = "",
) -> str:
    """One timeline chart as an ``<svg>`` string.

    ``points`` are (time_ms, value) pairs; None values (windows with no
    data) break the polyline. Spans are [start_ms, end_ms) intervals
    shaded behind the series.
    """
    x0, x1 = x_range
    values = [v for _, v in points if v is not None]
    y_max = max(values + ([threshold] if threshold is not None else []),
                default=1.0)
    y_max = y_max * 1.1 or 1.0
    plot_l, plot_r = PAD_LEFT, WIDTH - PAD_RIGHT
    plot_t, plot_b = PAD_TOP, HEIGHT - PAD_BOTTOM

    def sx(t: float) -> float:
        return _scale(t, x0, x1, plot_l, plot_r)

    def sy(v: float) -> float:
        return _scale(v, 0.0, y_max, plot_b, plot_t)

    parts = [f'<svg viewBox="0 0 {WIDTH} {HEIGHT}" width="{WIDTH}" '
             f'height="{HEIGHT}" role="img">']
    for start, end in fault_spans:
        parts.append(
            f'<rect x="{sx(start):.1f}" y="{plot_t}" '
            f'width="{max(1.0, sx(end) - sx(start)):.1f}" '
            f'height="{plot_b - plot_t}" fill="#99a" opacity="0.25"/>'
        )
    for start, end in incident_spans:
        parts.append(
            f'<rect x="{sx(start):.1f}" y="{plot_t}" '
            f'width="{max(1.0, sx(end) - sx(start)):.1f}" '
            f'height="{plot_b - plot_t}" fill="#d33" opacity="0.22"/>'
        )
    # Axes and y labels (0 and max).
    parts.append(f'<line x1="{plot_l}" y1="{plot_b}" x2="{plot_r}" '
                 f'y2="{plot_b}" stroke="#99a"/>')
    parts.append(f'<line x1="{plot_l}" y1="{plot_t}" x2="{plot_l}" '
                 f'y2="{plot_b}" stroke="#99a"/>')
    parts.append(f'<text x="{plot_l - 4}" y="{plot_b}" text-anchor="end" '
                 f'font-size="10" fill="#667">0</text>')
    parts.append(f'<text x="{plot_l - 4}" y="{plot_t + 8}" text-anchor="end" '
                 f'font-size="10" fill="#667">'
                 f'{html.escape(f"{y_max:,.3g}{unit}")}</text>')
    parts.append(f'<text x="{plot_r}" y="{HEIGHT - 4}" text-anchor="end" '
                 f'font-size="10" fill="#667">{x1:,.0f} ms</text>')
    if threshold is not None:
        y = sy(threshold)
        parts.append(f'<line x1="{plot_l}" y1="{y:.1f}" x2="{plot_r}" '
                     f'y2="{y:.1f}" stroke="#b00020" stroke-width="1" '
                     f'stroke-dasharray="5,4"/>')
    # Polyline segments, broken at empty windows.
    segment: List[str] = []
    segments: List[List[str]] = []
    for t, v in points:
        if v is None:
            if segment:
                segments.append(segment)
            segment = []
            continue
        segment.append(f"{sx(t):.1f},{sy(v):.1f}")
    if segment:
        segments.append(segment)
    for seg in segments:
        if len(seg) == 1:
            x, y = seg[0].split(",")
            parts.append(f'<circle cx="{x}" cy="{y}" r="2" fill="#1547b0"/>')
        else:
            parts.append(f'<polyline points="{" ".join(seg)}" fill="none" '
                         f'stroke="#1547b0" stroke-width="1.5"/>')
    parts.append("</svg>")
    return "".join(parts)


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]],
           numeric: Sequence[int] = ()) -> str:
    out = ["<table><tr>"]
    out += [f"<th>{html.escape(str(h))}</th>" for h in headers]
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        for index, cell in enumerate(row):
            css = ' class="num"' if index in numeric else ""
            out.append(f"<td{css}>{html.escape(str(cell))}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def _incident_spans(incidents, run_end: float,
                    objective: Optional[str] = None):
    return [
        (inc.onset_ms, inc.clear_ms if inc.clear_ms is not None else run_end)
        for inc in incidents
        if objective is None or inc.objective == objective
    ]


def render_dashboard(result, *, title: Optional[str] = None) -> str:
    """Render ``result`` (an SLO-monitored run) as a standalone HTML page."""
    slo = getattr(result, "slo", None)
    if slo is None or not getattr(slo, "enabled", False):
        raise ValueError(
            "render_dashboard needs a RunResult with a live SloEngine "
            "(run with slo=SloEngine())"
        )
    run_end = slo.run_end_ms or getattr(result, "duration_ms", 0.0)
    x_range = (slo.warmup_ms, run_end)
    fault_spans = [(span["start_ms"], min(span["end_ms"], run_end))
                   for span in slo.correlation]
    summary = slo.summary()
    name = title or (f"{getattr(result, 'system_name', 'run')} / "
                     f"{getattr(result, 'workload_name', '')}")

    doc = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
           f"<title>{html.escape(name)} — SLO dashboard</title>",
           f"<style>{_CSS}</style></head><body>",
           f"<h1>SLO dashboard — {html.escape(name)}</h1>",
           f"<p class='meta'>window {slo.window_ms:g} ms · "
           f"{int(summary['windows_evaluated'])} windows evaluated · "
           f"run end {run_end:,.0f} ms (simulated)</p>"]

    # -- verdict -----------------------------------------------------------
    doc.append("<h2>Verdict</h2>")
    doc.append(_table(
        ["SLO incidents", "invariant violations", "true positives",
         "false positives", "fault spans detected", "MTTD (ms)", "MTTR (ms)"],
        [[int(summary["incidents"]), int(summary["violations"]),
          int(summary["true_positives"]), int(summary["false_positives"]),
          f"{int(summary['detected_spans'])} / {int(summary['fault_spans'])}",
          "n/a" if summary["mttd_mean_ms"] < 0 else _fmt(summary["mttd_mean_ms"], 0),
          "n/a" if summary["mttr_mean_ms"] < 0 else _fmt(summary["mttr_mean_ms"], 0),
          ]],
        numeric=range(7),
    ))

    # -- fault correlation -------------------------------------------------
    if slo.correlation:
        doc.append("<h2>Fault correlation (injector ground truth)</h2>")
        rows = []
        for span in slo.correlation:
            detected = ("<span class='ok'>detected</span>" if span["detected"]
                        else "<span class='miss'>MISS</span>")
            rows.append([
                f"[{span['start_ms']:,.0f}, {span['end_ms']:,.0f})",
                ",".join(span["kinds"]), ",".join(map(str, span["sites"])),
                detected,
                _fmt(span["detection_ms"], 0), _fmt(span["recovery_ms"], 0),
                ", ".join(sorted(set(span["incidents"]))) or "-",
            ])
        # Detected/MISS cells carry markup; build this table by hand.
        out = ["<table><tr>"]
        for header in ("fault window", "kinds", "sites", "status",
                       "MTTD ms", "MTTR ms", "incidents"):
            out.append(f"<th>{header}</th>")
        out.append("</tr>")
        for row in rows:
            out.append("<tr>")
            for index, cell in enumerate(row):
                text = cell if index == 3 else html.escape(str(cell))
                out.append(f"<td>{text}</td>")
            out.append("</tr>")
        out.append("</table>")
        doc.append("".join(out))

    # -- objective timelines -----------------------------------------------
    doc.append("<h2>Objective timelines</h2>")
    doc.append("<p class='meta'>blue: windowed value · dashed red: armed "
               "threshold · red shade: incident · gray shade: injected "
               "fault window</p>")
    series = slo.window_series()
    incidents = slo.incidents
    for state_row in slo.objective_rows():
        objective = state_row["objective"]
        windows = series.get(objective, [])
        points = [(start + slo.window_ms, value)
                  for start, value, _thr, _n, _b in windows]
        doc.append(f"<h2>{html.escape(objective)} "
                   f"<small class='meta'>({state_row['metric']}, "
                   f"{state_row['bound']} bound, "
                   f"{state_row['incidents']} incidents)</small></h2>")
        doc.append(_series_svg(
            points,
            x_range=x_range,
            threshold=state_row["threshold"],
            incident_spans=_incident_spans(incidents, run_end, objective),
            fault_spans=fault_spans,
        ))

    # -- throughput --------------------------------------------------------
    metrics = getattr(result, "metrics", None)
    commit_times = getattr(metrics, "commit_times", None) if metrics else None
    if commit_times:
        doc.append("<h2>Committed throughput "
                   "<small class='meta'>(txn/s per window)</small></h2>")
        bucket = slo.window_ms
        start0 = slo.warmup_ms
        buckets: Dict[int, int] = {}
        for when in commit_times:
            if when >= start0:
                buckets[int((when - start0) // bucket)] = (
                    buckets.get(int((when - start0) // bucket), 0) + 1
                )
        last = int(max(0.0, run_end - start0) // bucket)
        points = [
            (start0 + (index + 1) * bucket,
             buckets.get(index, 0) / (bucket / 1000.0))
            for index in range(last + 1)
        ]
        doc.append(_series_svg(points, x_range=x_range,
                               fault_spans=fault_spans, unit=" tps"))

    # -- admission queues --------------------------------------------------
    timelines = getattr(result, "timelines", None) or {}
    depth_lines = sorted(
        (name, timeline) for name, timeline in timelines.items()
        if name.startswith("admission_depth.")
    )
    if depth_lines:
        doc.append("<h2>Admission-queue depth "
                   "<small class='meta'>(open-loop, per site)</small></h2>")
        for name, timeline in depth_lines:
            doc.append(f"<h2><small class='meta'>"
                       f"{html.escape(name)}</small></h2>")
            doc.append(_series_svg(list(timeline.samples), x_range=x_range,
                                   fault_spans=fault_spans))

    # -- ledgers -----------------------------------------------------------
    episodes = list(incidents) + list(slo.violations)
    doc.append("<h2>Incident ledger</h2>")
    if episodes:
        doc.append(_table(
            ["kind", "objective", "onset ms", "clear ms", "threshold",
             "peak", "severity", "blamed sites", "detail"],
            [[inc.kind, inc.objective, _fmt(inc.onset_ms, 0),
              "open" if inc.clear_ms is None else _fmt(inc.clear_ms, 0),
              _fmt(inc.threshold, 3), _fmt(inc.peak_value, 3),
              _fmt(inc.peak_severity, 2),
              ",".join(str(s) for s in inc.blamed_sites) or "-",
              inc.detail or ""]
             for inc in episodes],
            numeric=(2, 3, 4, 5, 6),
        ))
    else:
        doc.append("<p class='ok'>No incidents and no invariant "
                   "violations.</p>")

    doc.append("</body></html>")
    return "".join(doc)


def write_dashboard(result, path: str, *, title: Optional[str] = None) -> None:
    with open(path, "w") as handle:
        handle.write(render_dashboard(result, title=title))
