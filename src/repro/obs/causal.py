"""Causal-graph layer over the tracer: edges and critical paths.

The tracer's spans say *that* a transaction waited; the causal layer
says *why* and *on whom*, and turns both into an exact partition of the
transaction's end-to-end latency.

Two pieces live here (DESIGN.md §6.5):

* the **edge taxonomy** — the :class:`~repro.obs.tracer.EdgeRecord`
  kinds protocol code emits (lock wait-for with holder identity, RPC
  request/reply pairing, CPU-queue occupancy, replication-refresh
  dependency, remastering chains, 2PC round ordering);
* the **critical-path extraction** — :func:`critical_path` sweeps a
  transaction's ``[begin, end]`` interval against its recorded spans
  and partitions every simulated millisecond into exactly one
  attribution category, so the per-category durations sum to the
  measured commit latency *by construction* (the invariant
  ``repro explain`` and the CI smoke step assert).

Everything here is pure post-processing over an already-recorded trace:
nothing touches the simulation, so the zero-overhead contract of
:mod:`repro.obs` is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.tracer import SpanRecord, Tracer

__all__ = [
    "CATEGORIES",
    "EDGE_KINDS",
    "SPAN_CATEGORY",
    "PathSegment",
    "critical_path",
    "path_categories",
]

#: Attribution categories, in presentation order. Every instant of a
#: committed transaction's life lands in exactly one of these.
CATEGORIES = (
    "cpu_service",
    "cpu_queue",
    "lock_wait",
    "network",
    "rpc_rounds",
    "refresh_wait",
    "remaster_wait",
    "commit_protocol",
    "other",
)

#: Causal edge kinds recorded by the protocol code.
EDGE_KINDS = (
    "lock_wait",     # waiter txn -> holder txn (who held the lock I waited on)
    "cpu_queue",     # txn queued behind a saturated CPU (queue depth)
    "refresh_wait",  # snapshot read blocked on lagging replication origins
    "rpc",           # request/reply pairing of one remote call
    "remaster",      # one release->grant chain of Algorithm 1
    "2pc_round",     # ordering of the execute/prepare/decide rounds
)

#: Span name -> attribution category. Innermost-covering-span wins, so
#: e.g. a ``cpu_queue`` sub-span inside ``execute`` takes the queue
#: category while the rest of ``execute`` stays CPU service.
SPAN_CATEGORY: Dict[str, str] = {
    # CPU service: the site actually doing transaction work.
    "begin": "cpu_service",
    "execute": "cpu_service",
    "commit": "cpu_service",
    "branch_execute": "cpu_service",
    "branch_prepare": "cpu_service",
    "branch_commit": "cpu_service",
    "refresh_apply": "cpu_service",
    # Queueing behind a saturated CPU resource.
    "cpu_queue": "cpu_queue",
    # Lock waits: record locks at sites, partition-metadata locks at
    # the selector.
    "lock_wait": "lock_wait",
    "selector_lock": "lock_wait",
    # Wire time.
    "network": "network",
    # The selector's routing round (lookup CPU + decision).
    "route": "rpc_rounds",
    # Remastering: the decision + release/grant protocol.
    "routing": "remaster_wait",
    "release": "remaster_wait",
    "grant": "remaster_wait",
    "release_quiesce": "remaster_wait",
    # Snapshot-freshness blocking on lazy replication.
    "freshness_wait": "refresh_wait",
    # 2PC rounds (coordination, vote collection, uncertainty window).
    "2pc_execute": "commit_protocol",
    "2pc_prepare": "commit_protocol",
    "2pc_decide": "commit_protocol",
}


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One maximal critical-path interval attributed to a category."""

    start: float
    end: float
    category: str
    #: The innermost span covering the interval ("" for gaps).
    span_name: str
    track: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def category_of(span_name: str) -> str:
    return SPAN_CATEGORY.get(span_name, "other")


def critical_path(tracer: Tracer, txn_id: int) -> List[PathSegment]:
    """Partition one transaction's latency into attributed segments.

    The client is closed-loop: from its point of view the transaction
    is a single wait from ``begin`` to ``end``, so the critical path
    *is* that interval — the question is what each slice of it was
    spent on. The sweep walks the union of span boundaries (clamped to
    the envelope) and attributes each elementary slice to the innermost
    covering span's category — latest start wins, earliest end breaks
    ties, which is exactly containment depth for properly nested spans
    and a deterministic pick for the overlapping spans of parallel 2PC
    branches. Slices no span covers become ``other`` (un-instrumented
    queueing, e.g. retry backoff).

    Adjacent same-category/same-span slices are merged. The segment
    durations sum to ``end - begin`` up to float associativity (well
    under the 1e-6 sim-ms bound the tests pin).
    """
    record = tracer.txns.get(txn_id)
    if record is None or record.end is None:
        return []
    begin, end = record.begin, record.end
    if end <= begin:
        return []
    eps = 1e-9
    # Clamp spans to the envelope: crash-severed spans from abandoned
    # attempts may outlive the transaction; the part that overlaps the
    # client's wait still explains that wait.
    spans: List[SpanRecord] = []
    for span in tracer.spans_of(txn_id):
        start = span.start if span.start > begin else begin
        stop = span.end if span.end < end else end
        if stop - start > eps:
            spans.append(SpanRecord(
                span.name, start, stop, span.track, span.txn_id, span.args
            ))
    boundaries = {begin, end}
    for span in spans:
        boundaries.add(span.start)
        boundaries.add(span.end)
    cuts = sorted(boundaries)

    segments: List[PathSegment] = []
    for low, high in zip(cuts, cuts[1:]):
        if high - low <= eps:
            continue
        innermost: Optional[SpanRecord] = None
        for span in spans:
            if span.start <= low + eps and span.end >= high - eps:
                if innermost is None or (span.start, -span.end) > (
                    innermost.start, -innermost.end
                ):
                    innermost = span
        if innermost is None:
            category, name, track = "other", "", ""
        else:
            category = category_of(innermost.name)
            name, track = innermost.name, innermost.track
        previous = segments[-1] if segments else None
        if (
            previous is not None
            and previous.category == category
            and previous.span_name == name
            and previous.track == track
            and abs(previous.end - low) <= eps
        ):
            segments[-1] = PathSegment(previous.start, high, category, name, track)
        else:
            segments.append(PathSegment(low, high, category, name, track))
    return segments


def path_categories(segments: List[PathSegment]) -> Dict[str, float]:
    """Fold a critical path into per-category milliseconds.

    Every category from :data:`CATEGORIES` is present (zero-filled), so
    callers can sum/compare without key checks; the values sum to the
    transaction's latency.
    """
    totals = {category: 0.0 for category in CATEGORIES}
    for segment in segments:
        totals[segment.category] += segment.duration
    return totals
