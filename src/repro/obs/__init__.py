"""Simulation-native observability: tracing, metrics, timelines, export.

One :class:`Observability` object bundles the three instruments of an
observed run:

* :class:`~repro.obs.tracer.Tracer` — per-transaction span trees and
  instant events over the simulated clock;
* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges, and
  streaming log-bucketed histograms;
* :class:`~repro.obs.sampler.TimelineSampler` — periodic per-site
  timelines (CPU, lock depth, replication lag, 2PC in flight).

A fourth, separately attached instrument —
:class:`~repro.obs.slo.SloEngine` — watches the same transaction
stream through windowed SLO monitors and runtime invariant checks,
turning sustained breaches into an :class:`~repro.obs.slo.Incident`
ledger correlated against injected fault windows. Its no-op default is
:data:`~repro.obs.slo.NULL_SLO`.

The default everywhere is :data:`NULL_OBS`, whose tracer is a no-op and
whose sampler never starts: an unobserved run schedules no extra
simulation events and produces bit-identical results to a build without
this package. Protocol code reaches its observability handle through
the simulation environment (``env.obs``), so no constructor threading
is needed.

Design rationale, the full span/instant inventory, and the
zero-overhead guarantee are documented in DESIGN.md §6; the
determinism contract the no-op default upholds is §5, and the AST
guard enforcing it lives in ``tests/test_determinism_guard.py``. Hot
protocol paths check ``tracer.enabled`` once and skip span
construction entirely when unobserved (DESIGN.md §8).
"""

from repro.obs.attribution import (
    AttributionError,
    AttributionReport,
    TxnAttribution,
    diff_reports,
    render_waterfall,
)
from repro.obs.causal import (
    CATEGORIES,
    EDGE_KINDS,
    PathSegment,
    critical_path,
    path_categories,
)
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.export import (
    flame_summary,
    reconcile_with_metrics,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.mastery import (
    NULL_LEDGER,
    CandidateScore,
    DecisionLedger,
    DecisionRecord,
    MastershipTimeline,
    NullLedger,
    OwnershipChange,
    OwnershipInterval,
    RateWindow,
    recompute_decision,
    render_decision,
)
from repro.obs.registry import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.sampler import Timeline, TimelineSampler, attach_cluster_probes
from repro.obs.slo import (
    DEFAULT_SLOS,
    NULL_SLO,
    Incident,
    NullSloEngine,
    SloEngine,
    SloSpec,
    quick_slos,
)
from repro.obs.tracer import (
    NULL_TRACER,
    EdgeRecord,
    InstantRecord,
    NullTracer,
    SpanNode,
    SpanRecord,
    Tracer,
    TxnRecord,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_SLOS",
    "EDGE_KINDS",
    "NULL_LEDGER",
    "NULL_OBS",
    "NULL_SLO",
    "NULL_TRACER",
    "AttributionError",
    "AttributionReport",
    "CandidateScore",
    "Counter",
    "DecisionLedger",
    "DecisionRecord",
    "EdgeRecord",
    "Gauge",
    "Incident",
    "InstantRecord",
    "MastershipTimeline",
    "MetricsRegistry",
    "NullLedger",
    "NullSloEngine",
    "NullTracer",
    "Observability",
    "OwnershipChange",
    "OwnershipInterval",
    "PathSegment",
    "RateWindow",
    "SloEngine",
    "SloSpec",
    "SpanNode",
    "SpanRecord",
    "StreamingHistogram",
    "Timeline",
    "TimelineSampler",
    "Tracer",
    "TxnAttribution",
    "TxnRecord",
    "attach_cluster_probes",
    "critical_path",
    "diff_reports",
    "flame_summary",
    "path_categories",
    "quick_slos",
    "reconcile_with_metrics",
    "recompute_decision",
    "render_dashboard",
    "render_decision",
    "render_waterfall",
    "write_dashboard",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]


class Observability:
    """Tracer + metrics registry + timeline sampler for one run."""

    def __init__(self, tracer=None, registry=None,
                 sample_interval_ms: float = 10.0):
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sampler = TimelineSampler(interval_ms=sample_interval_ms)

    @property
    def enabled(self) -> bool:
        """True when this run is actually being observed."""
        return self.tracer.enabled

    @property
    def timelines(self):
        return self.sampler.timelines

    def observe_cluster(self, cluster) -> None:
        """Install the standard probes and start sampling (if enabled)."""
        if not self.enabled:
            return
        attach_cluster_probes(self.sampler, cluster, registry=self.registry)
        self.sampler.start(cluster.env)


#: Shared no-op handle: tracing disabled, sampler never started. Its
#: registry is real but unused by guarded call sites, so it stays empty.
NULL_OBS = Observability(tracer=NULL_TRACER)
