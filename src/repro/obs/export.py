"""Trace exporters: Chrome trace-event JSON, JSON-lines, flame summary.

``to_chrome_trace`` emits the Trace Event Format understood by both
``chrome://tracing`` and https://ui.perfetto.dev — drop the file into
either and every simulated site becomes a process row with one thread
per transaction, so a run's span trees can be inspected visually.
Timestamps are simulated milliseconds converted to the format's
microseconds.

``to_jsonl`` streams the same records as plain JSON lines for ad-hoc
analysis (one ``span`` / ``instant`` / ``txn`` object per line), and
``flame_summary`` renders a top-N self-time table over the span-tree
paths — a text flamegraph.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Tuple

from repro.obs.tracer import Tracer

__all__ = [
    "flame_summary",
    "reconcile_with_metrics",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

#: tid used for site-level spans that belong to no transaction.
_BACKGROUND_TID = 0
#: pid hosting counter (timeline) tracks.
_METRICS_PID_NAME = "metrics"


def _track_pids(tracer: Tracer, timelines=None) -> Dict[str, int]:
    """Stable track-name -> pid assignment."""
    tracks = {span.track for span in tracer.spans}
    tracks.update(instant.track for instant in tracer.instants)
    tracks.discard("")
    if timelines:
        tracks.add(_METRICS_PID_NAME)
    return {track: pid for pid, track in enumerate(sorted(tracks), start=1)}


def to_chrome_trace(tracer: Tracer, timelines=None) -> Dict[str, object]:
    """Serialize a trace as a Chrome trace-event JSON object.

    ``timelines`` is an optional mapping of name -> Timeline; each
    becomes a counter track. The result is JSON-serializable.
    """
    pids = _track_pids(tracer, timelines)
    events: List[dict] = []
    for track, pid in pids.items():
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": track},
        })
    for span in tracer.spans:
        pid = pids.get(span.track, 0)
        tid = span.txn_id if span.txn_id is not None else _BACKGROUND_TID
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "sim",
            "pid": pid,
            "tid": tid,
            "ts": span.start * 1000.0,
            "dur": span.duration * 1000.0,
            "args": dict(span.args),
        })
    for instant in tracer.instants:
        pid = pids.get(instant.track, 0)
        tid = instant.txn_id if instant.txn_id is not None else _BACKGROUND_TID
        events.append({
            "ph": "i",
            "name": instant.name,
            "cat": "sim",
            "pid": pid,
            "tid": tid,
            "ts": instant.ts * 1000.0,
            "s": "t",
            "args": dict(instant.args),
        })
    if timelines:
        metrics_pid = pids[_METRICS_PID_NAME]
        for name, timeline in sorted(timelines.items()):
            for when, value in timeline.samples:
                events.append({
                    "ph": "C",
                    "name": name,
                    "pid": metrics_pid,
                    "tid": 0,
                    "ts": when * 1000.0,
                    "args": {"value": value},
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str, timelines=None) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, timelines), handle)


def to_jsonl(tracer: Tracer) -> Iterator[str]:
    """Yield one JSON line per trace record (txns, spans, instants)."""
    for record in sorted(tracer.txns.values(), key=lambda r: (r.begin, r.txn_id)):
        yield json.dumps({
            "type": "txn",
            "txn_id": record.txn_id,
            "txn_type": record.txn_type,
            "client_id": record.client_id,
            "begin": record.begin,
            "end": record.end,
            "committed": record.committed,
            "remastered": record.remastered,
            "distributed": record.distributed,
            "recorded": record.recorded,
        }, sort_keys=True)
    for span in tracer.spans:
        yield json.dumps({
            "type": "span",
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "track": span.track,
            "txn_id": span.txn_id,
            "args": dict(span.args),
        }, sort_keys=True)
    for instant in tracer.instants:
        yield json.dumps({
            "type": "instant",
            "name": instant.name,
            "ts": instant.ts,
            "track": instant.track,
            "txn_id": instant.txn_id,
            "args": dict(instant.args),
        }, sort_keys=True)
    for edge in tracer.edges:
        yield json.dumps({
            "type": "edge",
            "kind": edge.kind,
            "ts": edge.ts,
            "txn_id": edge.txn_id,
            "src_txn_id": edge.src_txn_id,
            "track": edge.track,
            "args": dict(edge.args),
        }, sort_keys=True)


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        for line in to_jsonl(tracer):
            handle.write(line + "\n")


def flame_summary(tracer: Tracer, top: int = 20,
                  recorded_only: bool = True) -> str:
    """Top-N span-tree paths by total time — a text flamegraph.

    Paths are rooted at the transaction type (``rmw/route/routing``),
    aggregated across transactions.
    """
    totals: Dict[str, Tuple[float, int]] = {}
    txn_time = 0.0
    txn_count = 0
    for record in tracer.txns.values():
        if recorded_only and not record.recorded:
            continue
        latency = record.latency
        if latency is None:
            continue
        txn_time += latency
        txn_count += 1
        for root in tracer.span_tree(record.txn_id):
            for path, node in root.walk(record.txn_type):
                total, count = totals.get(path, (0.0, 0))
                totals[path] = (total + node.span.duration, count + 1)
    lines = [f"top spans by total time ({txn_count} txns, "
             f"{txn_time:,.1f} ms end-to-end)"]
    if not totals:
        return lines[0] + "\n  (no spans recorded)"
    ranked = sorted(totals.items(), key=lambda item: -item[1][0])[:top]
    if not ranked:
        return lines[0]
    width = max(len(path) for path, _ in ranked)
    for path, (total, count) in ranked:
        share = total / txn_time if txn_time > 0 else 0.0
        lines.append(
            f"  {path.ljust(width)}  {total:>10,.1f} ms  {share:>6.1%}  {count:>6}x"
        )
    return "\n".join(lines)


def reconcile_with_metrics(tracer: Tracer, metrics) -> List[dict]:
    """Compare trace span totals against ``Metrics.phase_totals``.

    For every phase the benchmark metrics accounted (Figure 7's
    breakdown), sum the trace's same-named spans over the same
    transaction population and report both totals plus the relative
    delta. The ``other`` phase (un-instrumented queueing) is derived on
    the trace side the same way Metrics derives it: end-to-end latency
    minus accounted phase time.
    """
    trace_totals = tracer.phase_totals(recorded_only=True)
    phase_names = [name for name in metrics.phase_totals if name != "other"]
    accounted = sum(trace_totals.get(name, 0.0) for name in phase_names)
    derived_other = max(0.0, tracer.recorded_latency_total() - accounted)
    rows = []
    for name in sorted(metrics.phase_totals):
        metric_ms = metrics.phase_totals[name]
        trace_ms = derived_other if name == "other" else trace_totals.get(name, 0.0)
        delta = abs(trace_ms - metric_ms) / metric_ms if metric_ms > 0 else 0.0
        rows.append({
            "phase": name,
            "trace_ms": trace_ms,
            "metrics_ms": metric_ms,
            "delta": delta,
        })
    return rows
