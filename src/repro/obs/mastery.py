"""Mastering observatory: decision ledger, timelines, convergence.

DynaMast's central claim is that adaptive remastering *converges*: the
weighted benefit heuristic (paper §IV-A, Eq. 8) migrates masters toward
workload locality until single-site execution dominates and remastering
becomes rare. The substrate makes those decisions but — before this
module — could not show them: ``repro explain`` attributes latency,
while nothing recorded *why* a write set moved to site S or how
mastership evolved. The :class:`DecisionLedger` closes that gap:

* every remaster decision is recorded with full provenance — the
  triggering transaction, every candidate site's per-feature scores
  (``f_balance``, ``f_refresh_delay``, ``f_intra_txn``,
  ``f_inter_txn``, and ``f_health`` — the health penalty paid under
  health-aware remastering), the active :class:`~repro.core.strategy.
  StrategyWeights`, the per-site health evidence the decision saw,
  the chosen site, the margin over the runner-up, and the partitions
  moved;
* every mastership transfer is an :class:`OwnershipChange`, from which
  :class:`MastershipTimeline` reconstructs per-partition ownership
  intervals;
* every routed update transaction leaves a constant-size route event,
  feeding windowed remaster-rate series, locality share (the paper's
  one-site-execution claim), ping-pong/churn detection, mastership
  entropy, and **convergence time** — how long after run start (or a
  disruption) the windowed remaster rate falls below a steady-state
  threshold and stays there.

The ledger is an inert recorder: it never touches the simulation
environment, schedules no events, and draws no randomness, so a
ledger-observed run is bit-identical in simulated outcome to an
unobserved one (pinned in ``tests/test_mastery.py``). The default
everywhere is :data:`NULL_LEDGER`, whose hooks are no-ops behind a
single ``ledger.enabled`` check, mirroring ``tracer.enabled``
(DESIGN.md §6.6). Exports use schema :data:`SCHEMA`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "NULL_LEDGER",
    "SCHEMA",
    "CandidateScore",
    "DecisionLedger",
    "DecisionRecord",
    "MastershipTimeline",
    "NullLedger",
    "OwnershipChange",
    "OwnershipInterval",
    "RateWindow",
    "load_jsonl",
    "recompute_decision",
    "render_decision",
]

#: Export schema identifier (DESIGN.md §6.6).
SCHEMA = "repro-masters/1"

#: Default steady-state threshold for convergence: the windowed
#: remastered fraction of routed updates must fall to or below this and
#: stay there (the paper reports <3% steady remastering, §VI-B7).
DEFAULT_THRESHOLD = 0.05

#: Tie margin used when recomputing a recorded decision offline —
#: identical to :meth:`repro.core.strategy.RemasterStrategy.decide`.
_TIE_EPS = 1e-12
_TIE_REL = 1e-9


@dataclass(frozen=True, slots=True)
class CandidateScore:
    """One candidate site's recorded feature breakdown."""

    site: int
    f_balance: float
    f_refresh_delay: float
    f_intra_txn: float
    f_inter_txn: float
    benefit: float
    #: Health penalty ``1 - health(site)`` the benefit paid (0.0 for
    #: decisions made without health evidence — the common case).
    f_health: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "site": self.site,
            "f_balance": self.f_balance,
            "f_refresh_delay": self.f_refresh_delay,
            "f_intra_txn": self.f_intra_txn,
            "f_inter_txn": self.f_inter_txn,
            "f_health": self.f_health,
            "benefit": self.benefit,
        }


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One remaster decision with full provenance."""

    seq: int
    at_ms: float
    txn_id: int
    client_id: int
    #: Write-set partitions the triggering transaction routed on.
    partitions: Tuple[int, ...]
    #: Every candidate's per-feature scores (index-aligned with the
    #: candidate set, increasing site id).
    scores: Tuple[CandidateScore, ...]
    #: Active StrategyWeights as (balance, delay, intra_txn, inter_txn,
    #: health).
    weights: Tuple[float, float, float, float, float]
    chosen: int
    runner_up: Optional[int]
    margin: float
    #: Sites tied with the top score (empty when the win was clear).
    tied: Tuple[int, ...]
    #: "clear" | "rng" | "lowest-site" (see RemasterStrategy.decide).
    tie_break: str
    #: Candidate sites excluded by failure handling (crashed/suspected).
    excluded: Tuple[int, ...]
    #: Planned moves as (source site, partitions) groups.
    moves: Tuple[Tuple[int, Tuple[int, ...]], ...]
    partitions_moved: int
    #: Per-site detector health scores the decision saw, index-aligned
    #: over all sites (empty when health-aware remastering was off).
    health: Tuple[float, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "decision",
            "seq": self.seq,
            "at_ms": self.at_ms,
            "txn_id": self.txn_id,
            "client_id": self.client_id,
            "partitions": list(self.partitions),
            "scores": [score.to_dict() for score in self.scores],
            "weights": {
                "balance": self.weights[0],
                "delay": self.weights[1],
                "intra_txn": self.weights[2],
                "inter_txn": self.weights[3],
                "health": self.weights[4],
            },
            "chosen": self.chosen,
            "runner_up": self.runner_up,
            "margin": self.margin,
            "tied": list(self.tied),
            "tie_break": self.tie_break,
            "excluded": list(self.excluded),
            "moves": [[source, list(group)] for source, group in self.moves],
            "partitions_moved": self.partitions_moved,
            "health": list(self.health),
        }


@dataclass(frozen=True, slots=True)
class OwnershipChange:
    """One mastership transfer of one partition."""

    at_ms: float
    partition: int
    source: int
    destination: int
    #: The decision that caused the move (None for moves outside a
    #: recorded decision, which does not happen on current code paths).
    decision_seq: Optional[int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "ownership",
            "at_ms": self.at_ms,
            "partition": self.partition,
            "source": self.source,
            "destination": self.destination,
            "decision_seq": self.decision_seq,
        }


@dataclass(frozen=True, slots=True)
class OwnershipInterval:
    """One partition's ownership by one site over ``[start, end)``.

    ``end`` is None for the final (still-open) interval.
    """

    site: int
    start: float
    end: Optional[float]


@dataclass(frozen=True, slots=True)
class RateWindow:
    """One sliding-window slice of remastering activity."""

    start_ms: float
    #: Update transactions routed in the window.
    routed: int
    #: Routed updates that required at least one move.
    remastered: int
    #: Individual partition moves in the window.
    partitions_moved: int

    @property
    def remaster_fraction(self) -> float:
        """Remastered fraction of routed updates (0.0 when idle)."""
        if self.routed == 0:
            return 0.0
        return self.remastered / self.routed


class NullLedger:
    """The do-nothing ledger; the default everywhere.

    Mirrors :class:`~repro.obs.tracer.NullTracer`: every hook is a
    no-op, and instrumented selector code guards any non-trivial
    argument construction behind ``ledger.enabled``.
    """

    enabled: bool = False

    def record_placement(self, placement: Dict[int, int], now: float) -> None:
        pass

    def route(self, now: float, site: int, moved: int) -> None:
        pass

    def decision(self, now, txn, partitions, decision, weights,
                 moves, excluded=(), health=()) -> Optional[int]:
        return None

    def ownership(self, now: float, partition: int, source: int,
                  destination: int, seq: Optional[int] = None) -> None:
        pass


#: Shared no-op ledger instance (stateless, safe to share globally).
NULL_LEDGER = NullLedger()


class DecisionLedger(NullLedger):
    """Records remaster decisions, ownership changes, and route events.

    Attach to a selector with
    :meth:`~repro.core.site_selector.SiteSelector.attach_ledger`; the
    selector snapshots its initial placement into the ledger and then
    feeds it every routed update, every strategy decision, and every
    mastership transfer. All recording is plain list appends over
    already-computed values — no simulation interaction.
    """

    enabled = True

    def __init__(self):
        self.initial_placement: Dict[int, int] = {}
        self.installed_at: float = 0.0
        #: Simulated end of the observed run; set by the harness so
        #: windowed series cover the whole run, not just the last event.
        self.run_end_ms: Optional[float] = None
        self.num_sites: int = 0
        self.decisions: List[DecisionRecord] = []
        self.changes: List[OwnershipChange] = []
        #: (at_ms, site, partitions_moved) per routed update txn.
        self.routes: List[Tuple[float, int, int]] = []

    # -- recording hooks (called from the site selector) --------------------

    def record_placement(self, placement: Dict[int, int], now: float) -> None:
        """Snapshot the initial partition -> master map at attach time."""
        self.initial_placement = dict(placement)
        self.installed_at = now
        if placement:
            self.num_sites = max(self.num_sites, max(placement.values()) + 1)

    def route(self, now: float, site: int, moved: int) -> None:
        """One routed update transaction (``moved`` partitions moved)."""
        self.routes.append((now, site, moved))
        if site >= self.num_sites:
            self.num_sites = site + 1

    def decision(self, now, txn, partitions, decision, weights,
                 moves, excluded=(), health=()) -> int:
        """Record one strategy decision; returns its ledger sequence id.

        ``decision`` is the :class:`~repro.core.strategy.
        StrategyDecision`; ``moves`` the planned ``(source, partitions)``
        groups; ``excluded`` the candidate sites failure handling
        removed; ``health`` the per-site detector scores the decision
        saw (empty when health-aware remastering is off).
        """
        seq = len(self.decisions)
        moves = tuple((source, tuple(group)) for source, group in moves)
        self.decisions.append(DecisionRecord(
            seq=seq,
            at_ms=now,
            txn_id=txn.txn_id,
            client_id=txn.client_id,
            partitions=tuple(partitions),
            scores=tuple(
                CandidateScore(
                    site=score.site,
                    f_balance=score.balance,
                    f_refresh_delay=score.refresh_delay,
                    f_intra_txn=score.intra_txn,
                    f_inter_txn=score.inter_txn,
                    benefit=score.benefit,
                    f_health=score.health_penalty,
                )
                for score in decision.scores
            ),
            weights=(weights.balance, weights.delay,
                     weights.intra_txn, weights.inter_txn,
                     weights.health),
            chosen=decision.site,
            runner_up=decision.runner_up,
            margin=decision.margin,
            tied=decision.tied,
            tie_break=decision.tie_break,
            excluded=tuple(sorted(excluded)),
            moves=moves,
            partitions_moved=sum(len(group) for _, group in moves),
            health=tuple(health),
        ))
        return seq

    def ownership(self, now: float, partition: int, source: int,
                  destination: int, seq: Optional[int] = None) -> None:
        """Record one partition's mastership transfer."""
        self.changes.append(
            OwnershipChange(now, partition, source, destination, seq)
        )
        if destination >= self.num_sites:
            self.num_sites = destination + 1

    # -- derived structures --------------------------------------------------

    def timeline(self) -> "MastershipTimeline":
        """Reconstruct per-partition ownership intervals."""
        return MastershipTimeline.from_ledger(self)

    def final_placement(self) -> Dict[int, int]:
        """Partition -> master map implied by the recorded history."""
        placement = dict(self.initial_placement)
        for change in self.changes:
            placement[change.partition] = change.destination
        return placement

    # -- totals --------------------------------------------------------------

    @property
    def updates_routed(self) -> int:
        return len(self.routes)

    @property
    def updates_remastered(self) -> int:
        return sum(1 for _, _, moved in self.routes if moved)

    @property
    def partitions_moved(self) -> int:
        return len(self.changes)

    def locality_share(self) -> float:
        """Fraction of routed update txns needing zero moves.

        The paper's one-site-execution claim: near convergence this
        approaches 1.0 (§VI-B7 reports >97%).
        """
        if not self.routes:
            return 0.0
        return 1.0 - self.updates_remastered / len(self.routes)

    # -- windowed series -----------------------------------------------------

    def rate_series(self, window_ms: float, start: float = 0.0,
                    end: Optional[float] = None) -> List[RateWindow]:
        """Windowed routing/remastering activity over ``[start, end)``.

        ``end`` defaults to the last recorded event (route or ownership
        change), rounded up to a whole window.
        """
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        if end is None:
            end = self.run_end_ms
        if end is None:
            last = 0.0
            if self.routes:
                last = max(last, self.routes[-1][0])
            if self.changes:
                last = max(last, self.changes[-1].at_ms)
            end = last + 1e-9
        if end <= start:
            return []
        buckets = max(1, math.ceil((end - start) / window_ms))
        routed = [0] * buckets
        remastered = [0] * buckets
        moved = [0] * buckets
        for at_ms, _site, txn_moved in self.routes:
            if start <= at_ms < end:
                index = int((at_ms - start) // window_ms)
                routed[index] += 1
                if txn_moved:
                    remastered[index] += 1
                    moved[index] += txn_moved
        return [
            RateWindow(start + index * window_ms, routed[index],
                       remastered[index], moved[index])
            for index in range(buckets)
        ]

    def convergence_time(
        self,
        after: float = 0.0,
        threshold: float = DEFAULT_THRESHOLD,
        window_ms: float = 100.0,
        end: Optional[float] = None,
    ) -> Optional[float]:
        """Milliseconds from ``after`` until remastering goes quiet.

        Convergence is reached at the start of the first window at or
        after ``after`` whose remastered fraction of routed updates is
        <= ``threshold`` **and stays** <= for every later window
        through ``end`` (steady state, not a lull). Returns the delay
        from ``after`` to that window start — 0.0 when the very first
        window is already steady — or None if the rate never settles.

        Windows with zero routed updates count as steady (an idle
        system remasters nothing); a run that never routes after
        ``after`` therefore converges immediately.
        """
        windows = [
            window for window in self.rate_series(window_ms, end=end)
            if window.start_ms + window_ms > after
        ]
        if not windows:
            return 0.0
        converged_from: Optional[float] = None
        for window in windows:
            if window.remaster_fraction <= threshold:
                if converged_from is None:
                    converged_from = window.start_ms
            else:
                converged_from = None
        if converged_from is None:
            return None
        return max(0.0, converged_from - after)

    # -- churn / entropy -----------------------------------------------------

    def churn(self, window_ms: Optional[float] = None) -> Dict[int, int]:
        """Ownership changes per partition (optionally only the last
        ``window_ms`` of recorded history)."""
        counts: Dict[int, int] = {}
        cutoff = None
        if window_ms is not None and self.changes:
            cutoff = self.changes[-1].at_ms - window_ms
        for change in self.changes:
            if cutoff is not None and change.at_ms < cutoff:
                continue
            counts[change.partition] = counts.get(change.partition, 0) + 1
        return counts

    def ping_pongs(self) -> Dict[int, int]:
        """Partitions bouncing back to a previous master (A->B->A).

        Returns partition -> bounce count, counting every change whose
        destination equals the partition's previous-but-one master —
        the signature of two workloads fighting over a partition.
        """
        history: Dict[int, List[int]] = {}
        bounces: Dict[int, int] = {}
        for partition, master in self.initial_placement.items():
            history[partition] = [master]
        for change in self.changes:
            owners = history.setdefault(change.partition, [change.source])
            if len(owners) >= 2 and change.destination == owners[-2]:
                bounces[change.partition] = bounces.get(change.partition, 0) + 1
            owners.append(change.destination)
        return bounces

    def entropy(self, placement: Optional[Dict[int, int]] = None) -> float:
        """Normalized Shannon entropy of the mastership distribution.

        0.0 when one site masters everything, 1.0 when partitions are
        spread evenly over all sites. Defaults to the final placement.
        """
        placement = placement if placement is not None else self.final_placement()
        if not placement or self.num_sites <= 1:
            return 0.0
        counts: Dict[int, int] = {}
        for master in placement.values():
            counts[master] = counts.get(master, 0) + 1
        total = len(placement)
        entropy = 0.0
        for count in counts.values():
            share = count / total
            entropy -= share * math.log(share)
        return entropy / math.log(self.num_sites)

    # -- summary -------------------------------------------------------------

    def summary(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        window_ms: float = 100.0,
        end: Optional[float] = None,
    ) -> Dict[str, float]:
        """Scalar mastering metrics, portable across process boundaries.

        This is the dictionary folded into
        :class:`~repro.bench.parallel.RunSummary` for ``--jobs N``
        runs; keep values plain floats.
        """
        convergence = self.convergence_time(
            threshold=threshold, window_ms=window_ms, end=end
        )
        ping_pongs = self.ping_pongs()
        return {
            "decisions": float(len(self.decisions)),
            "updates_routed": float(self.updates_routed),
            "updates_remastered": float(self.updates_remastered),
            "partitions_moved": float(self.partitions_moved),
            "locality_share": round(self.locality_share(), 9),
            "entropy": round(self.entropy(), 9),
            "churn_partitions": float(len(self.churn())),
            "ping_pong_partitions": float(len(ping_pongs)),
            "ping_pong_bounces": float(sum(ping_pongs.values())),
            "convergence_ms": -1.0 if convergence is None else round(convergence, 6),
            "convergence_threshold": threshold,
            "convergence_window_ms": window_ms,
        }

    # -- export --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line: header, decisions, ownership changes.

        The header pins the schema, initial placement, and totals, so a
        reader can reconstruct the full timeline without the live
        ledger (:func:`load_jsonl` round-trips it).
        """
        lines = [json.dumps({
            "kind": "header",
            "schema": SCHEMA,
            "installed_at_ms": self.installed_at,
            "num_sites": self.num_sites,
            "initial_placement": {
                str(partition): master
                for partition, master in sorted(self.initial_placement.items())
            },
            "updates_routed": self.updates_routed,
            "updates_remastered": self.updates_remastered,
            "partitions_moved": self.partitions_moved,
        }, sort_keys=True)]
        for decision in self.decisions:
            lines.append(json.dumps(decision.to_dict(), sort_keys=True))
        for change in self.changes:
            lines.append(json.dumps(change.to_dict(), sort_keys=True))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def to_csv(self, window_ms: float = 100.0,
               end: Optional[float] = None) -> str:
        """The windowed remaster-rate series as CSV."""
        lines = ["start_ms,routed,remastered,partitions_moved,remaster_fraction"]
        for window in self.rate_series(window_ms, end=end):
            lines.append(
                f"{window.start_ms:g},{window.routed},{window.remastered},"
                f"{window.partitions_moved},{window.remaster_fraction:.6f}"
            )
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str, window_ms: float = 100.0,
                  end: Optional[float] = None) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv(window_ms, end=end))

    def to_registry(self, registry, threshold: float = DEFAULT_THRESHOLD,
                    window_ms: float = 100.0,
                    end: Optional[float] = None) -> None:
        """Fold mastering metrics into a MetricsRegistry for Prometheus.

        Counters for decision/route/move volume, gauges for locality
        share, entropy, churn, and convergence time (-1 when the rate
        never settled), exposed through the registry's standard
        ``to_prometheus``.
        """
        summary = self.summary(threshold=threshold, window_ms=window_ms, end=end)
        for name in ("decisions", "updates_routed", "updates_remastered",
                     "partitions_moved"):
            registry.counter(f"repro_masters_{name}_total").inc(int(summary[name]))
        for name in ("locality_share", "entropy", "churn_partitions",
                     "ping_pong_partitions", "ping_pong_bounces",
                     "convergence_ms"):
            registry.gauge(f"repro_masters_{name}").set(summary[name])


class MastershipTimeline:
    """Per-partition ownership intervals reconstructed from a ledger."""

    def __init__(self, intervals: Dict[int, List[OwnershipInterval]]):
        self._intervals = intervals

    @classmethod
    def from_ledger(cls, ledger: DecisionLedger) -> "MastershipTimeline":
        intervals: Dict[int, List[OwnershipInterval]] = {
            partition: [OwnershipInterval(master, ledger.installed_at, None)]
            for partition, master in ledger.initial_placement.items()
        }
        for change in ledger.changes:
            history = intervals.setdefault(
                change.partition,
                [OwnershipInterval(change.source, ledger.installed_at, None)],
            )
            last = history[-1]
            history[-1] = OwnershipInterval(last.site, last.start, change.at_ms)
            history.append(OwnershipInterval(change.destination, change.at_ms, None))
        return cls(intervals)

    def partitions(self) -> List[int]:
        return sorted(self._intervals)

    def intervals(self, partition: int) -> List[OwnershipInterval]:
        return list(self._intervals.get(partition, []))

    def owner_at(self, partition: int, at_ms: float) -> Optional[int]:
        """The site mastering ``partition`` at simulated time ``at_ms``."""
        owner = None
        for interval in self._intervals.get(partition, []):
            if interval.start <= at_ms and (
                interval.end is None or at_ms < interval.end
            ):
                return interval.site
            if interval.start <= at_ms:
                owner = interval.site
        return owner

    def final_placement(self) -> Dict[int, int]:
        """Partition -> last recorded master."""
        return {
            partition: history[-1].site
            for partition, history in self._intervals.items()
            if history
        }

    def moves_of(self, partition: int) -> int:
        return max(0, len(self._intervals.get(partition, [])) - 1)

    def top_movers(self, top: int = 10) -> List[Tuple[int, int]]:
        """(partition, move count) pairs, most-moved first."""
        movers = [
            (partition, self.moves_of(partition))
            for partition in self._intervals
            if self.moves_of(partition) > 0
        ]
        movers.sort(key=lambda item: (-item[1], item[0]))
        return movers[:top]

    def render(self, partition: int, end: Optional[float] = None,
               max_intervals: Optional[int] = None) -> str:
        """One partition's ownership history as a text timeline.

        ``max_intervals`` elides the middle of very churny histories
        (first two and last intervals shown, with an elision count).
        """
        history = self._intervals.get(partition)
        if not history:
            return f"partition {partition}: no recorded ownership"

        def fmt(interval: OwnershipInterval) -> str:
            close = "…" if interval.end is None and end is None else \
                f"{interval.end if interval.end is not None else end:g}"
            return f"site{interval.site}[{interval.start:g}..{close})"

        if max_intervals is not None and len(history) > max_intervals:
            head = max(1, (max_intervals - 1) // 2)
            tail = max(1, max_intervals - 1 - head)
            elided = len(history) - head - tail
            parts = [fmt(interval) for interval in history[:head]]
            parts.append(f"… ({elided} more)")
            parts.extend(fmt(interval) for interval in history[-tail:])
        else:
            parts = [fmt(interval) for interval in history]
        return f"partition {partition}: " + " -> ".join(parts)


# ---------------------------------------------------------------------------
# Offline recomputation and rendering
# ---------------------------------------------------------------------------


def recompute_decision(record) -> Tuple[int, bool]:
    """Replay a recorded decision from its recorded inputs.

    Recomputes every candidate's benefit as the Eq. 8 linear
    combination of the recorded feature scores and weights, applies the
    recorded tie rule, and returns ``(site, consistent)``:

    * with a clear win (no recorded tie), the recomputed argmax must be
      the recorded chosen site and its benefit must match the recorded
      benefit;
    * with a recorded tie, any tied site is a valid winner, so
      consistency means the recorded chosen site is within the
      recomputed tied set (the rng pick itself is a function of the
      run's seed stream, which an offline reader does not have).

    Accepts a :class:`DecisionRecord` or the dict form from
    :func:`load_jsonl`.
    """
    if isinstance(record, DecisionRecord):
        record = record.to_dict()
    weights = record["weights"]
    benefits: Dict[int, float] = {}
    for score in record["scores"]:
        recomputed = (
            weights["balance"] * score["f_balance"]
            - weights["delay"] * score["f_refresh_delay"]
            + weights["intra_txn"] * score["f_intra_txn"]
            + weights["inter_txn"] * score["f_inter_txn"]
            # Health-aware extension; .get keeps pre-extension exports
            # (no health key) recomputable.
            - weights.get("health", 0.0) * score.get("f_health", 0.0)
        )
        if not math.isclose(recomputed, score["benefit"],
                            rel_tol=1e-9, abs_tol=1e-12):
            return score["site"], False
        benefits[score["site"]] = recomputed
    top = max(benefits.values())
    margin = _TIE_EPS + _TIE_REL * abs(top)
    tied = sorted(site for site, benefit in benefits.items()
                  if top - benefit <= margin)
    chosen = record["chosen"]
    if len(tied) > 1:
        return chosen, chosen in tied
    return tied[0], tied[0] == chosen


def load_jsonl(path: str) -> Dict[str, object]:
    """Read a :meth:`DecisionLedger.to_jsonl` export back into dicts.

    Returns ``{"header": ..., "decisions": [...], "changes": [...]}``
    and validates the schema tag.
    """
    header = None
    decisions: List[dict] = []
    changes: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "header":
                if record.get("schema") != SCHEMA:
                    raise ValueError(
                        f"unsupported masters schema {record.get('schema')!r} "
                        f"(expected {SCHEMA})"
                    )
                header = record
            elif kind == "decision":
                decisions.append(record)
            elif kind == "ownership":
                changes.append(record)
            else:
                raise ValueError(f"unknown record kind {kind!r}")
    if header is None:
        raise ValueError(f"{path} has no {SCHEMA} header line")
    return {"header": header, "decisions": decisions, "changes": changes}


def render_decision(record) -> str:
    """A decision's provenance waterfall as aligned text.

    One row per candidate with the four weighted feature contributions
    and the benefit; the chosen site and runner-up are marked, and the
    margin/tie line explains how close the call was.
    """
    if isinstance(record, DecisionRecord):
        record = record.to_dict()
    weights = record["weights"]
    health_weight = weights.get("health", 0.0)
    weight_line = (
        f"weights: balance={weights['balance']:g} delay={weights['delay']:g} "
        f"intra={weights['intra_txn']:g} inter={weights['inter_txn']:g}"
    )
    if health_weight:
        weight_line += f" health={health_weight:g}"
    lines = [
        f"decision #{record['seq']} at {record['at_ms']:g} ms — "
        f"txn {record['txn_id']} (client {record['client_id']}) "
        f"wrote partitions {tuple(record['partitions'])}",
        weight_line,
    ]
    header = (f"  {'site':>4}  {'w*f_balance':>14}  {'-w*f_delay':>12}  "
              f"{'w*f_intra':>11}  {'w*f_inter':>11}")
    if health_weight:
        header += f"  {'-w*f_health':>12}"
    header += f"  {'benefit':>14}"
    lines.append(header)
    for score in record["scores"]:
        mark = ""
        if score["site"] == record["chosen"]:
            mark = "  <- chosen"
        elif score["site"] == record.get("runner_up"):
            mark = "  (runner-up)"
        row = (
            f"  {score['site']:>4}"
            f"  {weights['balance'] * score['f_balance']:>14.6g}"
            f"  {-weights['delay'] * score['f_refresh_delay']:>12.6g}"
            f"  {weights['intra_txn'] * score['f_intra_txn']:>11.6g}"
            f"  {weights['inter_txn'] * score['f_inter_txn']:>11.6g}"
        )
        if health_weight:
            row += f"  {-health_weight * score.get('f_health', 0.0):>12.6g}"
        row += f"  {score['benefit']:>14.6g}{mark}"
        lines.append(row)
    tie = record.get("tie_break", "clear")
    if tie == "clear":
        lines.append(f"margin over runner-up: {record['margin']:.6g}")
    else:
        lines.append(
            f"tie between sites {tuple(record['tied'])} resolved by "
            f"{tie} (margin {record['margin']:.6g})"
        )
    if record.get("excluded"):
        lines.append(f"excluded (crashed/suspected): {tuple(record['excluded'])}")
    if record.get("health"):
        lines.append("site health: " + " ".join(
            f"site{index}={value:.3g}"
            for index, value in enumerate(record["health"])
        ))
    moves = ", ".join(
        f"site{source}->{{{', '.join(str(p) for p in group)}}}"
        for source, group in record["moves"]
    )
    lines.append(
        f"moves: {moves or 'none'} ({record['partitions_moved']} partitions)"
    )
    return "\n".join(lines)
