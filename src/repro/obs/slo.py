"""Streaming SLO engine, runtime invariant monitors, incident ledger.

`repro slo` turns eight PRs of instrumentation into a verdict: *was the
run healthy, and if not, when did it break, who broke it, and how fast
did it recover?* Three cooperating pieces, all evaluated online in
**simulated** time:

* **Windowed SLO monitors.** Declarative :class:`SloSpec` objectives
  (availability, p99 commit latency, abort rate, goodput/offered
  ratio, remaster rate, admission-shed rate) are evaluated over
  tumbling event-time windows. An alert needs a *burn*: both the
  current window and the aggregate of the last ``long_windows``
  windows must breach (multi-window burn-rate alerting), and an open
  incident only clears after ``clear_windows`` consecutive clean data
  windows (hysteresis). Breaches become :class:`Incident` records with
  onset, clear, peak severity, and blamed sites.

* **Runtime invariant monitors** (Derecho runtime-checking style).
  Properties the test suite only checks post-hoc are re-checked at
  every window boundary against live cluster state: single-master-
  per-partition ownership, admission-queue conservation
  (``offered == admitted + shed``), epoch-fenced replay monotonicity
  of the site version vectors, and detector/quarantine sanity.
  Violations become first-class ``kind="invariant"`` incidents —
  never asserts — so a production-style run keeps going and the
  dashboard shows exactly when the protocol misbehaved.

* **Fault correlation.** At :meth:`SloEngine.finalize` the incident
  stream is joined against the injector's ground-truth fault windows
  (:func:`repro.faults.plan.fault_windows`), coalesced into spans:
  per-span detection latency (MTTD), recovery time (MTTR), and run
  totals for true positives / false positives / missed faults.

Determinism contract: the engine is a *passive recorder*, exactly like
the tracer and the mastery ledger. It schedules no simulation events,
consumes no randomness, and mutates no simulated state — it reads the
cluster only through pure accessors (``site.alive``, ``len(queue)``,
``detector.suspected`` — never ``is_suspected``, which re-evaluates
phi and may mutate suspicion state). Unobserved runs pay one
``slo_engine is None`` check per recorded transaction, and an
SLO-observed run's simulated results are bit-identical to an
unobserved one (pinned by tests and the ``slo-smoke`` CI job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

SCHEMA = "repro-slo/1"

#: Metric keys an :class:`SloSpec` may evaluate.
METRICS = (
    "availability", "abort_rate", "p99_latency_ms",
    "goodput_ratio", "shed_rate", "remaster_rate", "site_liveness",
)

#: Incidents with onset within this long after a fault span ends are
#: still attributed to it (recovery tail), not counted false positive.
DEFAULT_GRACE_MS = 2000.0

#: Ground-truth fault windows closer together than this merge into one
#: span — a flapping site is one outage, not eight.
DEFAULT_MERGE_GAP_MS = 1000.0


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    Exactly one of ``target`` (absolute threshold) or
    ``baseline_factor`` (relative: threshold = ``max(floor, factor *
    median of the first ``baseline_windows`` healthy data windows)``)
    must be given. ``bound`` says which side of the threshold is bad.
    A window only counts as evidence when it holds at least
    ``min_samples`` samples of the metric's denominator — small
    windows neither breach nor clear.
    """

    name: str
    metric: str
    bound: str = "upper"
    target: Optional[float] = None
    baseline_factor: Optional[float] = None
    floor: float = 0.0
    baseline_windows: int = 4
    long_windows: int = 4
    clear_windows: int = 2
    min_samples: int = 5
    description: str = ""

    def __post_init__(self):
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; expected one of {METRICS}"
            )
        if self.bound not in ("upper", "lower"):
            raise ValueError(f"bound must be 'upper' or 'lower', got {self.bound!r}")
        if (self.target is None) == (self.baseline_factor is None):
            raise ValueError(
                f"SLO {self.name!r} needs exactly one of target / baseline_factor"
            )
        if self.long_windows < 1 or self.clear_windows < 1 or self.min_samples < 1:
            raise ValueError(
                f"SLO {self.name!r}: window counts and min_samples must be >= 1"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "metric": self.metric, "bound": self.bound,
            "target": self.target, "baseline_factor": self.baseline_factor,
            "floor": self.floor, "baseline_windows": self.baseline_windows,
            "long_windows": self.long_windows, "clear_windows": self.clear_windows,
            "min_samples": self.min_samples,
        }


#: The stock objectives `repro slo` / `repro chaos --slo` evaluate.
#: Absolute targets guard the objectives with natural scales;
#: latency/remaster objectives self-calibrate against the run's own
#: healthy baseline (first ``baseline_windows`` data windows), with a
#: floor so a sub-millisecond baseline cannot make noise alertable.
#: The goodput/shed objectives only produce data on open-loop runs
#: (closed-loop runs have no offered-load denominator).
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    SloSpec("availability", metric="availability", bound="lower", target=0.75,
            description="committed / (committed + aborted) per window"),
    SloSpec("abort_rate", metric="abort_rate", bound="upper", target=0.25,
            description="aborted / (committed + aborted) per window"),
    SloSpec("p99_commit_latency", metric="p99_latency_ms", bound="upper",
            baseline_factor=3.0, floor=5.0,
            description="p99 commit latency (ms) vs 3x healthy baseline"),
    SloSpec("goodput_ratio", metric="goodput_ratio", bound="lower", target=0.5,
            description="commits / offered arrivals per window (open loop)"),
    SloSpec("shed_rate", metric="shed_rate", bound="upper", target=0.1,
            description="shed / offered arrivals per window (open loop)"),
    SloSpec("remaster_rate", metric="remaster_rate", bound="upper",
            baseline_factor=4.0, floor=0.25,
            description="remastered / committed per window vs 4x baseline"),
    # A crashed replica is an incident even when failover is so fast
    # the service-level objectives never blip (the paper's fast-
    # failover story): full replica liveness is itself an objective.
    # min_samples=1 (the sample count is the site count) and single-
    # window burn/clear — site death is not noise.
    SloSpec("site_liveness", metric="site_liveness", bound="lower", target=1.0,
            long_windows=1, clear_windows=1, min_samples=1,
            description="fraction of data sites alive at window close"),
)


@dataclass
class Incident:
    """One contiguous objective breach or invariant violation."""

    objective: str
    kind: str = "slo"  # "slo" | "invariant"
    onset_ms: float = 0.0
    #: ``None`` means still open at end of run.
    clear_ms: Optional[float] = None
    threshold: float = 0.0
    peak_value: float = 0.0
    #: Breach magnitude at the worst window: value/threshold for upper
    #: bounds, threshold/value for lower bounds (capped at 1000).
    peak_severity: float = 0.0
    blamed_sites: Tuple[int, ...] = ()
    detail: str = ""

    def duration_ms(self, run_end_ms: float) -> float:
        end = self.clear_ms if self.clear_ms is not None else run_end_ms
        return max(0.0, end - self.onset_ms)

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective, "kind": self.kind,
            "onset_ms": round(self.onset_ms, 6),
            "clear_ms": None if self.clear_ms is None else round(self.clear_ms, 6),
            "threshold": round(self.threshold, 9),
            "peak_value": round(self.peak_value, 9),
            "peak_severity": round(self.peak_severity, 6),
            "blamed_sites": list(self.blamed_sites),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Incident":
        return cls(
            objective=data["objective"], kind=data.get("kind", "slo"),
            onset_ms=data["onset_ms"], clear_ms=data.get("clear_ms"),
            threshold=data.get("threshold", 0.0),
            peak_value=data.get("peak_value", 0.0),
            peak_severity=data.get("peak_severity", 0.0),
            blamed_sites=tuple(data.get("blamed_sites", ())),
            detail=data.get("detail", ""),
        )


class _Window:
    """Accumulator for one event-time tumbling window."""

    __slots__ = ("start", "end", "commits", "aborts", "remastered",
                 "latencies", "offered", "shed", "sites_alive", "sites_total")

    def __init__(self, start: float, end: float):
        self.start = start
        self.end = end
        self.commits = 0
        self.aborts = 0
        self.remastered = 0
        self.latencies: List[float] = []
        self.offered = 0
        self.shed = 0
        self.sites_alive = 0
        self.sites_total = 0


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a pre-sorted sample (metrics.py rule)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _evaluate(metric: str, windows: Sequence[_Window]) -> Tuple[Optional[float], int]:
    """(value, sample count) of ``metric`` over ``windows``.

    ``None`` value means the windows hold no data for this metric
    (e.g. a goodput ratio on a closed-loop run, or a p99 with zero
    commits) — such windows neither breach nor clear.
    """
    commits = sum(w.commits for w in windows)
    aborts = sum(w.aborts for w in windows)
    if metric == "availability" or metric == "abort_rate":
        total = commits + aborts
        if total == 0:
            return None, 0
        value = commits / total if metric == "availability" else aborts / total
        return value, total
    if metric == "p99_latency_ms":
        samples: List[float] = []
        for w in windows:
            samples.extend(w.latencies)
        if not samples:
            return None, 0
        samples.sort()
        return _percentile(samples, 0.99), len(samples)
    if metric == "remaster_rate":
        if commits == 0:
            return None, 0
        return sum(w.remastered for w in windows) / commits, commits
    if metric == "site_liveness":
        total = sum(w.sites_total for w in windows)
        if total == 0:
            return None, 0
        return sum(w.sites_alive for w in windows) / total, total
    offered = sum(w.offered for w in windows)
    if offered <= 0:
        return None, 0
    if metric == "goodput_ratio":
        return commits / offered, offered
    if metric == "shed_rate":
        return sum(w.shed for w in windows) / offered, offered
    raise ValueError(f"unknown SLO metric {metric!r}")


class _SloState:
    """Evaluation state of one :class:`SloSpec` across the run."""

    def __init__(self, spec: SloSpec):
        self.spec = spec
        #: Armed threshold; ``None`` until the baseline is calibrated.
        self.threshold: Optional[float] = spec.target
        self._baseline: List[float] = []
        self.open: Optional[Incident] = None
        self.clean_streak = 0
        self.windows_evaluated = 0
        self.breached_windows = 0
        self.incident_count = 0
        #: (window start, value, threshold, samples, breached) per
        #: closed window — the dashboard/JSONL timeline.
        self.series: List[Tuple[float, Optional[float], Optional[float], int, bool]] = []

    def _breaches(self, value: float) -> bool:
        if self.spec.bound == "upper":
            return value > self.threshold
        return value < self.threshold

    def _severity(self, value: float) -> float:
        if self.spec.bound == "upper":
            severity = value / self.threshold if self.threshold > 0 else 1000.0
        else:
            severity = self.threshold / value if value > 0 else 1000.0
        return min(1000.0, severity)

    def close(
        self,
        window: _Window,
        recent: Sequence[_Window],
        blame: Callable[[], Tuple[int, ...]],
    ) -> Optional[Incident]:
        """Fold one closed window; returns a newly opened incident."""
        spec = self.spec
        value, samples = _evaluate(spec.metric, (window,))
        has_data = value is not None and samples >= spec.min_samples
        if self.threshold is None:
            # Calibration phase: collect healthy-baseline windows.
            if has_data:
                self._baseline.append(value)
                if len(self._baseline) >= spec.baseline_windows:
                    ordered = sorted(self._baseline)
                    median = _percentile(ordered, 0.5)
                    self.threshold = max(spec.floor, median * spec.baseline_factor)
            self.series.append((window.start, value, None, samples, False))
            return None
        short_breach = has_data and self._breaches(value)
        self.windows_evaluated += 1
        if short_breach:
            self.breached_windows += 1
        self.series.append((window.start, value, self.threshold, samples, short_breach))
        opened: Optional[Incident] = None
        if self.open is not None:
            if short_breach:
                self.clean_streak = 0
                severity = self._severity(value)
                if severity > self.open.peak_severity:
                    self.open.peak_severity = severity
                    self.open.peak_value = value
            elif has_data:
                self.clean_streak += 1
                if self.clean_streak >= spec.clear_windows:
                    self.open.clear_ms = window.end
                    self.open = None
                    self.clean_streak = 0
        elif short_breach:
            # Burn-rate gate: the long horizon must breach too, so a
            # single noisy window cannot open an incident.
            long_value, long_samples = _evaluate(
                spec.metric, recent[-spec.long_windows:]
            )
            long_breach = (
                long_value is not None
                and long_samples >= spec.min_samples
                and self._breaches(long_value)
            )
            if long_breach:
                severity = self._severity(value)
                opened = Incident(
                    objective=spec.name, kind="slo", onset_ms=window.end,
                    threshold=self.threshold, peak_value=value,
                    peak_severity=severity, blamed_sites=blame(),
                    detail=(
                        f"{spec.metric}={value:.6g} "
                        f"{'>' if spec.bound == 'upper' else '<'} "
                        f"{self.threshold:.6g} over {spec.long_windows}-window burn"
                    ),
                )
                self.open = opened
                self.incident_count += 1
                self.clean_streak = 0
        return opened


def _coalesce(
    windows: Sequence[Tuple[str, int, float, float]], gap_ms: float
) -> List[Dict[str, object]]:
    """Merge (kind, site, start, end) fault windows into spans."""
    spans: List[Dict[str, object]] = []
    for kind, site, start, end in windows:
        if spans and start <= spans[-1]["end_ms"] + gap_ms:
            last = spans[-1]
            last["end_ms"] = max(last["end_ms"], end)
            last["kinds"].add(kind)
            last["sites"].add(site)
        else:
            spans.append({
                "start_ms": start, "end_ms": end,
                "kinds": {kind}, "sites": {site},
            })
    return spans


class NullSloEngine:
    """No-op stand-in so call sites never branch.

    Mirrors :class:`~repro.obs.mastery.NullLedger`: the harness guards
    attachment behind a single ``slo.enabled`` check, and the hot-path
    hook in :meth:`~repro.bench.metrics.Metrics.record` costs one
    ``is None`` test when no engine is attached.
    """

    enabled: bool = False
    window_ms: float = 0.0
    specs: Tuple[SloSpec, ...] = ()
    run_end_ms: Optional[float] = None
    correlation: List[Dict[str, object]] = []

    def install(self, system, *, injector=None, queues=(),
                duration_ms: float = 0.0, warmup_ms: float = 0.0) -> None:
        return None

    def observe_txn(self, txn, outcome, latency_ms: float, now: float) -> None:
        return None

    def finalize(self, duration_ms: float) -> None:
        return None

    @property
    def incidents(self) -> List[Incident]:
        return []

    @property
    def violations(self) -> List[Incident]:
        return []

    @property
    def false_positives(self) -> List[Incident]:
        return []

    def summary(self) -> Dict[str, float]:
        return {}


#: Shared no-op engine (stateless, so one instance serves every run).
NULL_SLO = NullSloEngine()


class SloEngine(NullSloEngine):
    """The live streaming SLO/invariant engine for one run."""

    enabled = True

    def __init__(
        self,
        specs: Sequence[SloSpec] = DEFAULT_SLOS,
        window_ms: float = 250.0,
        merge_gap_ms: float = DEFAULT_MERGE_GAP_MS,
        grace_ms: float = DEFAULT_GRACE_MS,
    ):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.specs = tuple(specs)
        self.window_ms = float(window_ms)
        self.merge_gap_ms = float(merge_gap_ms)
        self.grace_ms = float(grace_ms)
        self._states = [_SloState(spec) for spec in self.specs]
        self._incidents: List[Incident] = []
        self._violations: List[Incident] = []
        self._false_positives: List[Incident] = []
        self._open_violations: Dict[str, Incident] = {}
        self._recent: List[_Window] = []
        self._recent_cap = max(
            [spec.long_windows for spec in self.specs], default=1
        )
        self._window: Optional[_Window] = None
        self.windows_closed = 0
        self.run_end_ms: Optional[float] = None
        self.correlation: List[Dict[str, object]] = []
        # Live-cluster handles (pure-read only; set by install()).
        self.sites: Sequence = ()
        self.selector = None
        self.injector = None
        self.queues: Sequence = ()
        self.duration_ms = 0.0
        self.warmup_ms = 0.0
        self._offered_seen = 0
        self._shed_seen = 0
        self._svv_marks: Dict[int, Tuple[int, List[int]]] = {}
        self._episodes_seen = 0
        self._finalized = False

    # -- wiring ------------------------------------------------------------

    def install(self, system, *, injector=None, queues=(),
                duration_ms: float = 0.0, warmup_ms: float = 0.0) -> None:
        """Point the engine at a built system before the run starts.

        Holds references only — nothing is scheduled, registered, or
        mutated. The harness drives observations through
        ``metrics.slo_engine`` and calls :meth:`finalize` after
        ``env.run`` returns.
        """
        self.sites = list(system.sites)
        self.selector = getattr(system, "selector", None)
        self.injector = injector
        self.queues = list(queues)
        self.duration_ms = float(duration_ms)
        self.warmup_ms = float(warmup_ms)
        self._window = _Window(self.warmup_ms, self.warmup_ms + self.window_ms)

    # -- observation stream ------------------------------------------------

    def observe_txn(self, txn, outcome, latency_ms: float, now: float) -> None:
        """Fold one recorded transaction completion (committed or not)."""
        window = self._window
        if window is None:
            return
        while now >= window.end:
            self._close_window(window)
            window = self._window
        if outcome.committed:
            window.commits += 1
            window.latencies.append(latency_ms)
            if outcome.remastered:
                window.remastered += 1
        else:
            window.aborts += 1

    def finalize(self, duration_ms: float) -> None:
        """Close trailing windows, then correlate against ground truth."""
        if self._finalized:
            return
        window = self._window
        if window is not None:
            while window.end <= duration_ms:
                self._close_window(window)
                window = self._window
            if window.start < duration_ms:
                window.end = duration_ms
                self._close_window(window)
            self._window = None
        self.run_end_ms = duration_ms
        self._correlate(duration_ms)
        self._finalized = True

    def _close_window(self, window: _Window) -> None:
        # Stamp cluster liveness as of the close (pure reads).
        window.sites_total = len(self.sites)
        window.sites_alive = sum(1 for site in self.sites if site.alive)
        # Attribute admission-counter deltas to the closing window.
        if self.queues:
            offered = sum(q.offered for q in self.queues)
            shed = sum(q.shed for q in self.queues)
            window.offered = offered - self._offered_seen
            window.shed = shed - self._shed_seen
            self._offered_seen, self._shed_seen = offered, shed
        self._recent.append(window)
        if len(self._recent) > self._recent_cap:
            del self._recent[0]
        self._check_invariants(window.end)
        for state in self._states:
            opened = state.close(window, self._recent, self._blame)
            if opened is not None:
                self._incidents.append(opened)
        self.windows_closed += 1
        self._window = _Window(window.end, window.end + self.window_ms)

    # -- blame -------------------------------------------------------------

    def _blame(self) -> Tuple[int, ...]:
        """Best-effort culprit sites at incident onset: dead sites,
        else detector-suspected sites, else the deepest admission
        queue's site."""
        down = tuple(site.index for site in self.sites if not site.alive)
        if down:
            return down
        if self.injector is not None:
            limit = len(self.sites)
            # .suspected (a copy) — never is_suspected(), which
            # re-evaluates phi and can change detector state.
            suspected = tuple(sorted(
                s for s in self.injector.detector.suspected if 0 <= s < limit
            ))
            if suspected:
                return suspected
        if self.queues:
            depths = [len(q) for q in self.queues]
            deepest = max(depths)
            if deepest > 0:
                return (depths.index(deepest),)
        return ()

    # -- runtime invariants ------------------------------------------------

    def _check_invariants(self, now: float) -> None:
        self._report_invariant("single_master", self._single_master_detail(), now)
        self._report_invariant(
            "admission_conservation", self._admission_detail(), now
        )
        self._report_invariant("replay_monotonic", self._replay_detail(), now)
        self._report_invariant("detector_sanity", self._detector_detail(), now)

    def _report_invariant(
        self,
        name: str,
        finding: Optional[Tuple[str, Tuple[int, ...]]],
        now: float,
    ) -> None:
        open_incident = self._open_violations.get(name)
        if finding is None:
            if open_incident is not None:
                open_incident.clear_ms = now
                del self._open_violations[name]
            return
        if open_incident is not None:
            return  # still violated; one incident spans the episode
        detail, sites = finding
        incident = Incident(
            objective=f"invariant:{name}", kind="invariant", onset_ms=now,
            threshold=0.0, peak_value=1.0, peak_severity=1000.0,
            blamed_sites=sites, detail=detail,
        )
        self._violations.append(incident)
        self._open_violations[name] = incident

    def _single_master_detail(self) -> Optional[Tuple[str, Tuple[int, ...]]]:
        owners: Dict[int, List[int]] = {}
        for site in self.sites:
            if not site.alive:
                continue
            for partition in site.mastered:
                owners.setdefault(partition, []).append(site.index)
        duplicated = sorted(
            (partition, tuple(holders))
            for partition, holders in owners.items() if len(holders) > 1
        )
        if duplicated:
            partition, holders = duplicated[0]
            more = f" (+{len(duplicated) - 1} more)" if len(duplicated) > 1 else ""
            return (
                f"partition {partition} mastered at live sites "
                f"{list(holders)}{more}",
                holders,
            )
        if self.selector is not None:
            limit = len(self.sites)
            for partition, master in sorted(self.selector.table.snapshot().items()):
                if not 0 <= master < limit:
                    return (
                        f"selector maps partition {partition} to "
                        f"invalid site {master}",
                        (),
                    )
        return None

    def _admission_detail(self) -> Optional[Tuple[str, Tuple[int, ...]]]:
        for index, queue in enumerate(self.queues):
            backlog = len(queue)
            if queue.offered != queue.admitted + queue.shed:
                return (
                    f"queue {index}: offered {queue.offered} != admitted "
                    f"{queue.admitted} + shed {queue.shed}",
                    (index,),
                )
            if queue.admitted != queue.taken + backlog:
                return (
                    f"queue {index}: admitted {queue.admitted} != taken "
                    f"{queue.taken} + backlog {backlog}",
                    (index,),
                )
        return None

    def _replay_detail(self) -> Optional[Tuple[str, Tuple[int, ...]]]:
        finding = None
        for site in self.sites:
            if not site.alive:
                # A dead site's vector is meaningless; its epoch bumps
                # on crash, so the next mark starts a fresh baseline.
                self._svv_marks.pop(site.index, None)
                continue
            snapshot = [site.svv[origin] for origin in range(site.num_sites)]
            mark = self._svv_marks.get(site.index)
            if finding is None and mark is not None and mark[0] == site.epoch:
                for origin, (previous, seen) in enumerate(zip(mark[1], snapshot)):
                    if seen < previous:
                        finding = (
                            f"site {site.index} svv[{origin}] regressed "
                            f"{previous} -> {seen} within epoch {site.epoch}",
                            (site.index,),
                        )
                        break
            self._svv_marks[site.index] = (site.epoch, snapshot)
        return finding

    def _detector_detail(self) -> Optional[Tuple[str, Tuple[int, ...]]]:
        if self.injector is None:
            return None
        detector = self.injector.detector
        episodes = detector.suspicion_episodes
        if detector.false_suspicions > episodes:
            return (
                f"false_suspicions {detector.false_suspicions} > "
                f"suspicion_episodes {episodes}",
                (),
            )
        if episodes < self._episodes_seen:
            return (
                f"suspicion_episodes regressed {self._episodes_seen} -> {episodes}",
                (),
            )
        self._episodes_seen = episodes
        limit = len(self.sites)
        unknown = sorted(
            s for s in detector.suspected if not 0 <= s < limit
        )
        if unknown:
            return (f"detector suspects unknown site {unknown[0]}", ())
        return None

    # -- ground-truth correlation ------------------------------------------

    def _correlate(self, duration_ms: float) -> None:
        # Imported lazily: repro.faults pulls in the simulation core,
        # which imports repro.obs — a module-level import would cycle.
        from repro.faults.plan import fault_windows

        plan = self.injector.plan if self.injector is not None else None
        spans: List[Dict[str, object]] = []
        if plan is not None and not plan.empty:
            spans = _coalesce(
                fault_windows(plan, duration_ms), self.merge_gap_ms
            )
        self.correlation = []
        matched: Set[int] = set()
        for span in spans:
            hits: List[int] = []
            for index, incident in enumerate(self._incidents):
                incident_end = (
                    incident.clear_ms if incident.clear_ms is not None
                    else duration_ms
                )
                if (incident.onset_ms <= span["end_ms"] + self.grace_ms
                        and incident_end >= span["start_ms"]):
                    hits.append(index)
            detection = None
            recovery = None
            if hits:
                matched.update(hits)
                onset = min(self._incidents[i].onset_ms for i in hits)
                detection = max(0.0, onset - span["start_ms"])
                clears = [self._incidents[i].clear_ms for i in hits]
                if all(clear is not None for clear in clears):
                    recovery = max(0.0, max(clears) - span["start_ms"])
            self.correlation.append({
                "kinds": sorted(span["kinds"]),
                "sites": sorted(span["sites"]),
                "start_ms": round(span["start_ms"], 6),
                "end_ms": round(span["end_ms"], 6),
                "detected": bool(hits),
                "detection_ms": None if detection is None else round(detection, 6),
                "recovery_ms": None if recovery is None else round(recovery, 6),
                "incidents": [self._incidents[i].objective for i in hits],
            })
        if spans:
            self._false_positives = [
                incident for index, incident in enumerate(self._incidents)
                if index not in matched
            ]
        else:
            # No injected faults: any SLO incident is by definition a
            # false positive.
            self._false_positives = list(self._incidents)

    # -- results -----------------------------------------------------------

    @property
    def incidents(self) -> List[Incident]:
        """SLO-objective incidents, in onset order."""
        return list(self._incidents)

    @property
    def violations(self) -> List[Incident]:
        """Runtime-invariant incidents, in onset order."""
        return list(self._violations)

    @property
    def false_positives(self) -> List[Incident]:
        """SLO incidents unexplained by any ground-truth fault span."""
        return list(self._false_positives)

    def objective_rows(self) -> List[Dict[str, object]]:
        """Per-objective evaluation summary (for reports/dashboard)."""
        rows = []
        for state in self._states:
            rows.append({
                "objective": state.spec.name,
                "metric": state.spec.metric,
                "bound": state.spec.bound,
                "threshold": state.threshold,
                "windows": state.windows_evaluated,
                "breached_windows": state.breached_windows,
                "incidents": state.incident_count,
            })
        return rows

    def window_series(self) -> Dict[str, List[Tuple[float, Optional[float],
                                                    Optional[float], int, bool]]]:
        """objective -> (start, value, threshold, samples, breached) series."""
        return {state.spec.name: list(state.series) for state in self._states}

    def summary(self) -> Dict[str, float]:
        """Scalar verdict, portable across process boundaries.

        This is the dictionary folded into
        :class:`~repro.bench.parallel.RunSummary` for ``--jobs N``
        runs; keep values plain floats. ``-1.0`` means "not
        applicable" (no detected/recovered fault spans), mirroring the
        mastery ledger's ``convergence_ms`` convention.
        """
        detected = [span for span in self.correlation if span["detected"]]
        mttd = [span["detection_ms"] for span in detected]
        mttr = [
            span["recovery_ms"] for span in detected
            if span["recovery_ms"] is not None
        ]
        true_positives = len(self._incidents) - len(self._false_positives)
        return {
            "incidents": float(len(self._incidents)),
            "violations": float(len(self._violations)),
            "true_positives": float(true_positives),
            "false_positives": float(len(self._false_positives)),
            "fault_spans": float(len(self.correlation)),
            "detected_spans": float(len(detected)),
            "missed_faults": float(len(self.correlation) - len(detected)),
            "mttd_mean_ms": -1.0 if not mttd else round(sum(mttd) / len(mttd), 6),
            "mttr_mean_ms": -1.0 if not mttr else round(sum(mttr) / len(mttr), 6),
            "windows_evaluated": float(self.windows_closed),
        }

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The ``repro-slo/1`` JSONL document: header, incidents,
        violations, fault spans, then per-objective window series."""
        header = {"schema": SCHEMA, "window_ms": self.window_ms,
                  "run_end_ms": self.run_end_ms,
                  "specs": [spec.to_dict() for spec in self.specs]}
        header.update(self.summary())
        lines = [json.dumps(header, sort_keys=True)]
        for incident in self._incidents:
            record = {"type": "incident"}
            record.update(incident.to_dict())
            lines.append(json.dumps(record, sort_keys=True))
        for violation in self._violations:
            record = {"type": "violation"}
            record.update(violation.to_dict())
            lines.append(json.dumps(record, sort_keys=True))
        for span in self.correlation:
            record = {"type": "span"}
            record.update(span)
            lines.append(json.dumps(record, sort_keys=True))
        for state in self._states:
            for start, value, threshold, samples, breached in state.series:
                lines.append(json.dumps({
                    "type": "window", "objective": state.spec.name,
                    "start_ms": round(start, 6),
                    "value": None if value is None else round(value, 9),
                    "threshold": None if threshold is None else round(threshold, 9),
                    "samples": samples, "breach": breached,
                }, sort_keys=True))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    def to_csv(self) -> str:
        """Incidents + violations as CSV (one row per incident)."""
        lines = ["kind,objective,onset_ms,clear_ms,duration_ms,threshold,"
                 "peak_value,peak_severity,blamed_sites,detail"]
        run_end = self.run_end_ms if self.run_end_ms is not None else 0.0
        for incident in list(self._incidents) + list(self._violations):
            clear = "" if incident.clear_ms is None else f"{incident.clear_ms:.6f}"
            detail = incident.detail.replace('"', "'")
            lines.append(
                f"{incident.kind},{incident.objective},"
                f"{incident.onset_ms:.6f},{clear},"
                f"{incident.duration_ms(run_end):.6f},"
                f"{incident.threshold:.9g},{incident.peak_value:.9g},"
                f"{incident.peak_severity:.6g},"
                f"{'|'.join(str(s) for s in incident.blamed_sites)},"
                f"\"{detail}\""
            )
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv())

    def to_prometheus(self, labels: Optional[Dict[str, str]] = None) -> str:
        """Prometheus text exposition of the verdict counters."""
        from repro.obs.registry import (
            _format_labels,
            _format_value,
            _merge_labels,
        )

        lines: List[str] = []
        per_objective: Dict[str, int] = {}
        for incident in self._incidents:
            per_objective[incident.objective] = (
                per_objective.get(incident.objective, 0) + 1
            )
        lines.append("# TYPE repro_slo_incidents_total counter")
        for objective in sorted(per_objective):
            merged = _merge_labels(labels, {"objective": objective})
            lines.append(
                f"repro_slo_incidents_total{_format_labels(merged)} "
                f"{per_objective[objective]}"
            )
        if not per_objective:
            merged = _merge_labels(labels, {})
            lines.append(f"repro_slo_incidents_total{_format_labels(merged)} 0")
        per_invariant: Dict[str, int] = {}
        for violation in self._violations:
            per_invariant[violation.objective] = (
                per_invariant.get(violation.objective, 0) + 1
            )
        lines.append("# TYPE repro_slo_violations_total counter")
        for objective in sorted(per_invariant):
            merged = _merge_labels(labels, {"invariant": objective})
            lines.append(
                f"repro_slo_violations_total{_format_labels(merged)} "
                f"{per_invariant[objective]}"
            )
        if not per_invariant:
            merged = _merge_labels(labels, {})
            lines.append(f"repro_slo_violations_total{_format_labels(merged)} 0")
        summary = self.summary()
        for key in ("true_positives", "false_positives", "fault_spans",
                    "detected_spans", "missed_faults", "mttd_mean_ms",
                    "mttr_mean_ms", "windows_evaluated"):
            lines.append(f"# TYPE repro_slo_{key} gauge")
            merged = _merge_labels(labels, {})
            lines.append(
                f"repro_slo_{key}{_format_labels(merged)} "
                f"{_format_value(summary[key])}"
            )
        return "\n".join(lines) + "\n"


def load_jsonl(path: str) -> Dict[str, object]:
    """Parse a ``repro-slo/1`` JSONL export back into plain data."""
    header: Optional[Dict[str, object]] = None
    incidents: List[Dict[str, object]] = []
    violations: List[Dict[str, object]] = []
    spans: List[Dict[str, object]] = []
    windows: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if header is None:
                if record.get("schema") != SCHEMA:
                    raise ValueError(
                        f"not a {SCHEMA} file: schema={record.get('schema')!r}"
                    )
                header = record
                continue
            kind = record.pop("type", None)
            if kind == "incident":
                incidents.append(record)
            elif kind == "violation":
                violations.append(record)
            elif kind == "span":
                spans.append(record)
            elif kind == "window":
                windows.append(record)
            else:
                raise ValueError(f"unknown record type {kind!r}")
    if header is None:
        raise ValueError(f"empty file: {path}")
    return {"header": header, "incidents": incidents,
            "violations": violations, "spans": spans, "windows": windows}


def quick_slos(window_ms: float = 250.0, **overrides) -> "SloEngine":
    """An engine tuned for short smoke runs: 2-window baselines so the
    relative thresholds arm before a scenario fault lands a third of
    the way into a 2-4 s run."""
    specs = tuple(
        replace(spec, baseline_windows=2)
        if spec.baseline_factor is not None else spec
        for spec in DEFAULT_SLOS
    )
    return SloEngine(specs=specs, window_ms=window_ms, **overrides)


__all__ = [
    "SCHEMA", "METRICS", "DEFAULT_SLOS", "DEFAULT_GRACE_MS",
    "DEFAULT_MERGE_GAP_MS", "SloSpec", "Incident", "NullSloEngine",
    "NULL_SLO", "SloEngine", "load_jsonl", "quick_slos",
]
