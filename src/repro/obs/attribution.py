"""Latency attribution: fold critical paths into budgets and blame.

Built on :mod:`repro.obs.causal`: every committed, recorded transaction
of an observed run contributes its critical path, and the report folds
those paths into

* an **aggregate budget** — total milliseconds (and shares) per
  attribution category, summing to the run's end-to-end commit latency;
* **quantile budgets** — what the p50/p95/p99 transaction spent its
  latency on (a small rank window around the nearest-rank transaction,
  so one outlier does not define the tail shape);
* a **blame ranking** — (category, track) pairs ordered by how much of
  the tail they explain ("62% of the p95+ tail is refresh wait at
  site 3");
* **tail exemplars** — the k worst transactions rendered as waterfall
  text;
* **edge summaries** — lock wait-for holders by transaction type,
  lagging refresh origins, RPC/remaster/2PC round counts.

Reports serialize to a stable JSON schema (``repro-explain/1``) so two
runs can be diffed offline (``repro explain --diff a.json b.json``);
:func:`diff_reports` refuses malformed or mismatched pairs with a
:class:`AttributionError` rather than a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.causal import CATEGORIES, PathSegment, critical_path, path_categories
from repro.obs.tracer import Tracer

__all__ = [
    "SCHEMA",
    "AttributionError",
    "AttributionReport",
    "TxnAttribution",
    "diff_reports",
    "render_waterfall",
]

SCHEMA = "repro-explain/1"

#: Quantiles the budget table reports, besides the overall mean.
BUDGET_QUANTILES = (0.50, 0.95, 0.99)

#: Rank window (each side) averaged around a quantile's nearest rank.
_QUANTILE_WINDOW = 2


class AttributionError(ValueError):
    """A malformed or mismatched attribution report."""


@dataclass(slots=True)
class TxnAttribution:
    """One committed transaction's attributed critical path."""

    txn_id: int
    txn_type: str
    begin: float
    latency: float
    categories: Dict[str, float]
    segments: List[PathSegment] = field(repr=False, default_factory=list)

    @property
    def attributed_total(self) -> float:
        return sum(self.categories.values())


def _nearest_rank(count: int, q: float) -> int:
    """Nearest-rank index, mirroring ``bench.metrics._percentile``."""
    return min(count - 1, max(0, round(q * (count - 1))))


@dataclass
class AttributionReport:
    """The latency budget of one observed run."""

    meta: Dict[str, object]
    txns: List[TxnAttribution]
    edge_summary: Dict[str, object] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: Tracer,
                    meta: Optional[Mapping[str, object]] = None,
                    keep_segments: bool = True) -> "AttributionReport":
        """Attribute every committed, recorded transaction of a trace."""
        txns: List[TxnAttribution] = []
        for txn_id in sorted(tracer.txns):
            record = tracer.txns[txn_id]
            if not record.recorded or record.latency is None:
                continue
            segments = critical_path(tracer, txn_id)
            txns.append(TxnAttribution(
                txn_id=txn_id,
                txn_type=record.txn_type,
                begin=record.begin,
                latency=record.latency,
                categories=path_categories(segments),
                segments=segments if keep_segments else [],
            ))
        return cls(
            meta=dict(meta or {}),
            txns=txns,
            edge_summary=summarize_edges(tracer),
        )

    @classmethod
    def from_result(cls, result, seed: Optional[int] = None,
                    keep_segments: bool = True) -> "AttributionReport":
        """Attribute a :class:`~repro.bench.harness.RunResult`.

        The run must have been observed (``result.obs`` attached and
        enabled); raises :class:`AttributionError` otherwise.
        """
        obs = result.obs
        if obs is None or not obs.enabled:
            raise AttributionError(
                "run was not observed: pass obs=Observability() to run_benchmark"
            )
        meta: Dict[str, object] = {
            "system": result.system_name,
            "workload": result.workload_name,
            "clients": result.num_clients,
            "duration_ms": result.duration_ms,
            "warmup_ms": result.warmup_ms,
        }
        if seed is not None:
            meta["seed"] = seed
        return cls.from_tracer(obs.tracer, meta=meta, keep_segments=keep_segments)

    # -- aggregates ----------------------------------------------------------

    @property
    def total_latency(self) -> float:
        return sum(txn.latency for txn in self.txns)

    def aggregate(self) -> Dict[str, float]:
        """Total milliseconds per category over all attributed txns."""
        totals = {category: 0.0 for category in CATEGORIES}
        for txn in self.txns:
            for category, value in txn.categories.items():
                totals[category] += value
        return totals

    def shares(self) -> Dict[str, float]:
        total = self.total_latency
        if total <= 0:
            return {category: 0.0 for category in CATEGORIES}
        return {
            category: value / total for category, value in self.aggregate().items()
        }

    def coverage(self) -> float:
        """Attributed time over measured latency — ~1.0 by construction."""
        total = self.total_latency
        if total <= 0:
            return 1.0
        return sum(self.aggregate().values()) / total

    def _by_latency(self) -> List[TxnAttribution]:
        return sorted(self.txns, key=lambda txn: (txn.latency, txn.txn_id))

    def quantile_budget(self, q: float) -> Dict[str, object]:
        """Average budget of the txns around the ``q`` latency quantile."""
        ordered = self._by_latency()
        if not ordered:
            return {"latency_ms": 0.0,
                    "categories": {category: 0.0 for category in CATEGORIES}}
        rank = _nearest_rank(len(ordered), q)
        lo = max(0, rank - _QUANTILE_WINDOW)
        hi = min(len(ordered), rank + _QUANTILE_WINDOW + 1)
        window = ordered[lo:hi]
        categories = {category: 0.0 for category in CATEGORIES}
        for txn in window:
            for category, value in txn.categories.items():
                categories[category] += value
        size = len(window)
        return {
            "latency_ms": sum(txn.latency for txn in window) / size,
            "categories": {
                category: value / size for category, value in categories.items()
            },
        }

    def budget(self) -> Dict[str, Dict[str, object]]:
        """The attribution table: mean plus the pinned quantiles."""
        count = len(self.txns)
        mean = {
            "latency_ms": self.total_latency / count if count else 0.0,
            "categories": {
                category: value / count if count else 0.0
                for category, value in self.aggregate().items()
            },
        }
        rows = {"mean": mean}
        for q in BUDGET_QUANTILES:
            rows[f"p{int(q * 100)}"] = self.quantile_budget(q)
        return rows

    # -- blame and exemplars -------------------------------------------------

    def blame(self, tail_q: float = 0.95, top: int = 8) -> List[Dict[str, object]]:
        """Rank (category, track) pairs by share of the latency tail."""
        ordered = self._by_latency()
        if not ordered:
            return []
        threshold = ordered[_nearest_rank(len(ordered), tail_q)].latency
        tail = [txn for txn in ordered if txn.latency >= threshold]
        totals: Dict[Tuple[str, str], float] = {}
        tail_latency = 0.0
        for txn in tail:
            tail_latency += txn.latency
            for segment in txn.segments:
                key = (segment.category, segment.track)
                totals[key] = totals.get(key, 0.0) + segment.duration
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return [
            {
                "category": category,
                "track": track or "-",
                "ms": ms,
                "share": ms / tail_latency if tail_latency > 0 else 0.0,
            }
            for (category, track), ms in ranked[:top]
        ]

    def tail_exemplars(self, k: int = 3) -> List[TxnAttribution]:
        """The ``k`` worst-latency transactions (waterfall candidates)."""
        return list(reversed(self._by_latency()[-k:])) if self.txns else []

    def find(self, txn_id: int) -> Optional[TxnAttribution]:
        for txn in self.txns:
            if txn.txn_id == txn_id:
                return txn
        return None

    # -- serialization -------------------------------------------------------

    def to_dict(self, exemplars: int = 3) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "txn_count": len(self.txns),
            "total_latency_ms": self.total_latency,
            "coverage": self.coverage(),
            "aggregate": {
                "categories": self.aggregate(),
                "shares": self.shares(),
            },
            "budget": self.budget(),
            "blame": self.blame(),
            "edges": dict(self.edge_summary),
            "exemplars": [
                {
                    "txn_id": txn.txn_id,
                    "txn_type": txn.txn_type,
                    "latency_ms": txn.latency,
                    "waterfall": render_waterfall(txn),
                }
                for txn in self.tail_exemplars(exemplars)
            ],
        }


def summarize_edges(tracer: Tracer) -> Dict[str, object]:
    """Aggregate the causal edges of a trace for the report.

    Lock blame is keyed by the *holder's* transaction type (who was I
    behind?); refresh blame by the lagging replication origin the
    snapshot waited to apply.
    """
    kinds: Dict[str, int] = {}
    lock_holders: Dict[str, int] = {}
    refresh_origins: Dict[str, int] = {}
    for edge in tracer.edges:
        kinds[edge.kind] = kinds.get(edge.kind, 0) + 1
        if edge.kind == "lock_wait":
            holder = tracer.txns.get(edge.src_txn_id) if edge.src_txn_id else None
            label = holder.txn_type if holder is not None else "(unknown)"
            lock_holders[label] = lock_holders.get(label, 0) + 1
        elif edge.kind == "refresh_wait":
            for origin, _have, _need in dict(edge.args).get("lagging", ()):
                label = f"site{origin}"
                refresh_origins[label] = refresh_origins.get(label, 0) + 1
    return {
        "kinds": dict(sorted(kinds.items())),
        "lock_blame": dict(sorted(lock_holders.items())),
        "refresh_origins": dict(sorted(refresh_origins.items())),
    }


def render_waterfall(txn: TxnAttribution) -> str:
    """Render one transaction's critical path as waterfall text."""
    header = (
        f"txn {txn.txn_id} ({txn.txn_type})  latency {txn.latency:.3f} ms, "
        f"attributed {txn.attributed_total:.3f} ms"
    )
    if not txn.segments:
        return header + "\n  (no critical path recorded)"
    lines = [header]
    scale = max(segment.duration for segment in txn.segments)
    for segment in txn.segments:
        offset = segment.start - txn.begin
        bar = "#" * max(1, round(24 * segment.duration / scale)) if scale > 0 else ""
        label = segment.span_name or "(unattributed)"
        track = segment.track or "-"
        lines.append(
            f"  {offset:9.3f}  +{segment.duration:8.3f}  "
            f"{segment.category:<15} {track:<9} {label:<15} {bar}"
        )
    return "\n".join(lines)


# -- report diffing (offline, over exported dicts) ---------------------------

#: meta keys two runs must share to be comparable (system may differ —
#: comparing systems on the same workload/seed is the point).
_MATCH_KEYS = ("workload", "seed", "clients", "duration_ms", "warmup_ms")


def validate_report(data: object, label: str = "report") -> Dict[str, object]:
    """Check one exported report dict; raise :class:`AttributionError`."""
    if not isinstance(data, dict):
        raise AttributionError(f"{label}: expected a JSON object, "
                               f"got {type(data).__name__}")
    schema = data.get("schema")
    if schema != SCHEMA:
        raise AttributionError(
            f"{label}: schema {schema!r} is not {SCHEMA!r} "
            f"(re-export with this version's `repro explain --export`)"
        )
    for key in ("meta", "aggregate", "budget", "txn_count"):
        if key not in data:
            raise AttributionError(f"{label}: missing key {key!r}")
    aggregate = data["aggregate"]
    if not isinstance(aggregate, dict) or "categories" not in aggregate:
        raise AttributionError(f"{label}: malformed 'aggregate' section")
    return data


def diff_reports(a: object, b: object) -> Dict[str, object]:
    """Compare two exported budgets; raise on malformed/mismatched pairs.

    Both inputs must validate against ``repro-explain/1`` and agree on
    workload, seed, client count and duration — otherwise the
    comparison would be meaningless and :class:`AttributionError` says
    why. Returns per-category (ms, share) columns and deltas.
    """
    a = validate_report(a, "first report")
    b = validate_report(b, "second report")
    meta_a, meta_b = a["meta"], b["meta"]
    for key in _MATCH_KEYS:
        if meta_a.get(key) != meta_b.get(key):
            raise AttributionError(
                f"mismatched run pair: {key} differs "
                f"({meta_a.get(key)!r} vs {meta_b.get(key)!r}); "
                f"--diff compares two systems on the same workload/seed"
            )
    cats_a = a["aggregate"]["categories"]
    cats_b = b["aggregate"]["categories"]
    shares_a = a["aggregate"].get("shares", {})
    shares_b = b["aggregate"].get("shares", {})
    rows = []
    for category in CATEGORIES:
        ms_a = float(cats_a.get(category, 0.0))
        ms_b = float(cats_b.get(category, 0.0))
        rows.append({
            "category": category,
            "a_ms": ms_a,
            "b_ms": ms_b,
            "delta_ms": ms_b - ms_a,
            "a_share": float(shares_a.get(category, 0.0)),
            "b_share": float(shares_b.get(category, 0.0)),
        })
    return {
        "a": meta_a.get("system", "?"),
        "b": meta_b.get("system", "?"),
        "rows": rows,
        "a_total_ms": float(a.get("total_latency_ms", 0.0)),
        "b_total_ms": float(b.get("total_latency_ms", 0.0)),
        "a_txns": int(a["txn_count"]),
        "b_txns": int(b["txn_count"]),
    }


def budget_rows(report: AttributionReport) -> List[List[object]]:
    """Budget table rows for ``print_table`` (CLI + run report)."""
    budget = report.budget()
    rows: List[List[object]] = []
    for label, entry in budget.items():
        latency = entry["latency_ms"]
        row: List[object] = [label, f"{latency:.3f}"]
        for category in CATEGORIES:
            value = entry["categories"][category]
            share = value / latency if latency > 0 else 0.0
            row.append(f"{share:.1%}")
        rows.append(row)
    return rows


def budget_headers() -> List[str]:
    return ["quantile", "latency ms", *CATEGORIES]


def split_by_windows(
    report: AttributionReport, windows: Sequence[Tuple[float, float]]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Split the aggregate budget by whether a txn began in a window.

    Used by the chaos driver to attribute availability dips: transactions
    that started while some site was down ("degraded") versus the rest
    ("steady"). Returns two share dicts.
    """
    steady = {category: 0.0 for category in CATEGORIES}
    degraded = {category: 0.0 for category in CATEGORIES}
    steady_total = degraded_total = 0.0
    for txn in report.txns:
        in_window = any(start <= txn.begin < end for start, end in windows)
        bucket = degraded if in_window else steady
        for category, value in txn.categories.items():
            bucket[category] += value
        if in_window:
            degraded_total += txn.latency
        else:
            steady_total += txn.latency
    def _shares(totals, denom):
        if denom <= 0:
            return {category: 0.0 for category in CATEGORIES}
        return {category: value / denom for category, value in totals.items()}
    return _shares(steady, steady_total), _shares(degraded, degraded_total)
