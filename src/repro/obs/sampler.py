"""Periodic sampling of live simulation state into timelines.

A :class:`TimelineSampler` runs as one simulated process that wakes
every ``interval_ms`` and evaluates a set of named probes — plain
callables reading live state (CPU busy time, lock-table depth,
replication queue depth, version-vector staleness, 2PC in flight).
Each probe's readings form a :class:`Timeline`: an ordered
``(time, value)`` series, the per-site view behind the paper's
utilization and replication-lag figures.

The sampler is only ever started for observed runs; an untraced run
schedules no sampling events, keeping its event stream untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = ["Timeline", "TimelineSampler", "attach_cluster_probes"]


class Timeline:
    """One probe's sampled ``(time_ms, value)`` series."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def append(self, when: float, value: float) -> None:
        self.samples.append((when, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        return [value for _, value in self.samples]

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.values()) / len(self.samples)

    def maximum(self) -> float:
        return max(self.values(), default=0.0)


class TimelineSampler:
    """Drives registered probes on a fixed simulated-time cadence."""

    def __init__(self, interval_ms: float = 10.0):
        if interval_ms <= 0:
            raise ValueError(f"sample interval must be positive, got {interval_ms}")
        self.interval_ms = interval_ms
        self.probes: Dict[str, Callable[[], float]] = {}
        self.timelines: Dict[str, Timeline] = {}
        self._started = False

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        """Register ``probe`` to be read every interval as ``name``."""
        if name in self.probes:
            raise ValueError(f"duplicate probe {name!r}")
        self.probes[name] = probe
        self.timelines[name] = Timeline(name)

    def sample_once(self, now: float) -> None:
        """Read every probe at simulated time ``now``."""
        for name, probe in self.probes.items():
            self.timelines[name].append(now, float(probe()))

    def start(self, env) -> None:
        """Begin periodic sampling on ``env`` (idempotent)."""
        if self._started or not self.probes:
            return
        self._started = True
        env.process(self._run(env))

    def _run(self, env):
        while True:
            yield env.timeout(self.interval_ms)
            self.sample_once(env.now)


def attach_cluster_probes(sampler: TimelineSampler, cluster,
                          registry=None) -> None:
    """Wire the standard per-site probes of one cluster.

    Installs, per site: windowed CPU utilization, lock-table depth,
    replication inbox depth; per ordered site pair: replication lag
    (how many of the origin's commits the follower has not applied —
    version-vector staleness); and, when ``registry`` is given, the
    cluster-wide 2PC in-flight gauge.
    """
    interval = sampler.interval_ms
    for site in cluster.sites:
        label = f"site{site.index}"
        # Probes hold the *site* and dereference per sample: a crash
        # replaces the site's cpu / database / svv objects, so a probe
        # capturing those directly would silently read dead state after
        # a fault-injected restart.
        sampler.add_probe(
            f"cpu_utilization.{label}", _cpu_probe(site, interval)
        )
        sampler.add_probe(
            f"lock_depth.{label}",
            lambda site=site: site.database.locks.held_count(),
        )
        sampler.add_probe(
            f"replication_queue.{label}",
            lambda site=site: site.replication.queue_depth(),
        )
    for follower in cluster.sites:
        for origin in cluster.sites:
            if origin is follower:
                continue
            sampler.add_probe(
                f"replication_lag.site{follower.index}.from.site{origin.index}",
                lambda f=follower, o=origin: max(
                    0, o.svv[o.index] - f.svv[o.index]
                ),
            )
    if registry is not None:
        sampler.add_probe(
            "2pc_inflight", lambda gauge=registry.gauge("2pc_inflight"): gauge.value
        )


def _cpu_probe(site, interval_ms: float) -> Callable[[], float]:
    """Windowed utilization: busy fraction over the last interval.

    Reads ``site.cpu`` on every sample (a crash swaps the resource in
    for a fresh one, resetting its busy counter); the delta is clamped
    at zero so the sample spanning a crash reads as idle rather than
    as a negative utilization.
    """
    state = {"busy": site.cpu.busy_time_now()}

    def probe() -> float:
        cpu = site.cpu
        busy = cpu.busy_time_now()
        delta, state["busy"] = max(0.0, busy - state["busy"]), busy
        return delta / (interval_ms * cpu.capacity)

    return probe
