"""Unit tests for the site selector's access statistics."""

import random

from repro.core.statistics import AccessStatistics, StatisticsConfig


def make_stats(**overrides):
    defaults = dict(sample_rate=1.0, inter_txn_window_ms=10.0, expiry_ms=100.0)
    defaults.update(overrides)
    return AccessStatistics(StatisticsConfig(**defaults))


class TestWriteFrequencies:
    def test_write_fraction(self):
        stats = make_stats()
        stats.observe(0.0, client_id=1, partitions=[1, 2])
        stats.observe(1.0, client_id=1, partitions=[1])
        assert stats.write_fraction(1) == 1.0  # in every sampled txn
        assert stats.write_fraction(2) == 0.5
        assert stats.write_fraction(99) == 0.0

    def test_empty_stats(self):
        stats = make_stats()
        assert stats.write_fraction(0) == 0.0
        assert stats.intra_probability(0, 1) == 0.0
        assert stats.inter_probability(0, 1) == 0.0

    def test_duplicate_partitions_counted_once(self):
        stats = make_stats()
        stats.observe(0.0, client_id=1, partitions=[3, 3, 3])
        assert stats.partition_writes[3] == 1.0

    def test_site_write_loads_sum_to_one(self):
        stats = make_stats()
        stats.observe(0.0, 1, [0, 1])
        stats.observe(1.0, 1, [2])
        master_of = {0: 0, 1: 0, 2: 1}.__getitem__
        loads = stats.site_write_loads(master_of, num_sites=3)
        assert loads == [2.0 / 3.0, 1.0 / 3.0, 0.0]
        assert sum(loads) == 1.0

    def test_access_fraction_normalizes_by_mass(self):
        stats = make_stats()
        stats.observe(0.0, 1, [0, 1])
        stats.observe(1.0, 1, [0])
        assert stats.access_fraction(0) == 2.0 / 3.0
        assert stats.access_fraction(1) == 1.0 / 3.0
        assert stats.access_fraction(9) == 0.0


class TestIntraCorrelations:
    def test_intra_probability_symmetric_counts(self):
        stats = make_stats()
        stats.observe(0.0, 1, [1, 2])
        stats.observe(1.0, 1, [1, 3])
        assert stats.intra_probability(1, 2) == 0.5
        assert stats.intra_probability(2, 1) == 1.0
        assert stats.intra_probability(1, 3) == 0.5

    def test_intra_partners(self):
        stats = make_stats()
        stats.observe(0.0, 1, [1, 2, 3])
        assert set(stats.intra_partners(1)) == {2, 3}


class TestInterCorrelations:
    def test_same_client_within_window(self):
        stats = make_stats(inter_txn_window_ms=10.0)
        stats.observe(0.0, client_id=1, partitions=[1])
        stats.observe(5.0, client_id=1, partitions=[2])
        assert stats.inter_probability(1, 2) == 1.0
        # Direction matters: 2 was not followed by 1.
        assert stats.inter_probability(2, 1) == 0.0

    def test_outside_window_not_correlated(self):
        stats = make_stats(inter_txn_window_ms=10.0)
        stats.observe(0.0, client_id=1, partitions=[1])
        stats.observe(50.0, client_id=1, partitions=[2])
        assert stats.inter_probability(1, 2) == 0.0

    def test_different_clients_not_correlated(self):
        stats = make_stats()
        stats.observe(0.0, client_id=1, partitions=[1])
        stats.observe(1.0, client_id=2, partitions=[2])
        assert stats.inter_probability(1, 2) == 0.0


class TestExpiry:
    def test_expired_samples_decrement_counts(self):
        stats = make_stats(expiry_ms=100.0)
        stats.observe(0.0, 1, [1, 2])
        stats.observe(5.0, 1, [3])  # also creates inter pair 1->3, 2->3
        assert stats.partition_writes.get(1) == 1.0
        # A new observation far in the future expires both old samples.
        stats.observe(500.0, 1, [7])
        assert 1 not in stats.partition_writes
        assert 2 not in stats.partition_writes
        assert stats.intra_probability(1, 2) == 0.0
        assert stats.inter_probability(1, 3) == 0.0
        assert stats.partition_writes.get(7) == 1.0
        assert stats.total_writes == 1.0

    def test_max_samples_bound(self):
        stats = make_stats(expiry_ms=1e9, max_samples=5)
        for index in range(10):
            stats.observe(float(index), 1, [index])
        assert len(stats._samples) == 5
        # Early partitions were evicted.
        assert 0 not in stats.partition_writes
        assert 9 in stats.partition_writes


class TestSampling:
    def test_sample_rate_filters(self):
        config = StatisticsConfig(sample_rate=0.5)
        stats = AccessStatistics(config, rng=random.Random(42))
        for index in range(1000):
            stats.observe(float(index), 1, [index % 7])
        assert stats.observed == 1000
        assert 350 < stats.sampled < 650

    def test_full_sampling_without_rng(self):
        stats = AccessStatistics(StatisticsConfig(sample_rate=1.0))
        stats.observe(0.0, 1, [1])
        assert stats.sampled == 1
