"""Unit tests for the open-loop scale harness (repro.bench.scale).

The expensive part — actually running the pinned matrix — is covered
by the ``scale-smoke`` CI job against the committed ``BENCH_scale.json``;
these tests pin the pure logic around it: spec flattening, knee
finding, and the check gates.
"""

import pytest

from repro.bench.scale import (
    KNEE_THRESHOLD,
    SCALE_MATRIX,
    SMOKE_CASES,
    check_report,
    find_knee,
    select_cases,
)


def point(multiplier, offered, ratio, fingerprint="f0", rss_kb=1000):
    return {
        "multiplier": multiplier,
        "offered_tps": offered,
        "goodput_ratio": ratio,
        "fingerprint": fingerprint,
        "peak_rss_kb": rss_kb,
    }


class TestMatrix:
    def test_every_system_has_a_case(self):
        systems = {case.system for case in SCALE_MATRIX}
        assert systems == {"dynamast", "single-master", "multi-master",
                           "partition-store", "leap"}

    def test_flagship_hits_issue_scale(self):
        flagship = next(c for c in SCALE_MATRIX
                        if c.name == "dynamast-diurnal-16x100k")
        assert flagship.sites == 16
        assert flagship.open_loop.modeled_clients >= 100_000
        assert flagship.table_keys() >= 1_000_000
        assert flagship.open_loop.curve == "diurnal"

    def test_smoke_subset_excludes_flagship(self):
        names = {case.name for case in select_cases(smoke=True)}
        assert names == set(SMOKE_CASES)
        assert "dynamast-diurnal-16x100k" not in names

    def test_specs_scale_the_ladder(self):
        case = SCALE_MATRIX[0]
        specs = case.specs()
        assert len(specs) == len(case.ladder)
        base = dict(case.open_loop.curve_params)["rate_tps"]
        for multiplier, spec in zip(case.ladder, specs):
            assert spec.streaming_metrics
            assert spec.open_loop is not None
            params = dict(spec.open_loop.curve_params)
            assert params["rate_tps"] == pytest.approx(base * multiplier)
            assert spec.label.endswith(f"@x{multiplier:g}")


class TestKnee:
    def test_highest_sustaining_point_wins(self):
        points = [point(1, 100, 0.99), point(2, 200, 0.95),
                  point(4, 400, 0.40)]
        assert find_knee(points)["multiplier"] == 2

    def test_none_when_ladder_starts_saturated(self):
        assert find_knee([point(1, 100, 0.50)]) is None

    def test_threshold_is_inclusive(self):
        assert find_knee([point(1, 100, KNEE_THRESHOLD)]) is not None


class TestCheck:
    def wrap(self, points, budget_mb=1):
        return {"cases": {"case": {"points": points,
                                   "rss_budget_mb": budget_mb}}}

    def test_identical_reports_pass(self):
        report = self.wrap([point(1, 100, 0.99)])
        assert check_report(report, report) == []

    def test_fingerprint_drift_fails(self):
        fresh = self.wrap([point(1, 100, 0.99, fingerprint="aa")])
        pinned = self.wrap([point(1, 100, 0.99, fingerprint="bb")])
        failures = check_report(fresh, pinned)
        assert len(failures) == 1 and "fingerprint" in failures[0]

    def test_rss_over_budget_fails(self):
        fresh = self.wrap([point(1, 100, 0.99, rss_kb=2048)], budget_mb=1)
        failures = check_report(fresh, fresh)
        assert len(failures) == 1 and "budget" in failures[0]

    def test_missing_case_fails(self):
        fresh = self.wrap([point(1, 100, 0.99)])
        assert check_report(fresh, {"cases": {}}) == [
            "case: not in committed report"]

    def test_ladder_length_mismatch_fails(self):
        fresh = self.wrap([point(1, 100, 0.99), point(2, 200, 0.9)])
        pinned = self.wrap([point(1, 100, 0.99)])
        failures = check_report(fresh, pinned)
        assert len(failures) == 1 and "ladder length" in failures[0]
