"""Unit tests for the open-loop scale harness (repro.bench.scale).

The expensive part — actually running the pinned matrix — is covered
by the ``scale-smoke`` CI job against the committed ``BENCH_scale.json``;
these tests pin the pure logic around it: spec flattening, knee
finding, and the check gates.
"""

from pathlib import Path

import pytest

from repro.bench.scale import (
    KNEE_THRESHOLD,
    SCALE_MATRIX,
    SMOKE_CASES,
    _first_collapsed,
    check_report,
    find_knee,
    knee_tables,
    load_report,
    render_tables,
    select_cases,
)
from repro.bench.scale import main as scale_main


def point(multiplier, offered, ratio, fingerprint="f0", rss_kb=1000):
    return {
        "multiplier": multiplier,
        "offered_tps": offered,
        "goodput_ratio": ratio,
        "fingerprint": fingerprint,
        "peak_rss_kb": rss_kb,
    }


class TestMatrix:
    def test_every_system_has_a_case(self):
        systems = {case.system for case in SCALE_MATRIX}
        assert systems == {"dynamast", "single-master", "multi-master",
                           "partition-store", "leap"}

    def test_flagship_hits_issue_scale(self):
        flagship = next(c for c in SCALE_MATRIX
                        if c.name == "dynamast-diurnal-16x100k")
        assert flagship.sites == 16
        assert flagship.open_loop.modeled_clients >= 100_000
        assert flagship.table_keys() >= 1_000_000
        assert flagship.open_loop.curve == "diurnal"

    def test_smoke_subset_excludes_flagship(self):
        names = {case.name for case in select_cases(smoke=True)}
        assert names == set(SMOKE_CASES)
        assert "dynamast-diurnal-16x100k" not in names

    def test_specs_scale_the_ladder(self):
        case = SCALE_MATRIX[0]
        specs = case.specs()
        assert len(specs) == len(case.ladder)
        base = dict(case.open_loop.curve_params)["rate_tps"]
        for multiplier, spec in zip(case.ladder, specs):
            assert spec.streaming_metrics
            assert spec.open_loop is not None
            params = dict(spec.open_loop.curve_params)
            assert params["rate_tps"] == pytest.approx(base * multiplier)
            assert spec.label.endswith(f"@x{multiplier:g}")


class TestKnee:
    def test_highest_sustaining_point_wins(self):
        points = [point(1, 100, 0.99), point(2, 200, 0.95),
                  point(4, 400, 0.40)]
        assert find_knee(points)["multiplier"] == 2

    def test_none_when_ladder_starts_saturated(self):
        assert find_knee([point(1, 100, 0.50)]) is None

    def test_threshold_is_inclusive(self):
        assert find_knee([point(1, 100, KNEE_THRESHOLD)]) is not None


class TestCheck:
    def wrap(self, points, budget_mb=1):
        return {"cases": {"case": {"points": points,
                                   "rss_budget_mb": budget_mb}}}

    def test_identical_reports_pass(self):
        report = self.wrap([point(1, 100, 0.99)])
        assert check_report(report, report) == []

    def test_fingerprint_drift_fails(self):
        fresh = self.wrap([point(1, 100, 0.99, fingerprint="aa")])
        pinned = self.wrap([point(1, 100, 0.99, fingerprint="bb")])
        failures = check_report(fresh, pinned)
        assert len(failures) == 1 and "fingerprint" in failures[0]

    def test_rss_over_budget_fails(self):
        fresh = self.wrap([point(1, 100, 0.99, rss_kb=2048)], budget_mb=1)
        failures = check_report(fresh, fresh)
        assert len(failures) == 1 and "budget" in failures[0]

    def test_missing_case_fails(self):
        fresh = self.wrap([point(1, 100, 0.99)])
        assert check_report(fresh, {"cases": {}}) == [
            "case: not in committed report"]

    def test_ladder_length_mismatch_fails(self):
        fresh = self.wrap([point(1, 100, 0.99), point(2, 200, 0.9)])
        pinned = self.wrap([point(1, 100, 0.99)])
        failures = check_report(fresh, pinned)
        assert len(failures) == 1 and "ladder length" in failures[0]


class TestFirstCollapsed:
    def test_first_sub_threshold_rung_past_the_knee(self):
        points = [point(1, 100, 0.99), point(2, 200, 0.95),
                  point(4, 400, 0.80)]
        knee = points[1]
        collapsed = _first_collapsed(points, knee, 0.9)
        assert collapsed is points[2]

    def test_pre_knee_dips_are_not_collapse(self):
        points = [point(1, 100, 0.85), point(2, 200, 0.95)]
        assert _first_collapsed(points, points[1], 0.9) is None

    def test_none_ratio_counts_as_collapsed(self):
        points = [point(1, 100, 0.99), point(2, 200, None)]
        assert _first_collapsed(points, points[0], 0.9) is points[1]

    def test_no_knee_blames_the_first_failing_rung(self):
        points = [point(1, 100, 0.5)]
        assert _first_collapsed(points, None, 0.9) is points[0]


class TestRenderTables:
    """The committed BENCH_scale.json is the single source of the knee
    tables; EXPERIMENTS.md and docs/SCALE.md embed the rendered output
    verbatim, and these pins keep them from drifting."""

    @pytest.fixture(scope="class")
    def tables(self):
        root = Path(__file__).resolve().parent.parent
        return knee_tables(load_report(str(root / "BENCH_scale.json")))

    def test_experiments_md_embeds_the_summary_table(self, tables):
        root = Path(__file__).resolve().parent.parent
        text = (root / "EXPERIMENTS.md").read_text()
        assert tables["summary"] in text

    def test_scale_md_embeds_detail_and_flagship_tables(self, tables):
        root = Path(__file__).resolve().parent.parent
        text = (root / "docs" / "SCALE.md").read_text()
        assert tables["detail"] in text
        assert tables["dynamast-diurnal-16x100k"] in text

    def test_knee_rows_are_bolded(self, tables):
        assert "**" in tables["detail"]
        flagship = tables["dynamast-diurnal-16x100k"]
        bolded = [line for line in flagship.splitlines() if "**" in line]
        assert len(bolded) == 1  # exactly the knee rung

    def test_render_tables_emits_one_document(self):
        root = Path(__file__).resolve().parent.parent
        report = load_report(str(root / "BENCH_scale.json"))
        document = render_tables(report)
        assert document.startswith("<!-- generated by `repro perf --scale")
        for fragment in knee_tables(report).values():
            assert fragment in document

    def test_main_render_tables_path_runs_nothing(self):
        root = Path(__file__).resolve().parent.parent
        emitted = []
        code = scale_main(
            render_tables=True,
            baseline_path=str(root / "BENCH_scale.json"),
            emit=emitted.append,
        )
        assert code == 0
        assert len(emitted) == 1
        assert "Per-system knees (EXPERIMENTS.md):" in emitted[0]

    def test_synthetic_ladder_case_without_knee(self):
        report = {
            "cases": {
                "tiny-constant-8x20k": {
                    "system": "tiny",
                    "points": [point(1, 100, 0.5)],
                    "knee": None,
                },
            },
        }
        tables = knee_tables(report)
        assert "| tiny | none | x1: ratio 0.50 |" in tables["summary"]
        assert "| tiny | none | - | x1 = 100/s | 0.50 |" in tables["detail"]
