"""Tests for the transaction type and the cluster cost model."""

import pytest

from repro.sim.config import ClusterConfig, CostModel, SizeModel
from repro.transactions import Outcome, Transaction


class TestTransaction:
    def test_read_only(self):
        read = Transaction("r", 0, read_set=(("t", 1),))
        write = Transaction("w", 0, write_set=(("t", 1),))
        assert read.is_read_only
        assert not write.is_read_only

    def test_unique_ids(self):
        first = Transaction("w", 0)
        second = Transaction("w", 0)
        assert first.txn_id != second.txn_id

    def test_timings_accumulate(self):
        txn = Transaction("w", 0)
        txn.add_timing("execute", 1.0)
        txn.add_timing("execute", 0.5)
        txn.add_timing("network", 2.0)
        assert txn.timings == {"execute": 1.5, "network": 2.0}

    def test_all_keys(self):
        txn = Transaction(
            "w", 0,
            write_set=(("t", 1),),
            read_set=(("t", 2),),
            scan_set=(("t", 3),),
        )
        assert txn.all_keys() == (("t", 1), ("t", 2), ("t", 3))

    def test_outcome_defaults(self):
        outcome = Outcome(committed=True)
        assert not outcome.remastered
        assert not outcome.distributed
        assert outcome.retries == 0


class TestCostModel:
    def test_execution_cost_composition(self):
        costs = CostModel(read_op_ms=1.0, write_op_ms=2.0, scan_op_ms=0.1)
        assert costs.execution_ms(reads=2, writes=3, scanned=10) == pytest.approx(9.0)

    def test_refresh_cost(self):
        costs = CostModel(refresh_base_ms=0.5, refresh_op_ms=0.1)
        assert costs.refresh_ms(writes=5) == pytest.approx(1.0)

    def test_refresh_cheaper_than_execution(self):
        """The default model applies refreshes far cheaper than
        original writes — the premise of lazy replication's economy."""
        costs = CostModel()
        writes = 10
        original = costs.txn_begin_ms + costs.execution_ms(0, writes, 0) + costs.txn_commit_ms
        refresh = costs.refresh_ms(writes)
        assert refresh < original / 3


class TestSizeModel:
    def test_update_record_bytes(self):
        sizes = SizeModel(record_bytes=100, rpc_overhead_bytes=64, vector_entry_bytes=8)
        assert sizes.update_record_bytes(writes=3, sites=4) == 64 + 300 + 32


class TestClusterConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.num_sites == 4
        assert config.max_versions == 4  # the paper's empirical default

    def test_scaled_copy(self):
        config = ClusterConfig(num_sites=4)
        bigger = config.scaled(num_sites=8, seed=3)
        assert bigger.num_sites == 8
        assert bigger.seed == 3
        assert config.num_sites == 4  # original untouched

    def test_log_delivery_below_client_round_trip(self):
        """Replicas must usually be session-fresh by the time a writing
        client's next transaction arrives (paper §VI-B2): delivery
        must beat the reply+request client hops."""
        config = ClusterConfig()
        client_hops = 2 * config.network.one_way_latency_ms
        assert config.log_delivery_ms <= client_hops * 1.2
