"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import Environment, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(5.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [5.0]
    assert env.now == 5.0


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, label):
        yield env.timeout(delay)
        order.append(label)

    env.process(proc(3.0, "c"))
    env.process(proc(1.0, "a"))
    env.process(proc(2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def proc(label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abc":
        env.process(proc(label))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_at_time():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(10.0)
        fired.append(True)

    env.process(proc())
    env.run(until=5.0)
    assert not fired
    assert env.now == 5.0
    env.run(until=20.0)
    assert fired


def test_run_until_in_past_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 42

    process = env.process(proc())
    assert env.run_until_complete(process) == 42


def test_process_waits_on_another_process():
    env = Environment()
    trace = []

    def child():
        yield env.timeout(2.0)
        trace.append("child")
        return "payload"

    def parent():
        value = yield env.process(child())
        trace.append(f"parent:{value}")

    env.process(parent())
    env.run()
    assert trace == ["child", "parent:payload"]


def test_waiting_on_already_finished_process():
    env = Environment()
    results = []

    def child():
        return 7
        yield  # pragma: no cover - makes this a generator

    def parent(child_process):
        yield env.timeout(5.0)
        value = yield child_process
        results.append((env.now, value))

    child_process = env.process(child())
    env.process(parent(child_process))
    env.run()
    assert results == [(5.0, 7)]


def test_manual_event_succeed():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter():
        value = yield gate
        woken.append((env.now, value))

    def opener():
        yield env.timeout(3.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert woken == [(3.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_crash_raises():
    env = Environment()

    def crasher():
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(crasher())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_crash_propagates_to_waiting_parent():
    env = Environment()
    caught = []

    def crasher():
        yield env.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield env.process(crasher())
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["child died"]


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([env.timeout(3.0, "a"), env.timeout(1.0, "b")])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(3.0, ["a", "b"])]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([])
        results.append(values)

    env.process(proc())
    env.run()
    assert results == [[]]


def test_any_of_triggers_on_first():
    env = Environment()
    results = []

    def proc():
        value = yield env.any_of([env.timeout(3.0, "slow"), env.timeout(1.0, "fast")])
        results.append((env.now, value))

    env.process(proc())
    env.run()
    assert results == [(1.0, "fast")]


def test_any_of_reports_first_event():
    env = Environment()
    fast = env.timeout(1.0, "fast")
    slow = env.timeout(3.0, "slow")
    condition = env.any_of([slow, fast])
    env.run()
    assert condition.first is fast


def test_process_is_alive():
    env = Environment()

    def proc():
        yield env.timeout(5.0)

    process = env.process(proc())
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0
    env.run()
    assert env.peek() == float("inf")


def test_deterministic_interleaving_is_repeatable():
    def build():
        env = Environment()
        order = []

        def proc(label, delays):
            for delay in delays:
                yield env.timeout(delay)
                order.append((label, env.now))

        env.process(proc("x", [1.0, 2.0, 1.0]))
        env.process(proc("y", [2.0, 1.0, 2.0]))
        env.run()
        return order

    assert build() == build()
