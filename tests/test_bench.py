"""Tests for the benchmark harness, metrics, and reporting."""

import pytest

from repro.bench import LatencySummary, Metrics, run_benchmark
from repro.bench.report import format_row, print_table, ratio
from repro.sim.config import ClusterConfig
from repro.transactions import Outcome, Transaction
from repro.workloads import YCSBConfig, YCSBWorkload


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_basic_statistics(self):
        summary = LatencySummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.maximum == 4.0
        assert summary.p50 in (2.0, 3.0)

    def test_percentiles_ordered(self):
        samples = [float(v) for v in range(1, 101)]
        summary = LatencySummary.of(samples)
        assert summary.p50 <= summary.p90 <= summary.p95 <= summary.p99
        assert summary.p99 <= summary.maximum

    def test_single_sample(self):
        summary = LatencySummary.of([7.0])
        assert summary.p50 == summary.p99 == summary.maximum == 7.0


class TestMetrics:
    def make_txn(self, kind="w"):
        txn = Transaction(kind, 0, write_set=(("t", 1),) if kind == "w" else ())
        txn.add_timing("execute", 1.0)
        txn.add_timing("network", 0.5)
        return txn

    def test_record_commit(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True, remastered=True), 2.0, 10.0)
        assert metrics.commits == 1
        assert metrics.remastered_txns == 1
        assert metrics.latency("w").count == 1

    def test_uncommitted_ignored(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(False), 2.0, 10.0)
        assert metrics.commits == 0

    def test_throughput(self):
        metrics = Metrics()
        for index in range(10):
            metrics.record(self.make_txn(), Outcome(True), 1.0, float(index))
        assert metrics.throughput(1000.0) == pytest.approx(10.0)
        assert metrics.throughput(0.0) == 0.0

    def test_timeline_buckets(self):
        metrics = Metrics()
        for when in (10.0, 20.0, 110.0):
            metrics.record(self.make_txn(), Outcome(True), 1.0, when)
        timeline = metrics.timeline(bucket_ms=100.0, start=0.0, end=200.0)
        assert timeline[0] == (0.0, 20.0)  # 2 commits / 0.1 s
        assert timeline[1] == (100.0, 10.0)

    def test_breakdown_normalized(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True), 2.0, 1.0)
        breakdown = metrics.breakdown()
        assert pytest.approx(sum(breakdown.values())) == 1.0
        assert breakdown["execute"] == pytest.approx(0.5)
        assert breakdown["network"] == pytest.approx(0.25)
        assert breakdown["other"] == pytest.approx(0.25)  # untimed remainder

    def test_remaster_fraction(self):
        metrics = Metrics()
        metrics.record(self.make_txn(), Outcome(True, remastered=True), 1.0, 1.0)
        metrics.record(self.make_txn(), Outcome(True), 1.0, 2.0)
        assert metrics.remaster_fraction() == 0.5

    def test_combined_latency(self):
        metrics = Metrics()
        metrics.record(self.make_txn("w"), Outcome(True), 1.0, 1.0)
        metrics.record(self.make_txn("r"), Outcome(True), 3.0, 2.0)
        assert metrics.latency().count == 2
        assert metrics.latency().mean == 2.0
        assert metrics.txn_types() == ["r", "w"]


class TestReport:
    def test_ratio(self):
        assert ratio(10, 5) == 2.0
        assert ratio(1, 0) == float("inf")
        assert ratio(0, 0) == 0.0

    def test_format_row_aligns(self):
        row = format_row(["abc", 1.5, 10], [5, 8, 4])
        assert "abc" in row
        assert "1.50" in row

    def test_print_table_smoke(self, capsys):
        print_table("Title", ["a", "b"], [["x", 1.0], ["y", 2.0]])
        output = capsys.readouterr().out
        assert "Title" in output
        assert "x" in output
        assert "2.00" in output


class TestHarness:
    def small_workload(self):
        return YCSBWorkload(
            YCSBConfig(num_partitions=40, rmw_fraction=0.5, affinity_txns=50)
        )

    def test_run_produces_metrics(self):
        result = run_benchmark(
            "dynamast",
            self.small_workload(),
            num_clients=6,
            duration_ms=200.0,
            warmup_ms=50.0,
            cluster_config=ClusterConfig(num_sites=2),
        )
        assert result.throughput > 0
        assert result.metrics.commits > 0
        assert set(result.metrics.txn_types()) <= {"rmw", "scan"}
        assert len(result.site_utilization) == 2
        assert result.traffic_bytes.get("client", 0) > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark("bogus", self.small_workload())

    def test_deterministic_same_seed(self):
        def run():
            result = run_benchmark(
                "multi-master",
                self.small_workload(),
                num_clients=4,
                duration_ms=150.0,
                warmup_ms=0.0,
                cluster_config=ClusterConfig(num_sites=2),
            )
            return result.metrics.commits, result.throughput

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            result = run_benchmark(
                "dynamast",
                self.small_workload(),
                num_clients=4,
                duration_ms=150.0,
                warmup_ms=0.0,
                cluster_config=ClusterConfig(num_sites=2),
                seed=seed,
            )
            return result.metrics.commit_times

        assert run(1) != run(2)

    def test_events_fire(self):
        fired = []

        def event(system, workload):
            fired.append(system.env.now)

        run_benchmark(
            "dynamast",
            self.small_workload(),
            num_clients=2,
            duration_ms=100.0,
            warmup_ms=0.0,
            cluster_config=ClusterConfig(num_sites=2),
            events=[(50.0, event)],
        )
        assert fired == [50.0]

    def test_warmup_excludes_early_txns(self):
        full = run_benchmark(
            "dynamast",
            self.small_workload(),
            num_clients=4,
            duration_ms=200.0,
            warmup_ms=0.0,
            cluster_config=ClusterConfig(num_sites=2),
        )
        warm = run_benchmark(
            "dynamast",
            self.small_workload(),
            num_clients=4,
            duration_ms=200.0,
            warmup_ms=150.0,
            cluster_config=ClusterConfig(num_sites=2),
        )
        assert warm.metrics.commits < full.metrics.commits

    def test_load_data_populates_sites(self):
        workload = YCSBWorkload(YCSBConfig(num_partitions=5, affinity_txns=10))
        result = run_benchmark(
            "dynamast",
            workload,
            num_clients=1,
            duration_ms=50.0,
            warmup_ms=0.0,
            cluster_config=ClusterConfig(num_sites=2),
            load_data=True,
        )
        sites = result.system.sites
        assert all(site.database.row_count() >= 500 for site in sites)
