"""System-level behavioural scenarios from the paper's narrative."""

import pytest

from repro.partitioning.schemes import PartitionScheme
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction


def make_dynamast(num_sites=2, num_partitions=6, **config_overrides):
    cluster = Cluster(ClusterConfig(num_sites=num_sites, **config_overrides))
    scheme = PartitionScheme(lambda key: key[1] // 10, num_partitions)
    system = build_system("dynamast", cluster, scheme=scheme)
    return cluster, system


class TestFigure1Walkthrough:
    """The paper's Figure 1c example: T1 remasters, T2 amortizes, T3
    executes at a different site, and a concurrent T4 is not blocked by
    the remastering (unlike 2PC's Figure 1b)."""

    def test_dynamic_mastering_example(self):
        cluster, system = make_dynamast()
        selector = system.selector
        events = []

        # a -> partition 0 (site 0); b -> partition 1 (site 1);
        # c -> partition 2 (site 0).
        a, b, c = ("t", 5), ("t", 15), ("t", 25)

        def client_one():
            session = system.new_session(0)
            t1 = Transaction("T1", 0, write_set=(a, b))
            outcome = yield from system.submit(t1, session)
            events.append(("T1", cluster.env.now, outcome.remastered))
            t2 = Transaction("T2", 0, write_set=(a, b))
            outcome = yield from system.submit(t2, session)
            events.append(("T2", cluster.env.now, outcome.remastered))

        def client_two():
            session = system.new_session(1)
            t3 = Transaction("T3", 1, write_set=(c,))
            outcome = yield from system.submit(t3, session)
            events.append(("T3", cluster.env.now, outcome.remastered))

        cluster.env.process(client_one())
        cluster.env.process(client_two())
        cluster.env.run()

        by_name = {name: (when, remastered) for name, when, remastered in events}
        assert by_name["T1"][1] is True  # T1 required remastering
        assert by_name["T2"][1] is False  # T2 amortized it
        assert by_name["T3"][1] is False  # T3's write set was single-sited
        # T3 (different site, disjoint data) was not delayed by T1's
        # remastering: it finished before T1 despite starting together.
        assert by_name["T3"][0] < by_name["T1"][0]

    def test_concurrent_writer_not_blocked_by_remastering(self):
        """Figure 1's T4: updates to item B proceed while A is being
        remastered — coordination happens outside transaction
        boundaries."""
        cluster, system = make_dynamast(num_sites=2)
        finish = {}

        def remastering_client():
            session = system.new_session(0)
            txn = Transaction("T1", 0, write_set=(("t", 5), ("t", 15)))
            yield from system.submit(txn, session)
            finish["T1"] = cluster.env.now

        def independent_writer():
            session = system.new_session(1)
            txn = Transaction("T4", 1, write_set=(("t", 16),))  # same partition as b
            yield from system.submit(txn, session)
            finish["T4"] = cluster.env.now

        cluster.env.process(remastering_client())
        cluster.env.process(independent_writer())
        cluster.env.run()
        # T4 writes partition 1 while partition 1 is being granted away
        # only if T1 moved it; either way it must finish well before
        # any 2PC-style window (T1 itself takes ~3-4 ms with remaster).
        assert finish["T4"] <= finish["T1"] + 2.0


class TestReadsNeverBlockOnWrites:
    def test_scan_during_long_update(self):
        cluster, system = make_dynamast()
        done = {}

        def writer():
            session = system.new_session(0)
            txn = Transaction("w", 0, write_set=(("t", 5),), extra_cpu_ms=30.0)
            yield from system.submit(txn, session)
            done["write"] = cluster.env.now

        def reader():
            yield cluster.env.timeout(2.0)
            session = system.new_session(1)
            txn = Transaction("r", 1, read_set=(("t", 5),))
            yield from system.submit(txn, session)
            done["read"] = cluster.env.now

        cluster.env.process(writer())
        cluster.env.process(reader())
        cluster.env.run()
        # MVCC: the read returned long before the 30 ms write committed.
        assert done["read"] < done["write"]


class TestRemasteringParallelism:
    def test_disjoint_remasterings_overlap(self):
        """Algorithm 1's release/grant chains for different source
        sites run in parallel; two independent remasterings do not
        serialize behind each other."""
        cluster, system = make_dynamast(num_sites=2, num_partitions=6)
        finish = []

        def client(client_id, keys):
            session = system.new_session(client_id)
            txn = Transaction("w", client_id, write_set=keys)
            yield from system.submit(txn, session)
            finish.append(cluster.env.now)

        # Two disjoint cross-site write sets submitted simultaneously.
        cluster.env.process(client(0, (("t", 5), ("t", 15))))
        cluster.env.process(client(1, (("t", 25), ("t", 35))))
        cluster.env.run()
        assert len(finish) == 2
        solo_estimate = max(finish)
        # If they serialized, the second would finish ~2x the first.
        assert max(finish) < 1.7 * min(finish)


class TestWriteSetSpanningThreeSites:
    def test_multi_source_remastering(self):
        cluster, system = make_dynamast(num_sites=3, num_partitions=6)
        session = system.new_session(0)
        # Partitions 0,1,2 start at sites 0,1,2 (round robin).
        txn = Transaction("w", 0, write_set=(("t", 5), ("t", 15), ("t", 25)))

        def run():
            return (yield from system.submit(txn, session))

        process = cluster.env.process(run())
        outcome = cluster.env.run_until_complete(process)
        assert outcome.committed and outcome.remastered
        masters = system.selector.table.masters_of([0, 1, 2])
        assert len(masters) == 1
        # Two release/grant chains ran (two source sites).
        assert system.selector.remaster_operations == 2


class TestSessionAcrossSites:
    def test_write_then_read_at_other_site_waits_for_freshness(self):
        """SSSI: a read routed anywhere must reflect the client's own
        last write, waiting on the replica if needed."""
        cluster, system = make_dynamast(num_sites=2)
        session = system.new_session(0)
        checked = []

        def client():
            txn = Transaction("w", 0, write_set=(("t", 5),))
            yield from system.submit(txn, session)
            committed_vv = session.cvv.copy()
            for _ in range(10):
                read = Transaction("r", 0, read_set=(("t", 5),))
                yield from system.submit(read, session)
                assert session.cvv.dominates(committed_vv)
            checked.append(True)

        process = cluster.env.process(client())
        cluster.env.run_until_complete(process)
        assert checked


class TestUtilizationAccounting:
    def test_busy_sites_report_utilization(self):
        cluster, system = make_dynamast()
        session = system.new_session(0)

        def client():
            for index in range(20):
                txn = Transaction("w", 0, write_set=(("t", index % 60),))
                yield from system.submit(txn, session)

        process = cluster.env.process(client())
        cluster.env.run_until_complete(process)
        utilizations = [site.utilization() for site in cluster.sites]
        assert all(0.0 <= value <= 1.0 for value in utilizations)
        assert max(utilizations) > 0.0
