"""Failure-injection tests: crash a data site and recover it in place.

Paper §V-C: any data site recovers independently by initializing state
from an existing replica / the redo logs and replaying from the
positions indicated by the site version vector; mastership state is
reconstructed from the sequence of release and grant operations.
"""

from repro.partitioning.schemes import PartitionScheme
from repro.replication import recover_site
from repro.sim.config import ClusterConfig
from repro.systems import Cluster, build_system
from repro.transactions import Transaction


def make_dynamast(num_sites=3):
    cluster = Cluster(ClusterConfig(num_sites=num_sites))
    scheme = PartitionScheme(lambda key: key[1] // 10, num_partitions=6)
    system = build_system("dynamast", cluster, scheme=scheme)
    return cluster, system


def run_writes(cluster, system, specs, client_id=0):
    session = system.new_session(client_id)

    def client():
        for keys in specs:
            txn = Transaction(
                "w", client_id, write_set=tuple(("t", k) for k in keys)
            )
            yield from system.submit(txn, session)

    process = cluster.env.process(client())
    cluster.env.run_until_complete(process)
    return session


class TestSiteRecovery:
    def test_recovered_site_matches_crashed_site(self):
        cluster, system = make_dynamast()
        initial = dict(system.selector.table.snapshot())
        run_writes(cluster, system, [(5, 15), (25, 35), (5, 45), (15, 55)])
        cluster.run(until=cluster.env.now + 20.0)  # drain refreshes

        crashed = cluster.sites[1]
        expected_svv = crashed.svv.to_tuple()
        expected_mastered = set(crashed.mastered)

        replacement = recover_site(cluster, 1, initial)
        assert replacement is cluster.sites[1]
        assert replacement.svv.to_tuple() == expected_svv
        assert replacement.mastered == expected_mastered
        # Every record's latest value matches the crashed state.
        for table in crashed.database.tables.values():
            for record in table:
                recovered = replacement.database.record(record.key)
                assert recovered is not None
                assert recovered.latest.value == record.latest.value

    def test_recovered_site_continues_processing(self):
        cluster, system = make_dynamast()
        initial = dict(system.selector.table.snapshot())
        run_writes(cluster, system, [(5, 15), (25, 35)])
        cluster.run(until=cluster.env.now + 20.0)

        replacement = recover_site(cluster, 1, initial)
        before = replacement.svv.to_tuple()

        # New work flows through the recovered cluster.
        run_writes(cluster, system, [(5, 25), (15, 35), (45, 55)], client_id=7)
        cluster.run(until=cluster.env.now + 20.0)

        assert replacement.svv.total() > sum(before)
        # All sites converge again.
        svvs = {site.svv.to_tuple() for site in cluster.sites}
        assert len(svvs) == 1

    def test_recovered_site_can_execute_updates(self):
        cluster, system = make_dynamast()
        initial = dict(system.selector.table.snapshot())
        run_writes(cluster, system, [(5, 15)])
        cluster.run(until=cluster.env.now + 20.0)

        replacement = recover_site(cluster, 1, initial)
        if not replacement.mastered:
            # Give it something to master via the normal protocol.
            session = system.new_session(9)
            run_writes(cluster, system, [(15, 25)], client_id=9)
            cluster.run(until=cluster.env.now + 20.0)

        commits_before = replacement.commits

        def direct_write():
            partition = next(iter(replacement.mastered), None)
            if partition is None:
                return None
            key = ("t", partition * 10 + 3)
            txn = Transaction("w", 3, write_set=(key,))
            return (yield from replacement.execute_update(txn))

        process = cluster.env.process(direct_write())
        tvv = cluster.env.run_until_complete(process)
        if tvv is not None:
            assert replacement.commits == commits_before + 1
            # The new commit's sequence continues the old log densely.
            assert replacement.log.records[-1].seq == tvv[1]
