"""Tests for the perf regression harness and host-cost surfaces.

Covers the two halves of the wall-clock contract:

* :class:`repro.bench.harness.RunResult` reports host cost
  (``wall_clock_s``, ``events_processed``) without perturbing simulated
  results — repeated runs agree on every simulated quantity while the
  host measurements ride along outside the fingerprint payload;
* :mod:`repro.bench.perf` — the pinned matrix, calibration
  normalization, report comparison, and the committed
  ``BENCH_perf.json`` staying consistent with the matrix in code.
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_benchmark
import repro.bench.perf as perf
from repro.bench.perf import (
    DEFAULT_TOLERANCE,
    PERF_MATRIX,
    QUICK_CASES,
    SCHEMA,
    _normalize,
    attach_baseline,
    compare_reports,
    load_report,
    run_sweep,
    select_cases,
    sweep_levels,
)
from repro.sim.config import ClusterConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _small_run():
    return run_benchmark(
        "dynamast",
        YCSBWorkload(YCSBConfig(num_partitions=40, rmw_fraction=0.5)),
        num_clients=4,
        duration_ms=200.0,
        warmup_ms=50.0,
        cluster_config=ClusterConfig(num_sites=2),
        seed=3,
    )


class TestRunResultHostMetrics:
    def test_wall_clock_and_event_count_populated(self):
        result = _small_run()
        assert result.wall_clock_s > 0.0
        assert result.events_processed > 0

    def test_host_metrics_excluded_from_simulated_results(self):
        """Repeat runs agree bit-for-bit on everything simulated.

        ``wall_clock_s`` is a host measurement and may differ between
        the two runs; nothing that feeds a fingerprint may. The event
        count is host-side bookkeeping but still deterministic: the
        same seed drives the same event sequence.
        """
        first = _small_run()
        second = _small_run()
        assert first.metrics.commits == second.metrics.commits
        assert first.metrics.commit_times == second.metrics.commit_times
        assert first.latency().mean == second.latency().mean
        assert first.traffic_bytes == second.traffic_bytes
        assert first.events_processed == second.events_processed


class TestPerfMatrix:
    def test_case_names_unique(self):
        names = [case.name for case in PERF_MATRIX]
        assert len(names) == len(set(names))

    def test_quick_subset_is_drawn_from_the_matrix(self):
        names = {case.name for case in PERF_MATRIX}
        assert set(QUICK_CASES) <= names
        quick = select_cases(quick=True)
        assert [case.name for case in quick] == [
            case.name for case in PERF_MATRIX if case.name in QUICK_CASES
        ]

    def test_every_case_builds_its_workload(self):
        for case in PERF_MATRIX:
            workload = case.build_workload()
            assert workload.scheme is not None


class TestNormalize:
    def test_faster_host_is_scaled_up(self):
        # Twice the calibration score -> the same wall seconds count
        # double when expressed in baseline-machine time.
        assert _normalize(1.0, 2000.0, 1000.0) == pytest.approx(2.0)

    def test_slower_host_is_scaled_down(self):
        assert _normalize(2.0, 500.0, 1000.0) == pytest.approx(1.0)

    def test_missing_calibration_is_a_passthrough(self):
        assert _normalize(1.5, 0.0, 1000.0) == 1.5
        assert _normalize(1.5, 1000.0, 0.0) == 1.5


def _report(cases, kops=1000.0):
    return {
        "schema": SCHEMA,
        "machine": {"calibration_kops": kops},
        "cases": {
            name: {"wall_s": wall, "events_per_s": 1, "peak_rss_kb": 1}
            for name, wall in cases.items()
        },
    }


class TestCompareReports:
    def test_within_tolerance_is_not_flagged(self):
        committed = _report({"a": 1.0})
        current = _report({"a": 1.0 + DEFAULT_TOLERANCE - 0.01})
        rows = compare_reports(current, committed)
        assert [row["regressed"] for row in rows] == [False]

    def test_beyond_tolerance_is_flagged(self):
        committed = _report({"a": 1.0, "b": 2.0})
        current = _report({"a": 1.5, "b": 2.0})
        rows = {row["case"]: row for row in compare_reports(current, committed)}
        assert rows["a"]["regressed"] is True
        assert rows["b"]["regressed"] is False

    def test_calibration_normalization_excuses_a_slow_host(self):
        committed = _report({"a": 1.0}, kops=1000.0)
        # Host is half as fast and the run took twice as long: the code
        # did not regress, and normalization must agree.
        current = _report({"a": 2.0}, kops=500.0)
        rows = compare_reports(current, committed)
        assert rows[0]["regressed"] is False
        assert rows[0]["normalized_wall_s"] == pytest.approx(1.0)

    def test_unshared_cases_are_skipped(self):
        committed = _report({"a": 1.0})
        current = _report({"b": 1.0})
        assert compare_reports(current, committed) == []


class TestAttachBaseline:
    def test_embeds_baseline_and_mean_reduction(self):
        payload = _report({"a": 0.5, "b": 1.0})
        baseline = _report({"a": 1.0, "b": 2.0})
        attach_baseline(payload, baseline, "before")
        assert payload["baseline"]["label"] == "before"
        assert set(payload["baseline"]["cases"]) == {"a", "b"}
        comparison = payload["comparison"]
        assert comparison["vs"] == "before"
        assert comparison["per_case"]["a"]["speedup"] == pytest.approx(2.0)
        assert comparison["mean_wall_reduction"] == pytest.approx(0.5)


def _fake_executor(elapsed_by_level, fingerprints=None, wall=1.0):
    """Stand-in for ``_run_cases``: fabricated timings, no simulation.

    ``fingerprints`` maps ``(case_name, jobs)`` to a fingerprint for
    parity-violation tests; unmapped cases fingerprint identically at
    every level.
    """

    def execute(cases, repeats, jobs, progress):
        results = {}
        for name in cases:
            row = {
                "fingerprint": (fingerprints or {}).get((name, jobs), f"fp-{name}"),
                "wall_total_s": wall,
                "peak_rss_kb": 100,
            }
            results[name] = row
            if progress is not None:
                progress(name, row)
        return results, elapsed_by_level[jobs]

    return execute


class TestSweepLevels:
    def test_one_core_runs_serial_only(self):
        assert sweep_levels(1) == [1]

    def test_two_always_included(self):
        assert sweep_levels(2) == [1, 2]
        assert sweep_levels(3) == [1, 2, 3]
        assert sweep_levels(8) == [1, 2, 8]

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            sweep_levels(0)


class TestRunSweep:
    def _sweep(self, monkeypatch, **kwargs):
        monkeypatch.setattr(perf, "calibrate", lambda: 1000.0)
        kwargs.setdefault("emit", None)
        return run_sweep(["a", "b"], repeats=1, **kwargs)

    def test_sweep_rows_and_arithmetic(self, monkeypatch):
        payload = self._sweep(
            monkeypatch,
            cores=4,
            executor=_fake_executor({1: 8.0, 2: 5.0, 4: 2.0}),
        )
        rows = {row["jobs"]: row for row in payload["machine"]["parallel"]["sweep"]}
        assert set(rows) == {1, 2, 4}
        # serial_equivalent = sum of in-worker walls = 2 cases x 1.0s.
        assert rows[1]["fanout_speedup"] == pytest.approx(1.0)
        assert rows[2]["fanout_speedup"] == pytest.approx(8.0 / 5.0)
        assert rows[4]["fanout_speedup"] == pytest.approx(4.0)
        assert rows[4]["speedup"] == pytest.approx(2.0 / 2.0)
        assert rows[4]["efficiency"] == pytest.approx(1.0)
        # The headline block is the best level by worker-concurrency.
        assert payload["machine"]["parallel"]["jobs"] == 4
        assert payload["settings"] == {"repeats": 1, "jobs": 1, "cores": 4}
        # The canonical per-case rows come from the serial pass.
        assert set(payload["cases"]) == {"a", "b"}

    def test_fingerprint_parity_violation_raises(self, monkeypatch):
        with pytest.raises(RuntimeError, match="parity violated at jobs=2: b"):
            self._sweep(
                monkeypatch,
                cores=2,
                executor=_fake_executor(
                    {1: 4.0, 2: 3.0}, fingerprints={("b", 2): "divergent"}
                ),
            )

    def test_limited_by_host_flag(self, monkeypatch):
        executor = _fake_executor({1: 4.0, 2: 3.0})
        monkeypatch.setattr(perf.os, "cpu_count", lambda: 1)
        limited = self._sweep(monkeypatch, cores=2, executor=executor)
        assert limited["machine"]["parallel"]["limited_by_host"] is True
        monkeypatch.setattr(perf.os, "cpu_count", lambda: 8)
        roomy = self._sweep(monkeypatch, cores=2, executor=executor)
        assert roomy["machine"]["parallel"]["limited_by_host"] is False


class TestReportFile:
    def test_schema_mismatch_is_rejected(self, tmp_path):
        bad = tmp_path / "report.json"
        bad.write_text(json.dumps({"schema": "repro-perf/0", "cases": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_report(str(bad))

    def test_committed_report_matches_the_pinned_matrix(self):
        """BENCH_perf.json must describe exactly the matrix in code.

        If a case is added, removed, or renamed, the committed report
        has to be refreshed in the same change (EXPERIMENTS.md,
        "Performance baseline").
        """
        payload = load_report(str(REPO_ROOT / "BENCH_perf.json"))
        assert set(payload["cases"]) == {case.name for case in PERF_MATRIX}
        for case in payload["cases"].values():
            assert case["wall_s"] > 0
            assert case["sim_events"] > 0
            assert case["commits"] > 0
        if "comparison" in payload:
            assert set(payload["comparison"]["per_case"]) <= set(payload["cases"])

    def test_previous_schema_still_loads(self, tmp_path):
        """/2 reports stay loadable so ``--baseline-from`` can compare a
        refreshed /3 report against the pre-change baseline."""
        old = tmp_path / "report.json"
        old.write_text(json.dumps({"schema": "repro-perf/2", "cases": {}}))
        assert load_report(str(old))["schema"] == "repro-perf/2"

    def test_committed_report_carries_the_parallel_sweep(self):
        """The committed report must include the measured jobs sweep
        (EXPERIMENTS.md, "Parallel execution") with worker-concurrency
        speedup above 1 at jobs=2."""
        payload = load_report(str(REPO_ROOT / "BENCH_perf.json"))
        parallel = payload["machine"]["parallel"]
        rows = {row["jobs"]: row for row in parallel["sweep"]}
        assert {1, 2} <= set(rows)
        assert rows[2]["speedup"] > 1.0
        assert rows[2]["elapsed_s"] > 0
        assert "limited_by_host" in parallel
        assert parallel["host_cores"] >= 1
