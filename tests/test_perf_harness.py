"""Tests for the perf regression harness and host-cost surfaces.

Covers the two halves of the wall-clock contract:

* :class:`repro.bench.harness.RunResult` reports host cost
  (``wall_clock_s``, ``events_processed``) without perturbing simulated
  results — repeated runs agree on every simulated quantity while the
  host measurements ride along outside the fingerprint payload;
* :mod:`repro.bench.perf` — the pinned matrix, calibration
  normalization, report comparison, and the committed
  ``BENCH_perf.json`` staying consistent with the matrix in code.
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_benchmark
from repro.bench.perf import (
    DEFAULT_TOLERANCE,
    PERF_MATRIX,
    QUICK_CASES,
    SCHEMA,
    _normalize,
    attach_baseline,
    compare_reports,
    load_report,
    select_cases,
)
from repro.sim.config import ClusterConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _small_run():
    return run_benchmark(
        "dynamast",
        YCSBWorkload(YCSBConfig(num_partitions=40, rmw_fraction=0.5)),
        num_clients=4,
        duration_ms=200.0,
        warmup_ms=50.0,
        cluster_config=ClusterConfig(num_sites=2),
        seed=3,
    )


class TestRunResultHostMetrics:
    def test_wall_clock_and_event_count_populated(self):
        result = _small_run()
        assert result.wall_clock_s > 0.0
        assert result.events_processed > 0

    def test_host_metrics_excluded_from_simulated_results(self):
        """Repeat runs agree bit-for-bit on everything simulated.

        ``wall_clock_s`` is a host measurement and may differ between
        the two runs; nothing that feeds a fingerprint may. The event
        count is host-side bookkeeping but still deterministic: the
        same seed drives the same event sequence.
        """
        first = _small_run()
        second = _small_run()
        assert first.metrics.commits == second.metrics.commits
        assert first.metrics.commit_times == second.metrics.commit_times
        assert first.latency().mean == second.latency().mean
        assert first.traffic_bytes == second.traffic_bytes
        assert first.events_processed == second.events_processed


class TestPerfMatrix:
    def test_case_names_unique(self):
        names = [case.name for case in PERF_MATRIX]
        assert len(names) == len(set(names))

    def test_quick_subset_is_drawn_from_the_matrix(self):
        names = {case.name for case in PERF_MATRIX}
        assert set(QUICK_CASES) <= names
        quick = select_cases(quick=True)
        assert [case.name for case in quick] == [
            case.name for case in PERF_MATRIX if case.name in QUICK_CASES
        ]

    def test_every_case_builds_its_workload(self):
        for case in PERF_MATRIX:
            workload = case.build_workload()
            assert workload.scheme is not None


class TestNormalize:
    def test_faster_host_is_scaled_up(self):
        # Twice the calibration score -> the same wall seconds count
        # double when expressed in baseline-machine time.
        assert _normalize(1.0, 2000.0, 1000.0) == pytest.approx(2.0)

    def test_slower_host_is_scaled_down(self):
        assert _normalize(2.0, 500.0, 1000.0) == pytest.approx(1.0)

    def test_missing_calibration_is_a_passthrough(self):
        assert _normalize(1.5, 0.0, 1000.0) == 1.5
        assert _normalize(1.5, 1000.0, 0.0) == 1.5


def _report(cases, kops=1000.0):
    return {
        "schema": SCHEMA,
        "machine": {"calibration_kops": kops},
        "cases": {
            name: {"wall_s": wall, "events_per_s": 1, "peak_rss_kb": 1}
            for name, wall in cases.items()
        },
    }


class TestCompareReports:
    def test_within_tolerance_is_not_flagged(self):
        committed = _report({"a": 1.0})
        current = _report({"a": 1.0 + DEFAULT_TOLERANCE - 0.01})
        rows = compare_reports(current, committed)
        assert [row["regressed"] for row in rows] == [False]

    def test_beyond_tolerance_is_flagged(self):
        committed = _report({"a": 1.0, "b": 2.0})
        current = _report({"a": 1.5, "b": 2.0})
        rows = {row["case"]: row for row in compare_reports(current, committed)}
        assert rows["a"]["regressed"] is True
        assert rows["b"]["regressed"] is False

    def test_calibration_normalization_excuses_a_slow_host(self):
        committed = _report({"a": 1.0}, kops=1000.0)
        # Host is half as fast and the run took twice as long: the code
        # did not regress, and normalization must agree.
        current = _report({"a": 2.0}, kops=500.0)
        rows = compare_reports(current, committed)
        assert rows[0]["regressed"] is False
        assert rows[0]["normalized_wall_s"] == pytest.approx(1.0)

    def test_unshared_cases_are_skipped(self):
        committed = _report({"a": 1.0})
        current = _report({"b": 1.0})
        assert compare_reports(current, committed) == []


class TestAttachBaseline:
    def test_embeds_baseline_and_mean_reduction(self):
        payload = _report({"a": 0.5, "b": 1.0})
        baseline = _report({"a": 1.0, "b": 2.0})
        attach_baseline(payload, baseline, "before")
        assert payload["baseline"]["label"] == "before"
        assert set(payload["baseline"]["cases"]) == {"a", "b"}
        comparison = payload["comparison"]
        assert comparison["vs"] == "before"
        assert comparison["per_case"]["a"]["speedup"] == pytest.approx(2.0)
        assert comparison["mean_wall_reduction"] == pytest.approx(0.5)


class TestReportFile:
    def test_schema_mismatch_is_rejected(self, tmp_path):
        bad = tmp_path / "report.json"
        bad.write_text(json.dumps({"schema": "repro-perf/0", "cases": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_report(str(bad))

    def test_committed_report_matches_the_pinned_matrix(self):
        """BENCH_perf.json must describe exactly the matrix in code.

        If a case is added, removed, or renamed, the committed report
        has to be refreshed in the same change (EXPERIMENTS.md,
        "Performance baseline").
        """
        payload = load_report(str(REPO_ROOT / "BENCH_perf.json"))
        assert set(payload["cases"]) == {case.name for case in PERF_MATRIX}
        for case in payload["cases"].values():
            assert case["wall_s"] > 0
            assert case["sim_events"] > 0
            assert case["commits"] > 0
        if "comparison" in payload:
            assert set(payload["comparison"]["per_case"]) <= set(payload["cases"])
