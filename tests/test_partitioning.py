"""Tests for partition schemes and the Schism-style partitioner."""

import random

import pytest

from repro.partitioning import PartitionScheme, SchismPartitioner
from repro.transactions import Transaction


def simple_scheme(num_partitions=12, keys_per_partition=10):
    return PartitionScheme(lambda key: key[1] // keys_per_partition, num_partitions)


class TestPartitionScheme:
    def test_partition_lookup(self):
        scheme = simple_scheme()
        assert scheme.partition(("t", 0)) == 0
        assert scheme.partition(("t", 25)) == 2

    def test_out_of_range_partition_rejected(self):
        scheme = simple_scheme(num_partitions=2)
        with pytest.raises(ValueError):
            scheme.partition(("t", 999))

    def test_static_table_returns_none(self):
        scheme = PartitionScheme(
            lambda key: None if key[0] == "item" else key[1], 10
        )
        assert scheme.partition(("item", 3)) is None
        assert scheme.partitions_of([("item", 3), ("t", 4)]) == {4}

    def test_range_placement_contiguous(self):
        scheme = simple_scheme(num_partitions=12)
        placement = scheme.range_placement(3)
        assert [placement[p] for p in range(12)] == [0] * 4 + [1] * 4 + [2] * 4

    def test_range_placement_uneven(self):
        scheme = simple_scheme(num_partitions=10)
        placement = scheme.range_placement(4)
        assert set(placement.values()) <= {0, 1, 2, 3}
        assert len(placement) == 10

    def test_round_robin_placement(self):
        scheme = simple_scheme(num_partitions=6)
        placement = scheme.round_robin_placement(3)
        assert [placement[p] for p in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_single_site_placement(self):
        scheme = simple_scheme(num_partitions=4)
        assert set(scheme.single_site_placement(2).values()) == {2}

    def test_hash_placement_deterministic(self):
        scheme = simple_scheme()
        assert scheme.hash_placement(4) == scheme.hash_placement(4)

    def test_owner_lookup(self):
        scheme = simple_scheme(num_partitions=4)
        placement = scheme.range_placement(2)
        owner_of = scheme.owner_lookup(placement)
        assert owner_of(("t", 5)) == 0
        assert owner_of(("t", 35)) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PartitionScheme(lambda key: 0, 0)
        with pytest.raises(ValueError):
            simple_scheme().range_placement(0)


class TestSchism:
    def test_coaccessed_partitions_colocated(self):
        """Partitions always accessed together end up at one site."""
        partitioner = SchismPartitioner(num_partitions=8, num_sites=2)
        # Two strongly-coupled clusters: {0,1,2,3} and {4,5,6,7}.
        for _ in range(50):
            partitioner.observe([0, 1, 2, 3])
            partitioner.observe([4, 5, 6, 7])
        placement = partitioner.placement()
        first = {placement[p] for p in (0, 1, 2, 3)}
        second = {placement[p] for p in (4, 5, 6, 7)}
        assert len(first) == 1
        assert len(second) == 1
        assert first != second
        assert partitioner.cut_weight(placement) == 0

    def test_confirms_range_partitioning_for_range_workload(self):
        """The paper uses Schism to confirm range placement minimizes
        distributed transactions for range-correlated workloads."""
        rng = random.Random(1)
        partitioner = SchismPartitioner(num_partitions=16, num_sites=4)
        for _ in range(400):
            base = rng.randrange(16)
            neighbour = min(15, base + rng.randint(0, 1))
            partitioner.observe([base, neighbour])
        placement = partitioner.placement()
        scheme = PartitionScheme(lambda key: key[1], 16)
        range_placement = scheme.range_placement(4)
        schism_cut = partitioner.cut_weight(placement)
        range_cut = partitioner.cut_weight(range_placement)
        round_robin_cut = partitioner.cut_weight(scheme.round_robin_placement(4))
        # Schism's cut is comparable to range partitioning's and far
        # better than scattering.
        assert schism_cut <= range_cut * 1.5
        assert schism_cut < round_robin_cut / 2

    def test_observe_workload_via_transactions(self):
        partitioner = SchismPartitioner(num_partitions=4, num_sites=2)
        scheme = PartitionScheme(lambda key: key[1], 4)
        txns = [
            Transaction("w", 0, write_set=(("t", 0), ("t", 1))),
            Transaction("w", 0, write_set=(("t", 2), ("t", 3))),
        ]
        partitioner.observe_workload(txns, scheme.partition)
        assert partitioner.graph.has_edge(0, 1)
        assert partitioner.graph.has_edge(2, 3)
        assert not partitioner.graph.has_edge(1, 2)

    def test_rebalance_moves_weight_off_hot_site(self):
        partitioner = SchismPartitioner(num_partitions=6, num_sites=2)
        # Partition 0 is extremely hot and isolated; 1-5 form a cluster.
        for _ in range(100):
            partitioner.observe([0])
        for _ in range(20):
            partitioner.observe([1, 2, 3, 4, 5])
        placement = partitioner.placement()
        # The hot partition should not share a site with the whole
        # cluster (load balance repair).
        cluster_sites = {placement[p] for p in (1, 2, 3, 4, 5)}
        assert placement[0] not in cluster_sites or len(cluster_sites) > 1

    def test_invalid_sites(self):
        with pytest.raises(ValueError):
            SchismPartitioner(num_partitions=4, num_sites=0)

    def test_placement_covers_all_partitions(self):
        partitioner = SchismPartitioner(num_partitions=9, num_sites=3)
        partitioner.observe([1, 2])
        placement = partitioner.placement()
        assert set(placement) == set(range(9))
        assert set(placement.values()) <= {0, 1, 2}
