"""Tests for benchmark result export."""

import csv
import io
import json

import pytest

from repro.bench.export import run_to_row, rows_from, to_csv, to_json, write_csv, write_json
from repro.bench.harness import run_benchmark
from repro.sim.config import ClusterConfig
from repro.workloads import YCSBConfig, YCSBWorkload


@pytest.fixture(scope="module")
def sample_run():
    return run_benchmark(
        "dynamast",
        YCSBWorkload(YCSBConfig(num_partitions=30, affinity_txns=40)),
        num_clients=4,
        duration_ms=200.0,
        warmup_ms=50.0,
        cluster_config=ClusterConfig(num_sites=2),
    )


class TestExport:
    def test_run_to_row(self, sample_run):
        row = run_to_row(sample_run)
        assert row["system"] == "dynamast"
        assert row["workload"] == "ycsb"
        assert row["throughput"] > 0
        assert 0 <= row["remaster_rate"] <= 1

    def test_rows_from_mapping(self, sample_run):
        rows = rows_from({"a": sample_run, "b": sample_run})
        assert len(rows) == 2
        assert {row["label"] for row in rows} == {"a", "b"}

    def test_rows_from_nested_mapping(self, sample_run):
        rows = rows_from({"outer": {"inner": sample_run}})
        assert len(rows) == 1
        assert rows[0]["label"] == "inner"

    def test_rows_from_invalid(self):
        with pytest.raises(TypeError):
            rows_from(42)

    def test_json_round_trip(self, sample_run):
        data = json.loads(to_json(sample_run))
        assert isinstance(data, list)
        assert data[0]["system"] == "dynamast"

    def test_csv_parses(self, sample_run):
        text = to_csv({"x": sample_run})
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["label"] == "x"
        assert float(rows[0]["throughput"]) > 0

    def test_selector_counter_columns(self, sample_run):
        row = run_to_row(sample_run)
        assert row["updates_routed"] > 0
        assert row["updates_remastered"] >= 0
        assert row["remaster_operations"] >= 0
        assert row["partitions_moved"] >= 0

    def test_mastery_columns_for_ledger_observed_runs(self):
        from repro.obs.mastery import DecisionLedger

        ledger = DecisionLedger()
        observed = run_benchmark(
            "dynamast",
            YCSBWorkload(YCSBConfig(num_partitions=30, affinity_txns=40)),
            num_clients=4, duration_ms=200.0, warmup_ms=50.0,
            cluster_config=ClusterConfig(num_sites=2), ledger=ledger,
        )
        rows = rows_from(observed)
        row = rows[0]
        for name in ("mastery_locality_share", "mastery_entropy",
                     "mastery_churn_partitions", "mastery_convergence_ms"):
            assert name in row
        assert 0.0 <= row["mastery_locality_share"] <= 1.0
        text = to_csv({"observed": observed})
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert "mastery_locality_share" in parsed[0]

    def test_plain_runs_keep_exact_schema(self, sample_run):
        """Ledger-off exports gain no mastery_* columns."""
        row = run_to_row(sample_run)
        rows = rows_from(sample_run)
        assert not any(key.startswith("mastery_") for key in rows[0])
        assert not any(key.startswith("mastery_") for key in row)

    def test_write_files(self, sample_run, tmp_path):
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        write_json(sample_run, str(json_path))
        write_csv(sample_run, str(csv_path))
        assert json.loads(json_path.read_text())
        assert "throughput" in csv_path.read_text()
