"""Tests for the span tracer: recording, nesting, aggregation."""

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.transactions import Outcome, Transaction


def make_txn(kind="rmw"):
    return Transaction(kind, client_id=0, write_set=(("t", 1),))


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.span("execute", 0.0, 1.0, track="site0", txn=txn)
        tracer.instant("abort", 1.0, txn=txn)
        tracer.txn_end(txn, Outcome(committed=True), 1.0)
        assert not hasattr(tracer, "spans")

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_real_tracer_substitutes(self):
        assert issubclass(Tracer, NullTracer)
        assert Tracer().enabled


class TestTxnRecords:
    def test_begin_end_roundtrip(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 10.0)
        tracer.txn_end(txn, Outcome(committed=True, remastered=True), 14.0)
        record = tracer.txns[txn.txn_id]
        assert record.begin == 10.0
        assert record.end == 14.0
        assert record.latency == 4.0
        assert record.committed is True
        assert record.remastered is True
        assert record.recorded is True

    def test_warmup_txn_not_recorded(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.txn_end(txn, Outcome(committed=True), 1.0, recorded=False)
        assert tracer.txns[txn.txn_id].recorded is False

    def test_abort_emits_instant_and_counts(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.txn_end(txn, Outcome(committed=False), 2.0)
        assert tracer.abort_count() == 1
        assert tracer.txns[txn.txn_id].recorded is False
        names = [instant.name for instant in tracer.instants]
        assert "abort" in names

    def test_end_without_begin_synthesizes_envelope(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_end(txn, Outcome(committed=True), 5.0)
        record = tracer.txns[txn.txn_id]
        assert record.begin == record.end == 5.0
        assert record.latency == 0.0


class TestSpanTree:
    def test_spans_sorted_by_start_then_length(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("inner", 1.0, 2.0, txn=txn)
        tracer.span("outer", 1.0, 5.0, txn=txn)
        tracer.span("early", 0.0, 0.5, txn=txn)
        names = [span.name for span in tracer.spans_of(txn.txn_id)]
        assert names == ["early", "outer", "inner"]

    def test_containment_nesting(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("route", 0.0, 10.0, txn=txn)
        tracer.span("release", 1.0, 4.0, txn=txn)
        tracer.span("grant", 4.0, 8.0, txn=txn)
        tracer.span("lock_wait", 1.5, 2.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["route"]
        children = [child.name for child in roots[0].children]
        assert children == ["release", "grant"]
        release = roots[0].children[0]
        assert [child.name for child in release.children] == ["lock_wait"]

    def test_siblings_stay_siblings(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("a", 0.0, 2.0, txn=txn)
        tracer.span("b", 2.0, 4.0, txn=txn)
        tracer.span("c", 4.0, 6.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["a", "b", "c"]
        assert all(not node.children for node in roots)

    def test_zero_width_child_at_boundary(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("outer", 0.0, 3.0, txn=txn)
        tracer.span("edge", 3.0, 3.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == ["edge"]

    def test_self_time_and_walk(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("outer", 0.0, 10.0, txn=txn)
        tracer.span("inner", 2.0, 5.0, txn=txn)
        root = tracer.span_tree(txn.txn_id)[0]
        assert root.self_time == 7.0
        paths = [path for path, _ in root.walk("rmw")]
        assert paths == ["rmw/outer", "rmw/outer/inner"]

    def test_tree_ignores_other_txns(self):
        tracer = Tracer()
        a, b = make_txn(), make_txn()
        tracer.span("mine", 0.0, 1.0, txn=a)
        tracer.span("theirs", 0.0, 1.0, txn=b)
        assert [n.name for n in tracer.span_tree(a.txn_id)] == ["mine"]


class TestAggregation:
    def test_phase_totals_recorded_only(self):
        tracer = Tracer()
        kept, dropped = make_txn(), make_txn()
        for txn, recorded in ((kept, True), (dropped, False)):
            tracer.txn_begin(txn, 0.0)
            tracer.span("execute", 0.0, 2.0, txn=txn)
            tracer.txn_end(txn, Outcome(committed=True), 2.0, recorded=recorded)
        tracer.span("refresh_apply", 0.0, 9.0, track="site1")  # no txn
        totals = tracer.phase_totals(recorded_only=True)
        assert totals == {"execute": 2.0}
        everything = tracer.phase_totals(recorded_only=False)
        assert everything["execute"] == 4.0
        assert everything["refresh_apply"] == 9.0

    def test_recorded_latency_total(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 1.0)
        tracer.txn_end(txn, Outcome(committed=True), 4.0)
        other = make_txn()
        tracer.txn_begin(other, 0.0)
        tracer.txn_end(other, Outcome(committed=False), 9.0)
        assert tracer.recorded_latency_total() == 3.0

    def test_span_args_preserved(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("route", 0.0, 1.0, txn=txn, site=2, reason="affinity")
        span = tracer.spans[0]
        assert dict(span.args) == {"site": 2, "reason": "affinity"}
