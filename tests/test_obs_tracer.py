"""Tests for the span tracer: recording, nesting, aggregation."""

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.transactions import Outcome, Transaction


def make_txn(kind="rmw"):
    return Transaction(kind, client_id=0, write_set=(("t", 1),))


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.span("execute", 0.0, 1.0, track="site0", txn=txn)
        tracer.instant("abort", 1.0, txn=txn)
        tracer.txn_end(txn, Outcome(committed=True), 1.0)
        assert not hasattr(tracer, "spans")

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_real_tracer_substitutes(self):
        assert issubclass(Tracer, NullTracer)
        assert Tracer().enabled


class TestTxnRecords:
    def test_begin_end_roundtrip(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 10.0)
        tracer.txn_end(txn, Outcome(committed=True, remastered=True), 14.0)
        record = tracer.txns[txn.txn_id]
        assert record.begin == 10.0
        assert record.end == 14.0
        assert record.latency == 4.0
        assert record.committed is True
        assert record.remastered is True
        assert record.recorded is True

    def test_warmup_txn_not_recorded(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.txn_end(txn, Outcome(committed=True), 1.0, recorded=False)
        assert tracer.txns[txn.txn_id].recorded is False

    def test_abort_emits_instant_and_counts(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.txn_end(txn, Outcome(committed=False), 2.0)
        assert tracer.abort_count() == 1
        assert tracer.txns[txn.txn_id].recorded is False
        names = [instant.name for instant in tracer.instants]
        assert "abort" in names

    def test_end_without_begin_synthesizes_envelope(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_end(txn, Outcome(committed=True), 5.0)
        record = tracer.txns[txn.txn_id]
        assert record.begin == record.end == 5.0
        assert record.latency == 0.0


class TestSpanTree:
    def test_spans_sorted_by_start_then_length(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("inner", 1.0, 2.0, txn=txn)
        tracer.span("outer", 1.0, 5.0, txn=txn)
        tracer.span("early", 0.0, 0.5, txn=txn)
        names = [span.name for span in tracer.spans_of(txn.txn_id)]
        assert names == ["early", "outer", "inner"]

    def test_containment_nesting(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("route", 0.0, 10.0, txn=txn)
        tracer.span("release", 1.0, 4.0, txn=txn)
        tracer.span("grant", 4.0, 8.0, txn=txn)
        tracer.span("lock_wait", 1.5, 2.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["route"]
        children = [child.name for child in roots[0].children]
        assert children == ["release", "grant"]
        release = roots[0].children[0]
        assert [child.name for child in release.children] == ["lock_wait"]

    def test_siblings_stay_siblings(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("a", 0.0, 2.0, txn=txn)
        tracer.span("b", 2.0, 4.0, txn=txn)
        tracer.span("c", 4.0, 6.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["a", "b", "c"]
        assert all(not node.children for node in roots)

    def test_zero_width_child_at_boundary(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("outer", 0.0, 3.0, txn=txn)
        tracer.span("edge", 3.0, 3.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == ["edge"]

    def test_self_time_and_walk(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("outer", 0.0, 10.0, txn=txn)
        tracer.span("inner", 2.0, 5.0, txn=txn)
        root = tracer.span_tree(txn.txn_id)[0]
        assert root.self_time == 7.0
        paths = [path for path, _ in root.walk("rmw")]
        assert paths == ["rmw/outer", "rmw/outer/inner"]

    def test_tree_ignores_other_txns(self):
        tracer = Tracer()
        a, b = make_txn(), make_txn()
        tracer.span("mine", 0.0, 1.0, txn=a)
        tracer.span("theirs", 0.0, 1.0, txn=b)
        assert [n.name for n in tracer.span_tree(a.txn_id)] == ["mine"]


class TestOrphanSpans:
    """Crash-severed spans: outside the envelope, flagged, never parents."""

    def test_span_outliving_envelope_is_orphan_root(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)
        tracer.span("execute", 0.0, 4.0, txn=txn)
        # Severed lock wait released only when a crash interrupted it,
        # long after the client's retry committed.
        tracer.span("lock_wait", 1.0, 50.0, txn=txn)
        tracer.txn_end(txn, Outcome(committed=True), 5.0)
        roots = tracer.span_tree(txn.txn_id)
        assert [(node.name, node.orphan) for node in roots] == [
            ("execute", False), ("lock_wait", True),
        ]

    def test_orphan_does_not_adopt_retry_spans(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 10.0)
        # Abandoned first attempt: started before the recorded envelope.
        tracer.span("execute", 0.0, 30.0, txn=txn)
        # The genuine retry work, fully inside the envelope.
        tracer.span("commit", 12.0, 14.0, txn=txn)
        tracer.txn_end(txn, Outcome(committed=True), 15.0)
        roots = tracer.span_tree(txn.txn_id)
        nested = [node for node in roots if not node.orphan]
        orphans = [node for node in roots if node.orphan]
        assert [node.name for node in nested] == ["commit"]
        assert [node.name for node in orphans] == ["execute"]
        assert all(not node.children for node in orphans)

    def test_open_envelope_keeps_legacy_containment(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 0.0)  # never ended (in flight at run end)
        tracer.span("outer", 0.0, 10.0, txn=txn)
        tracer.span("inner", 2.0, 4.0, txn=txn)
        roots = tracer.span_tree(txn.txn_id)
        assert [node.name for node in roots] == ["outer"]
        assert not roots[0].orphan
        assert [child.name for child in roots[0].children] == ["inner"]

    def test_chaos_run_trees_have_no_misparenting(self):
        """Regression: mid-transaction site crashes used to leave
        truncated spans that adopted the retry's spans as children."""
        from repro.faults.chaos import run_chaos
        from repro.obs import Observability

        report = run_chaos(
            "dynamast",
            "crash-restart",
            num_sites=3,
            num_clients=6,
            duration_ms=900.0,
            bucket_ms=300.0,
            seed=3,
            obs=Observability(),
        )
        tracer = report.result.obs.tracer
        assert any(kind == "crash" for _, kind, _ in report.fault_events)
        eps = 1e-9
        checked = 0
        for txn_id, record in tracer.txns.items():
            if record.end is None:
                continue
            for root in tracer.span_tree(txn_id):
                checked += 1
                if root.orphan:
                    assert not root.children
                    # Orphans really do violate the envelope.
                    assert (root.span.start < record.begin - eps
                            or root.span.end > record.end + eps)
                else:
                    for path, node in root.walk():
                        assert node.span.start >= record.begin - eps, path
                        assert node.span.end <= record.end + eps, path
        assert checked > 0


class TestAggregation:
    def test_phase_totals_recorded_only(self):
        tracer = Tracer()
        kept, dropped = make_txn(), make_txn()
        for txn, recorded in ((kept, True), (dropped, False)):
            tracer.txn_begin(txn, 0.0)
            tracer.span("execute", 0.0, 2.0, txn=txn)
            tracer.txn_end(txn, Outcome(committed=True), 2.0, recorded=recorded)
        tracer.span("refresh_apply", 0.0, 9.0, track="site1")  # no txn
        totals = tracer.phase_totals(recorded_only=True)
        assert totals == {"execute": 2.0}
        everything = tracer.phase_totals(recorded_only=False)
        assert everything["execute"] == 4.0
        assert everything["refresh_apply"] == 9.0

    def test_recorded_latency_total(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.txn_begin(txn, 1.0)
        tracer.txn_end(txn, Outcome(committed=True), 4.0)
        other = make_txn()
        tracer.txn_begin(other, 0.0)
        tracer.txn_end(other, Outcome(committed=False), 9.0)
        assert tracer.recorded_latency_total() == 3.0

    def test_span_args_preserved(self):
        tracer = Tracer()
        txn = make_txn()
        tracer.span("route", 0.0, 1.0, txn=txn, site=2, reason="affinity")
        span = tracer.spans[0]
        assert dict(span.args) == {"site": 2, "reason": "affinity"}
