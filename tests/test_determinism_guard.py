"""Static guard for the determinism contract (DESIGN.md section 5).

Simulation results must be a pure function of the seed: no wall-clock
reads, no process-global random state. This test walks every module
under ``src/repro`` with the AST and rejects the constructs that break
replayability:

* importing ``time`` (wall clock) — the simulated clock is ``env.now``;
* calling ``datetime.now`` / ``datetime.today`` / ``datetime.utcnow``;
* calling module-level ``random.*`` functions, which share one global
  generator across the process. Seeded ``random.Random(seed)``
  instances are fine (that is how workload generators get isolated,
  named streams), as is ``repro.sim.rand``, the one module allowed to
  wrap ``random`` for everyone else.

Two exemption sets, both intentionally tiny:

* ``EXEMPT`` removes a module from the scan entirely (only the blessed
  ``random`` wrapper).
* ``WALL_CLOCK_EXEMPT`` allows *only* the wall-clock rules: the bench
  harness and the perf regression harness must read
  ``time.perf_counter`` to measure host seconds. They are still scanned
  for global-random violations — measuring the host clock is their job;
  leaking it into simulated behavior is not, and the fingerprint pins
  catch any such leak dynamically.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The blessed wrapper around the stdlib generator.
EXEMPT = {"sim/rand.py"}

#: Modules allowed to read the host clock (still scanned for random).
WALL_CLOCK_EXEMPT = {"bench/harness.py", "bench/perf.py"}

#: random-module attributes that are safe because they construct an
#: explicitly seeded, private generator rather than using global state.
RANDOM_CONSTRUCTORS = {"Random", "SystemRandom"}

FORBIDDEN_DATETIME_CALLS = {"now", "today", "utcnow"}


def repro_sources():
    paths = sorted(SRC.rglob("*.py"))
    assert paths, f"no sources under {SRC}"
    return [
        path for path in paths
        if str(path.relative_to(SRC)) not in EXEMPT
    ]


def violations_in(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "time":
                    found.append((node.lineno, "import time"))
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root == "time":
                found.append((node.lineno, "from time import ..."))
            if root == "random":
                # `from random import Random` is fine; pulling the
                # module-level functions is not.
                for alias in node.names:
                    if alias.name not in RANDOM_CONSTRUCTORS:
                        found.append(
                            (node.lineno, f"from random import {alias.name}")
                        )
        elif isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr not in RANDOM_CONSTRUCTORS):
                found.append((node.lineno, f"random.{node.attr}"))
            if (isinstance(node.value, ast.Name)
                    and node.value.id in ("datetime", "date")
                    and node.attr in FORBIDDEN_DATETIME_CALLS):
                found.append((node.lineno, f"{node.value.id}.{node.attr}"))
    return found


def _is_wall_clock(what):
    return (
        what == "import time"
        or what == "from time import ..."
        or what.startswith(("datetime.", "date."))
    )


class TestDeterminismGuard:
    def test_no_wall_clock_or_global_random(self):
        problems = []
        for path in repro_sources():
            relative = str(path.relative_to(SRC))
            for lineno, what in violations_in(path):
                if relative in WALL_CLOCK_EXEMPT and _is_wall_clock(what):
                    continue
                problems.append(f"{relative}:{lineno}: {what}")
        assert not problems, (
            "nondeterministic constructs in src/repro (see DESIGN.md "
            "section 5):\n  " + "\n  ".join(problems)
        )

    def test_wall_clock_exempt_modules_still_scanned_for_random(self):
        """The bench harnesses may read the host clock but must never
        touch process-global random state."""
        for relative in sorted(WALL_CLOCK_EXEMPT):
            path = SRC / relative
            assert path.exists(), f"{relative} exempted but missing"
            bad = [
                (lineno, what)
                for lineno, what in violations_in(path)
                if not _is_wall_clock(what)
            ]
            assert not bad, f"{relative}: {bad}"

    def test_guard_catches_violations(self, tmp_path):
        """The scanner itself detects each forbidden construct."""
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import time\n"
            "import random\n"
            "from random import shuffle\n"
            "import datetime\n"
            "def f():\n"
            "    random.seed(0)\n"
            "    x = random.random()\n"
            "    t = datetime.now()\n"
        )
        found = {what for _, what in violations_in(bad)}
        assert found == {
            "import time",
            "from random import shuffle",
            "random.seed",
            "random.random",
            "datetime.now",
        }

    def test_guard_allows_seeded_generators(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            "from random import Random\n"
            "import random\n"
            "rng = random.Random(42)\n"
            "value = rng.random()\n"
        )
        assert violations_in(good) == []

    def test_exempt_wrapper_exists(self):
        assert (SRC / "sim" / "rand.py").exists()

    def test_obs_package_is_scanned(self):
        """The observability layer (tracer, attribution, decision
        ledger) must itself be deterministic — it records simulated
        quantities and must never stamp them with host time or draw
        randomness. Ensure no exemption sneaks it out of the scan."""
        scanned = {str(path.relative_to(SRC)) for path in repro_sources()}
        for module in ("tracer.py", "attribution.py", "registry.py",
                       "mastery.py"):
            assert f"obs/{module}" in scanned, (
                f"obs/{module} escaped the determinism guard"
            )

    def test_faults_package_is_scanned(self):
        """The fault subsystem must stay under the determinism contract
        (its loss draws come from the seeded faults stream, never from
        global random state) — ensure no exemption sneaks it out of the
        scanned set."""
        scanned = {str(path.relative_to(SRC)) for path in repro_sources()}
        for module in ("plan.py", "injector.py", "detector.py",
                       "deadlines.py", "errors.py", "chaos.py"):
            assert f"faults/{module}" in scanned, (
                f"faults/{module} escaped the determinism guard"
            )
