"""Property tests for the mastering observatory (hypothesis).

Two ledger contracts must hold for *arbitrary* run parameters, not
just the handful pinned in ``tests/test_mastery.py``:

* **timeline fidelity** — the placement reconstructed from the
  recorded ownership changes (directly and via the interval timeline)
  equals the live :class:`~repro.core.partitions.PartitionTable`
  snapshot at run end, for every system that exposes a selector; for
  selector-less comparators the ledger simply stays empty;
* **offline auditability** — recomputing every recorded decision's
  Eq. 8 benefit from its recorded feature scores and weights
  reproduces the recorded choice (:func:`recompute_decision`).

Example counts are small: each example is a full (short) simulation
run across one of the five systems.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import ALL_SYSTEMS, run_benchmark
from repro.obs.mastery import DecisionLedger, recompute_decision
from repro.sim.config import ClusterConfig
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

RUN_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def observed(system, seed, theta, num_sites, num_clients=3,
             duration_ms=180.0):
    ledger = DecisionLedger()
    workload = YCSBWorkload(
        YCSBConfig(num_partitions=12, rmw_fraction=0.6, zipf_theta=theta)
    )
    result = run_benchmark(
        system, workload, num_clients=num_clients, duration_ms=duration_ms,
        warmup_ms=0.0, cluster_config=ClusterConfig(num_sites=num_sites),
        seed=seed, ledger=ledger,
    )
    return result, ledger


class TestTimelineFidelity:
    @RUN_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        theta=st.sampled_from([0.0, 0.5, 0.9]),
        num_sites=st.integers(min_value=2, max_value=4),
    )
    def test_reconstruction_matches_live_table(self, seed, theta, num_sites):
        result, ledger = observed("dynamast", seed, theta, num_sites)
        snapshot = result.system.selector.table.snapshot()
        assert ledger.final_placement() == snapshot
        assert ledger.timeline().final_placement() == snapshot
        counters = result.metrics.selector_counters
        assert ledger.updates_routed == counters["updates_routed"]
        assert ledger.partitions_moved == counters["partitions_moved"]

    @RUN_SETTINGS
    @given(
        system=st.sampled_from(ALL_SYSTEMS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_system_accepts_a_ledger(self, system, seed):
        """All five systems run to completion with a ledger attached;
        where a selector exists the reconstruction matches it, and
        where none does the ledger stays empty."""
        result, ledger = observed(system, seed, 0.5, 3)
        assert result.metrics.commits > 0
        selector = getattr(result.system, "selector", None)
        if selector is None:
            assert not ledger.routes
            assert not ledger.decisions and not ledger.changes
        else:
            assert ledger.final_placement() == selector.table.snapshot()
            assert ledger.timeline().final_placement() == \
                selector.table.snapshot()


class TestOfflineAuditability:
    @RUN_SETTINGS
    @given(
        system=st.sampled_from(ALL_SYSTEMS),
        seed=st.integers(min_value=0, max_value=2**16),
        theta=st.sampled_from([0.0, 0.9]),
    )
    def test_recorded_decisions_recompute(self, system, seed, theta):
        _, ledger = observed(system, seed, theta, 3)
        for record in ledger.decisions:
            site, consistent = recompute_decision(record)
            assert consistent
            if record.tie_break == "clear":
                assert site == record.chosen
            else:
                assert record.chosen in record.tied
