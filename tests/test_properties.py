"""Property-based tests (hypothesis) on core data structures and rules."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication.log import UPDATE, DurableLog, LogRecord
from repro.replication.recovery import merge_logs
from repro.sim.core import Environment
from repro.sim.rand import RandomStreams, ZipfGenerator, weighted_choice
from repro.storage.record import VersionedRecord
from repro.versioning import VersionVector, can_apply_refresh

vectors = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6)


def pair_of_vectors(draw_sizes=st.integers(min_value=1, max_value=6)):
    return draw_sizes.flatmap(
        lambda size: st.tuples(
            st.lists(st.integers(0, 50), min_size=size, max_size=size),
            st.lists(st.integers(0, 50), min_size=size, max_size=size),
        )
    )


class TestVersionVectorProperties:
    @given(pair_of_vectors())
    def test_element_max_commutes(self, pair):
        left, right = VersionVector(pair[0]), VersionVector(pair[1])
        assert left.element_max(right) == right.element_max(left)

    @given(pair_of_vectors())
    def test_element_max_dominates_both(self, pair):
        left, right = VersionVector(pair[0]), VersionVector(pair[1])
        merged = left.element_max(right)
        assert merged.dominates(left)
        assert merged.dominates(right)

    @given(vectors)
    def test_element_max_idempotent(self, values):
        vector = VersionVector(values)
        assert vector.element_max(vector) == vector

    @given(pair_of_vectors())
    def test_merge_equals_element_max(self, pair):
        left, right = VersionVector(pair[0]), VersionVector(pair[1])
        merged = left.element_max(right)
        left.merge(right)
        assert left == merged

    @given(pair_of_vectors())
    def test_lag_zero_iff_dominates(self, pair):
        left, right = VersionVector(pair[0]), VersionVector(pair[1])
        assert (left.lag_behind(right) == 0) == left.dominates(right)

    @given(pair_of_vectors())
    def test_dominance_antisymmetry(self, pair):
        left, right = VersionVector(pair[0]), VersionVector(pair[1])
        if left.dominates(right) and right.dominates(left):
            assert left == right

    @given(vectors, st.integers(min_value=0, max_value=5))
    def test_increment_strictly_grows(self, values, index):
        vector = VersionVector(values)
        index = index % len(vector)
        before = vector.copy()
        vector.increment(index)
        assert vector.dominates(before)
        assert not before.dominates(vector)
        assert vector.total() == before.total() + 1


class TestRecordProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 100)),
            min_size=1,
            max_size=20,
        ),
        st.lists(st.integers(0, 120), min_size=3, max_size=3),
    )
    def test_read_returns_newest_visible(self, writes, snapshot_values):
        """The read rule: newest *visible* version in application order."""
        record = VersionedRecord(("t", 1), initial_value="init")
        applied = []
        # Make per-origin sequences increasing (as real logs are).
        next_seq = {}
        for origin, _ in writes:
            seq = next_seq.get(origin, 0) + 1
            next_seq[origin] = seq
            record.install(origin, seq, f"v{origin}:{seq}", max_versions=100)
            applied.append((origin, seq))
        snapshot = VersionVector(snapshot_values)
        result = record.read(snapshot)
        visible = [
            (origin, seq)
            for origin, seq in applied
            if seq <= snapshot[origin]
        ]
        if visible:
            origin, seq = visible[-1]
            assert result.value == f"v{origin}:{seq}"
        else:
            assert result.value == "init"

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=30))
    def test_pruning_bounds_chain_length(self, max_versions, writes):
        record = VersionedRecord(("t", 1))
        for seq in range(1, writes + 1):
            record.install(0, seq, seq, max_versions=max_versions)
        assert record.version_count <= max_versions
        assert record.latest.seq == writes


class TestUpdateApplicationRule:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=200),
        st.data(),
    )
    def test_merge_logs_yields_dense_per_origin_sequences(self, sites, txns, data):
        """Any causally-consistent set of logs merges completely, and
        the merged order applies each origin's records densely."""
        env = Environment()
        logs = [DurableLog(env, origin) for origin in range(sites)]
        svv = VersionVector.zeros(sites)
        for _ in range(txns):
            origin = data.draw(st.integers(0, sites - 1))
            # A transaction's begin vector is at most the current svv.
            begin = [data.draw(st.integers(0, svv[k])) for k in range(sites)]
            seq = svv.increment(origin)
            begin[origin] = seq
            logs[origin].append(
                LogRecord(UPDATE, origin, tuple(begin), writes=((("t", 1), seq),))
            )
        merged = merge_logs(logs)
        assert len(merged) == txns
        seen = VersionVector.zeros(sites)
        for record in merged:
            assert can_apply_refresh(seen, VersionVector(record.tvv), record.origin)
            seen[record.origin] = record.seq

    @given(vectors, st.integers(min_value=0, max_value=5))
    def test_rule_requires_exactly_next(self, values, origin):
        svv = VersionVector(values)
        origin = origin % len(svv)
        tvv = svv.copy()
        tvv[origin] = svv[origin] + 1
        assert can_apply_refresh(svv, tvv, origin)
        tvv[origin] = svv[origin] + 2
        assert not can_apply_refresh(svv, tvv, origin)


class TestRandomStreams:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_streams_reproducible(self, seed, name):
        first = RandomStreams(seed).stream(name).random()
        second = RandomStreams(seed).stream(name).random()
        assert first == second

    @given(st.integers(min_value=0, max_value=1000))
    def test_streams_independent_of_creation_order(self, seed):
        streams_a = RandomStreams(seed)
        streams_b = RandomStreams(seed)
        value_a = streams_a.stream("x").random()
        streams_b.stream("y")  # created first in b
        value_b = streams_b.stream("x").random()
        assert value_a == value_b

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30)
    def test_zipf_samples_in_range(self, n, theta, seed):
        generator = ZipfGenerator(n, theta, random.Random(seed))
        for _ in range(50):
            value = generator.sample()
            assert 0 <= value < n

    def test_zipf_popularity_monotone(self):
        generator = ZipfGenerator(50, 1.0, random.Random(1))
        counts = [0] * 50
        for _ in range(20000):
            counts[generator.sample()] += 1
        assert counts[0] > counts[10] > counts[40]

    @given(st.integers(min_value=0, max_value=100))
    def test_weighted_choice_respects_zero_weight(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"


class TestStatisticsProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),  # client
                st.lists(st.integers(0, 10), min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_counts_never_negative_and_expiry_empties(self, observations):
        from repro.core.statistics import AccessStatistics, StatisticsConfig

        stats = AccessStatistics(
            StatisticsConfig(expiry_ms=100.0, inter_txn_window_ms=10.0)
        )
        now = 0.0
        for client, partitions in observations:
            stats.observe(now, client, partitions)
            now += 5.0
        assert all(count > 0 for count in stats.partition_writes.values())
        assert stats.total_writes >= 0
        # Far-future observation expires everything prior.
        stats.observe(now + 1e6, 0, [999])
        assert set(stats.partition_writes) == {999}
        assert stats.total_writes == 1.0
        for row in stats.co_intra.values():
            assert all(count > 0 for count in row.values())
